"""Ablation: linear clustering of fine-grain graphs.

Hypothesis from the paper's fine-grain analysis: PS fails on fine-grain
tasks because gaps fall below the shutdown breakeven, so coarsening
chains should recover shutdown opportunities.

Measured outcome (a negative result worth recording): the S&S+PS gain
barely moves, because the fine-grain gain is dominated by the single
long *trailing* gap before the deadline — which exists with or without
clustering — while the interior gaps stay below breakeven either way.
What clustering does buy is a much smaller scheduling problem for
identical critical path and work.
"""

import numpy as np

from repro.core.sns import schedule_and_stretch
from repro.graphs.analysis import critical_path_length, total_work
from repro.graphs.generators import stg_random_graph
from repro.graphs.transforms import linear_cluster
from repro.util import render_table


def run_ablation(seeds=range(10), factor=4.0, scale=3.1e4):
    rows = []
    gains_raw, gains_clu = [], []
    for seed in seeds:
        g = stg_random_graph(60, seed).scaled(scale)  # fine grain
        c = linear_cluster(g)
        assert critical_path_length(c) == critical_path_length(g)
        assert total_work(c) == total_work(g)
        deadline = factor * critical_path_length(g)

        def ps_gain(graph):
            base = schedule_and_stretch(graph, deadline, shutdown=False)
            ps = schedule_and_stretch(graph, deadline, shutdown=True)
            return 1.0 - ps.total_energy / base.total_energy

        raw = ps_gain(g)
        clu = ps_gain(c)
        gains_raw.append(raw)
        gains_clu.append(clu)
        rows.append((g.name, g.n, c.n, f"{100 * raw:.2f}%",
                     f"{100 * clu:.2f}%"))
    return rows, float(np.mean(gains_raw)), float(np.mean(gains_clu))


def test_ablation_linear_clustering(once):
    rows, mean_raw, mean_clu = once(run_ablation)
    print()
    print(render_table(
        ["graph", "tasks", "clustered tasks", "PS gain raw",
         "PS gain clustered"],
        rows, title="Linear clustering vs fine-grain PS "
                    "(S&S+PS gain over S&S, 4 x CPL)"))
    print(f"\nmean PS gain: raw {100 * mean_raw:.2f}%, "
          f"clustered {100 * mean_clu:.2f}%")
    # The negative result: clustering moves the PS gain by well under a
    # percentage point in either direction...
    assert abs(mean_clu - mean_raw) < 0.01
    # ...because the trailing gap dominates.  The structural benefit is
    # real though: never more tasks, and strictly fewer on most graphs
    # (graphs with no mergeable chain pair keep their count).
    assert all(row[2] <= row[1] for row in rows)
    assert sum(row[2] < row[1] for row in rows) >= len(rows) / 2
