"""Ablation: shutdown overhead sensitivity (Section 3.4's 483 µJ).

Sweeps the shutdown/wake energy across four orders of magnitude and
measures the S&S+PS gain over S&S: cheap transitions make PS dominate;
expensive ones push the breakeven out until shutdown never triggers and
S&S+PS degenerates to S&S.
"""

import numpy as np

from repro.core.sns import schedule_and_stretch
from repro.core.platform import Platform
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.power.dvs import DVSLadder
from repro.power.shutdown import SleepModel
from repro.util import render_table

SCALES = (0.01, 0.1, 1.0, 10.0, 1000.0)


def run_ablation(seeds=range(8), factor=2.0):
    out = {}
    for scale in SCALES:
        plat = Platform(ladder=DVSLadder(),
                        sleep=SleepModel(overhead_energy=483e-6 * scale))
        gains, shutdowns = [], []
        for seed in seeds:
            g = stg_random_graph(60, seed).scaled(3.1e6)
            deadline = factor * critical_path_length(g)
            base = schedule_and_stretch(g, deadline, shutdown=False,
                                        platform=plat)
            ps = schedule_and_stretch(g, deadline, shutdown=True,
                                      platform=plat)
            gains.append(1.0 - ps.total_energy / base.total_energy)
            shutdowns.append(ps.energy.n_shutdowns)
        out[scale] = (float(np.mean(gains)), float(np.mean(shutdowns)))
    return out


def test_ablation_shutdown_overhead(once):
    results = once(run_ablation)
    print()
    rows = [(f"{483e-6 * s * 1e6:.0f} µJ", f"{100 * g:.1f}%",
             f"{k:.1f}") for s, (g, k) in results.items()]
    print(render_table(
        ["overhead", "S&S+PS gain over S&S", "mean shutdowns"],
        rows, title="Shutdown overhead sensitivity (coarse, 2 x CPL)"))

    gains = [results[s][0] for s in SCALES]
    # Cheaper transitions never gain less.
    assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))
    # PS can never lose energy (gaps below breakeven just stay on).
    assert all(g >= -1e-9 for g in gains)
    # With a 0.483 J overhead, coarse-grain gaps stop sleeping almost
    # everywhere; shutdown counts must collapse.
    assert results[1000.0][1] < results[1.0][1]
