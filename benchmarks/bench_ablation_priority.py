"""Ablation: the list-scheduling priority policy (Section 4.4).

The paper argues EDF is near-optimal by comparing against LIMIT-SF,
which is independent of the scheduling policy.  This bench makes the
comparison directly: LAMPS+PS run with EDF vs four alternative
priorities, measured as mean energy relative to the LIMIT-SF bound.
"""

import numpy as np

from repro.core.lamps import lamps_search
from repro.core.limits import limit_sf
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.util import render_table

POLICIES = ("edf", "hlfet", "fifo", "lpt", "spt")


def run_ablation(seeds=range(12), factor=2.0):
    excess = {p: [] for p in POLICIES}
    for seed in seeds:
        g = stg_random_graph(60, seed).scaled(3.1e6)
        deadline = factor * critical_path_length(g)
        bound = limit_sf(g, deadline).total_energy
        for p in POLICIES:
            r = lamps_search(g, deadline, shutdown=True, policy=p)
            excess[p].append(r.total_energy / bound - 1.0)
    return {p: float(np.mean(v)) for p, v in excess.items()}


def test_ablation_priority_policies(once):
    mean_excess = once(run_ablation)
    print()
    rows = [(p, f"{100 * e:.2f}%") for p, e in
            sorted(mean_excess.items(), key=lambda kv: kv[1])]
    print(render_table(
        ["policy", "mean energy above LIMIT-SF"],
        rows, title="LAMPS+PS with different list-scheduling priorities"))

    # The paper's conclusion: EDF leaves almost nothing on the table.
    assert mean_excess["edf"] < 0.06
    # And no policy can beat the bound.
    for e in mean_excess.values():
        assert e >= -1e-9
    # EDF is within noise of the best policy tried.
    best = min(mean_excess.values())
    assert mean_excess["edf"] <= best + 0.03
