"""Ablation: event-driven (work-conserving) vs insertion-based list
scheduling.

Another instance of Section 4.4's question — does a smarter scheduler
buy anything?  Gap insertion can only improve makespans over the
work-conserving dispatcher on graphs with forced early holes; the bench
measures how often that happens and what it does to energy.
"""

import numpy as np

from repro.core.energy import schedule_energy
from repro.core.platform import default_platform
from repro.core.stretch import required_frequency, stretch_point
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.insertion import insertion_schedule
from repro.sched.list_scheduler import list_schedule
from repro.util import render_table


def run_ablation(seeds=range(16), n_procs=4, factor=2.0):
    plat = default_platform()
    rows = []
    deltas = []
    for seed in seeds:
        g = stg_random_graph(60, seed).scaled(3.1e6)
        deadline = factor * critical_path_length(g)
        d = task_deadlines(g, deadline)
        seconds = plat.seconds(deadline)

        def energy_of(sched):
            f_req = required_frequency(sched, d, plat.fmax)
            if f_req > plat.fmax * (1 + 1e-9):
                return None
            p = stretch_point(plat.ladder, f_req)
            return schedule_energy(sched, p, seconds,
                                   sleep=plat.sleep).total

        evt = list_schedule(g, n_procs, d)
        ins = insertion_schedule(g, n_procs, d)
        e_evt, e_ins = energy_of(evt), energy_of(ins)
        delta_ms = ins.makespan / evt.makespan - 1.0
        delta_e = (e_ins / e_evt - 1.0) if e_evt and e_ins else float("nan")
        deltas.append(delta_e)
        rows.append((g.name, f"{evt.makespan:.3e}",
                     f"{100 * delta_ms:+.2f}%",
                     f"{100 * delta_e:+.2f}%" if e_evt and e_ins else "-"))
    return rows, deltas


def test_ablation_scheduler_style(once):
    rows, deltas = once(run_ablation)
    print()
    print(render_table(
        ["graph", "event makespan [cy]", "insertion Δmakespan",
         "insertion Δenergy"],
        rows, title="Event-driven vs insertion-based list scheduling "
                    "(S&S+PS energies, 4 processors)"))
    finite = [d for d in deltas if np.isfinite(d)]
    mean = float(np.mean(finite))
    print(f"\nmean energy delta: {100 * mean:+.2f}%")
    # Consistent with the paper's LIMIT-SF argument: scheduler choice
    # moves energy by only a few percent either way.
    assert abs(mean) < 0.05
