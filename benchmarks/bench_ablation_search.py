"""Ablation: LAMPS phase-2 linear search vs greedy early stopping.

Section 4.2 justifies the linear search with Fig. 6's local minima: a
search that stops at the first energy increase can get trapped.  This
bench sweeps a pool of graphs, comparing the paper's linear phase 2
against a greedy variant, and reports how often and by how much greedy
is suboptimal.
"""

from repro.core.lamps import energy_vs_processors, lamps_search
from repro.experiments.fig06_energy_vs_n import local_minima
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.util import render_table


def run_ablation(seeds=range(24), factor=2.0):
    rows = []
    n_trapped = 0
    n_local_minima = 0
    for seed in seeds:
        g = stg_random_graph(60, seed).scaled(3.1e6)
        deadline = factor * critical_path_length(g)
        lin = lamps_search(g, deadline, phase2="linear")
        greedy = lamps_search(g, deadline, phase2="greedy")
        curve = [e.total if e is not None else None
                 for _, e in energy_vs_processors(g, deadline)]
        minima = local_minima(curve)
        n_local_minima += bool(minima)
        loss = greedy.total_energy / lin.total_energy - 1.0
        if loss > 1e-9:
            n_trapped += 1
        rows.append((g.name, lin.n_processors, greedy.n_processors,
                     f"{100 * loss:.2f}%",
                     "yes" if minima else "no"))
    return rows, n_trapped, n_local_minima


def test_ablation_linear_vs_greedy(once):
    rows, n_trapped, n_local_minima = once(run_ablation)
    print()
    print(render_table(
        ["graph", "linear N", "greedy N", "greedy loss",
         "local minima"],
        rows, title="LAMPS phase 2: linear vs greedy early stop"))
    print(f"\ngreedy trapped on {n_trapped}/{len(rows)} graphs; "
          f"{n_local_minima} graphs show non-global local minima")
    # Linear is never worse (it is exhaustive over the swept range).
    for row in rows:
        assert float(row[3].rstrip("%")) >= -1e-6
