"""Ablation: DVS voltage-step granularity.

The paper fixes 0.05 V steps (Section 4.3).  This bench quantifies what
that choice costs: coarser ladders lose stretch opportunities, finer
ladders buy little — the classic diminishing-returns curve.
"""

import numpy as np

from repro.core.lamps import lamps_search
from repro.core.platform import Platform
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.power.dvs import DVSLadder
from repro.power.shutdown import SleepModel
from repro.util import render_table

STEPS = (0.2, 0.1, 0.05, 0.025, 0.01)


def run_ablation(seeds=range(8), factors=(1.3, 1.7, 2.3)):
    # Off-grid deadline factors: at round factors the stretch target
    # often lands on a coarse-grid point anyway, hiding the effect.
    platforms = {s: Platform(ladder=DVSLadder(vdd_step=s),
                             sleep=SleepModel()) for s in STEPS}
    energies = {s: [] for s in STEPS}
    for seed in seeds:
        g = stg_random_graph(60, seed).scaled(3.1e6)
        for factor in factors:
            deadline = factor * critical_path_length(g)
            for s, plat in platforms.items():
                r = lamps_search(g, deadline, shutdown=True,
                                 platform=plat)
                energies[s].append(r.total_energy)
    return {s: float(np.mean(v)) for s, v in energies.items()}


def test_ablation_voltage_step(once):
    mean_e = once(run_ablation)
    print()
    base = mean_e[0.05]
    rows = [(s, len(DVSLadder(vdd_step=s)), f"{e:.4f}",
             f"{100 * (e / base - 1):+.2f}%")
            for s, e in mean_e.items()]
    print(render_table(
        ["Vdd step [V]", "ladder points", "mean energy [J]",
         "vs 0.05 V"],
        rows, title="DVS granularity ablation (LAMPS+PS, 2 x CPL)"))

    # Nested grids never hurt: each halving refines the previous grid
    # (0.2 -> 0.1 -> 0.05 -> 0.025).
    assert mean_e[0.1] <= mean_e[0.2] + 1e-9
    assert mean_e[0.05] <= mean_e[0.1] + 1e-9
    assert mean_e[0.025] <= mean_e[0.05] + 1e-9
    # Diminishing returns: going finer than the paper's 0.05 V buys
    # only a few percent.
    assert mean_e[0.05] - min(mean_e.values()) < 0.05 * base
    # The very coarse ladder is no better than the paper's choice.
    assert mean_e[0.2] >= mean_e[0.05] - 1e-9
