"""Bench: the DVS + adaptive-body-biasing extension experiment."""

from repro.experiments import ext_abb


def test_ext_abb(once):
    report = once(ext_abb.run, sizes=(50, 100), graphs_per_group=4,
                  deadline_factors=(1.5, 4.0))
    print()
    print(report)
    means = report.data["mean_savings"]
    # ABB shaves double-digit percentages off the fixed-bias LAMPS+PS
    # energies (consistent with the DVS+ABB literature the paper cites).
    assert means[1.5] > 0.05
    assert means[4.0] > 0.10
    # Looser deadlines benefit at least as much: more time is spent at
    # scaled supplies where the leakage trade matters most.
    assert means[4.0] >= means[1.5] - 1e-9
