"""Bench: the communication-aware scheduling extension."""

from repro.experiments import ext_comm


def test_ext_comm(once):
    report = once(ext_comm.run, sizes=(50, 100), graphs_per_group=4,
                  ccrs=(0.0, 1.0, 2.0, 4.0))
    print()
    print(report)
    n = report.data["mean_processors"]
    e = report.data["mean_energy"]
    ccrs = sorted(n)
    # Transfer costs never pull the optimal processor count *up*...
    assert n[ccrs[-1]] <= n[ccrs[0]] + 1e-9
    # ...and the energy floor rises with communication intensity.
    assert e[ccrs[-1]] >= e[ccrs[0]] - 1e-12
    energies = [e[c] for c in ccrs]
    assert all(b >= a - 1e-9 * abs(a)
               for a, b in zip(energies, energies[1:]))
