"""Bench: the heterogeneous (big.LITTLE) scheduling extension."""

from repro.experiments import ext_hetero


def test_ext_hetero(once):
    report = once(ext_hetero.run, sizes=(50,), graphs_per_group=4,
                  deadline_factors=(1.2, 2.0, 8.0))
    print()
    print(report)
    savings = report.data["savings"]
    share = report.data["little_share"]
    factors = sorted(savings)
    # Slack monotonically migrates work toward the efficient cores...
    shares = [share[f] for f in factors]
    assert all(b >= a - 1e-9 for a, b in zip(shares, shares[1:]))
    # ...and the heterogeneity dividend grows with the deadline.
    vals = [savings[f] for f in factors]
    assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))
    # At generous slack, the dividend approaches the little cores'
    # energy-efficiency gap (1 - m*c = 40%).
    assert vals[-1] > 0.25
    # The heterogeneous search can never lose to big-only (it contains
    # big-only configurations).
    assert all(v >= -1e-9 for v in vals)
