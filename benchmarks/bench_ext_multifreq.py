"""Bench: the multi-frequency extension experiment.

Tests the paper's Section 6 conjecture quantitatively: per-processor
frequencies collect only a small fraction of the LIMIT-MF headroom.
"""

from repro.experiments import ext_multifreq


def test_ext_multifreq(once):
    report = once(ext_multifreq.run, sizes=(50, 100),
                  graphs_per_group=4, deadline_factors=(1.5, 2.0))
    print()
    print(report)
    # Multi-frequency never hurts...
    assert report.data["mean_gain"] >= -1e-12
    # ...but realises well under half of what LIMIT-MF dangles —
    # the paper's "actual benefit will probably be much less".
    frac = report.data["mean_realised_fraction"]
    assert frac is not None and frac < 0.5
    assert report.data["max_gain"] < 0.15
