"""Bench: execution with actual times + online slack reclamation."""

from repro.experiments import ext_runtime


def test_ext_runtime(once):
    report = once(ext_runtime.run, sizes=(50, 100), graphs_per_group=4)
    print()
    print(report)
    means = report.data["mean_ratios"]
    # Early completion alone saves energy (tasks bill fewer cycles and
    # the freed time sleeps).
    assert means["none"] < 1.0
    # Reclamation helps on top, and the leakage-aware floor never
    # loses to plain greedy.
    assert means["greedy"] <= means["none"] + 1e-9
    assert means["leakage-aware"] <= means["greedy"] + 1e-9
    # Hard real-time guarantee preserved by construction.
    assert report.data["deadline_misses"] == 0
