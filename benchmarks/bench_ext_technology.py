"""Bench: leakage scaling across technology nodes (the paper's premise)."""

from repro.experiments import ext_technology


def test_ext_technology(once):
    report = once(ext_technology.run, sizes=(50, 100),
                  graphs_per_group=4)
    print()
    print(report)
    savings = report.data["savings"]
    static = report.data["static_fraction"]
    scales = sorted(savings)
    # The premise: more leakage -> more to gain from leakage-aware
    # scheduling, monotonically across the sweep.
    vals = [savings[k] for k in scales]
    assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))
    # Static power share grows with Lg too (sanity of the knob).
    fr = [static[k] for k in scales]
    assert all(b > a for a, b in zip(fr, fr[1:]))
    # At the paper's node the saving is already substantial.
    assert savings[1.0] > 0.2
    # In the near-zero-leakage past, the DVS-only approach was a
    # reasonable design (gap well below the 10x-leakage future's).
    assert savings[scales[0]] < savings[scales[-1]] - 0.1
