"""Bench: regenerate Fig. 2 (power and energy vs normalized frequency)."""

import pytest

from repro.experiments import fig02_power_curves


def test_fig02_power_curves(once):
    report = once(fig02_power_curves.run)
    print()
    print(report)
    # The figure's anchors.
    assert report.data["fmax_hz"] == pytest.approx(3.1e9, rel=0.01)
    assert report.data["f_crit_continuous_norm"] == pytest.approx(
        0.38, abs=0.01)
    assert report.data["f_crit_discrete_norm"] == pytest.approx(
        0.41, abs=0.01)
    # Power grows monotonically with frequency (Fig. 2a's shape).
    p = report.data["p_total"]
    assert all(a <= b + 1e-12 for a, b in zip(p, p[1:]))
    # Energy/cycle is unimodal with an interior minimum (Fig. 2b).
    e = report.data["energy_per_cycle"]
    k = e.index(min(e))
    assert 0 < k < len(e) - 1
