"""Bench: regenerate Fig. 3 (minimum idle cycles for beneficial PS)."""

import pytest

from repro.experiments import fig03_breakeven


def test_fig03_breakeven(once):
    report = once(fig03_breakeven.run)
    print()
    print(report)
    assert report.data["breakeven_half_speed_cycles"] == pytest.approx(
        1.7e6, rel=0.02)
    # The curve rises with frequency over most of the range (Fig. 3's
    # shape): cycles at full speed far exceed cycles at 10% speed.
    f = report.data["f_norm"]
    c = report.data["breakeven_cycles"]
    low = [ci for fi, ci in zip(f, c) if fi < 0.2]
    high = [ci for fi, ci in zip(f, c) if fi > 0.8]
    assert max(low) < min(high)
