"""Bench: regenerate Figs. 4/7 (the worked 5-task example)."""

from repro.experiments import fig04_07_example


def test_fig04_example(once):
    report = once(fig04_07_example.run)
    print()
    print(report)
    e = report.data["energies"]
    n = report.data["processors"]
    # Fig. 7: LAMPS packs onto 2 processors vs S&S's 3 and wins.
    assert n["LAMPS"] == 2 and n["S&S"] == 3
    assert e["LAMPS"] < e["S&S"]
    assert e["LAMPS+PS"] <= min(e["LAMPS"], e["S&S+PS"]) + 1e-15
