"""Bench: regenerate Fig. 6 (energy vs number of processors)."""

from repro.experiments import fig06_energy_vs_n


def test_fig06_energy_vs_n(once):
    report = once(fig06_energy_vs_n.run, max_processors=20)
    print()
    print(report)
    for name in ("fpppp", "robot", "sparse"):
        energies = report.data[name]["energies"]
        feasible = [e for e in energies if e is not None]
        assert feasible, name
        # The curve rises once past the optimum: employing every extra
        # processor costs leakage (Fig. 6's right side).
        assert feasible[-1] > min(feasible), name

    # sparse (parallelism ~16) is infeasible on few processors at
    # 2x CPL — the left edge of the paper's sparse curve.
    assert report.data["sparse"]["energies"][0] is None

    # Non-global local minima exist (the paper saw one for sparse at
    # N = 14; our demo instance shows them too) — the reason LAMPS's
    # phase 2 is a linear search.
    assert report.data["rand60-demo"]["local_minima_at"]
