"""Bench: regenerate Fig. 10 (relative energy, coarse-grain tasks).

Who wins and by how much, per deadline factor: LAMPS+PS must track
LIMIT-SF closely (the paper's ">94% of the possible savings" claim) and
all heuristics must beat the S&S baseline.
"""

from repro.experiments import fig10_11_relative_energy
from repro.experiments.registry import COARSE


def test_fig10_coarse(once):
    report = once(
        fig10_11_relative_energy.run,
        scenario=COARSE, graphs_per_group=3, sizes=(50, 100, 500),
        deadline_factors=(1.5, 2.0, 4.0, 8.0))
    print()
    print(report)
    for factor_key, benches in report.data.items():
        for name, rel in benches.items():
            assert rel["LAMPS+PS"] <= rel["S&S"] + 1e-9, (factor_key, name)
            assert rel["LAMPS+PS"] <= rel["LAMPS"] + 1e-9
            assert rel["LIMIT-SF"] <= rel["LAMPS+PS"] * (1 + 1e-9)
            # Coarse grain: LAMPS+PS attains most of the possible saving.
            possible = rel["S&S"] - rel["LIMIT-SF"]
            attained = rel["S&S"] - rel["LAMPS+PS"]
            if possible > 0.01:
                assert attained / possible > 0.85, (factor_key, name)

    # Savings grow as the deadline loosens (Fig. 10a -> 10d trend).
    def mean_lamps_ps(key):
        vals = [rel["LAMPS+PS"] for rel in report.data[key].values()]
        return sum(vals) / len(vals)

    assert mean_lamps_ps("factor_8.0") < mean_lamps_ps("factor_1.5")
