"""Bench: regenerate Fig. 11 (relative energy, fine-grain tasks).

The fine-grain crossover: with 10 µs tasks the idle gaps sit below the
shutdown breakeven, so the +PS variants gain far less than in Fig. 10 —
but the processor-count lever (LAMPS) still works.
"""

from repro.experiments import fig10_11_relative_energy
from repro.experiments.registry import COARSE, FINE


def test_fig11_fine(once):
    report = once(
        fig10_11_relative_energy.run,
        scenario=FINE, graphs_per_group=3, sizes=(50, 100, 500),
        deadline_factors=(1.5, 2.0, 8.0))
    print()
    print(report)
    for factor_key, benches in report.data.items():
        for name, rel in benches.items():
            assert rel["LAMPS+PS"] <= rel["S&S"] + 1e-9
            assert rel["LIMIT-SF"] <= rel["LAMPS+PS"] * (1 + 1e-9)


def test_fine_vs_coarse_sns_ps_gap(once):
    """S&S+PS gains over S&S shrink for fine grain (the paper: 23% vs
    4% average at 2x CPL)."""

    def both():
        out = {}
        for scen in (COARSE, FINE):
            rep = fig10_11_relative_energy.run(
                scenario=scen, graphs_per_group=3, sizes=(50, 100),
                deadline_factors=(2.0,))
            rels = [b["S&S+PS"]
                    for b in rep.data["factor_2.0"].values()]
            out[scen.name] = sum(rels) / len(rels)
        return out

    gains = once(both)
    print(f"\nmean S&S+PS relative energy at 2xCPL: {gains}")
    # Coarse-grain shutdown saves strictly more than fine-grain.
    assert gains["coarse"] < gains["fine"]
