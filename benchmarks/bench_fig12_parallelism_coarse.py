"""Bench: regenerate Fig. 12 (energy/work vs parallelism, coarse).

The figure's message (§5.2): S&S's energy per unit work rises when it
employs many more processors than the parallelism can keep busy —
over-provisioning — while LAMPS(+PS) stays flat because it can simply
use fewer processors.  We test that mechanism directly.
"""

import numpy as np

from repro.experiments import fig12_13_parallelism
from repro.experiments.registry import COARSE


def test_fig12_parallelism_coarse(once):
    report = once(
        fig12_13_parallelism.run,
        scenario=COARSE, node_counts=(500, 1000), graphs_per_size=10)
    print()
    print(report)
    points = report.data["points"]
    assert len(points) == 20

    # Mechanism: S&S e/work grows with over-provisioning (employed
    # processors per unit of parallelism).
    overprov = np.array([p["sns_processors"] / p["parallelism"]
                         for p in points])
    sns = np.array([p["S&S"] for p in points])
    corr = np.corrcoef(overprov, sns)[0, 1]
    assert corr > 0.3, f"no over-provisioning correlation: {corr:.2f}"

    # LAMPS is flat: its worst case stays close to its best (§5.2:
    # "a small amount of parallelism has no significant effect").
    lamps = np.array([p["LAMPS"] for p in points])
    assert lamps.max() / lamps.min() < 1.6
    # ... and much flatter than S&S's spread.
    assert lamps.max() / lamps.min() < sns.max() / sns.min()

    # LAMPS never employs more processors than S&S.
    for p in points:
        assert p["lamps_processors"] <= p["sns_processors"]
    # Nothing beats the absolute bound.
    for p in points:
        assert p["LIMIT-MF"] <= p["LAMPS+PS"] * (1 + 1e-9)
