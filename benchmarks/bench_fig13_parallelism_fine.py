"""Bench: regenerate Fig. 13 (energy/work vs parallelism, fine grain).

The paper's observation: with fine-grain tasks the idle periods are
"often not long enough to save energy by shutting processors down", so
S&S+PS recovers much less of S&S's over-provisioning cost than in
Fig. 12 — while LAMPS(+PS) stays flat in both.
"""

import numpy as np

from repro.experiments import fig12_13_parallelism
from repro.experiments.registry import COARSE, FINE


def test_fig13_parallelism_fine(once):
    def both_scenarios():
        return {
            scen.name: fig12_13_parallelism.run(
                scenario=scen, node_counts=(500, 1000),
                graphs_per_size=10)
            for scen in (FINE, COARSE)
        }

    reports = once(both_scenarios)
    print()
    print(reports["fine"])

    fine = reports["fine"].data["points"]
    coarse = reports["coarse"].data["points"]

    # Shutdown recovers less for fine grain: mean S&S+PS relative to
    # S&S is higher (worse) than in the coarse sweep.
    def mean_ratio(points):
        return float(np.mean([p["S&S+PS"] / p["S&S"] for p in points]))

    assert mean_ratio(fine) > mean_ratio(coarse)

    # LAMPS stays flat for fine grain too.
    lamps = np.array([p["LAMPS"] for p in fine])
    sns_ps = np.array([p["S&S+PS"] for p in fine])
    assert lamps.max() / lamps.min() < 1.6
    assert lamps.max() / lamps.min() < sns_ps.max() / sns_ps.min()

    # Over-provisioning correlation persists for S&S+PS in fine grain
    # (shutdown cannot mask it) — the paper's "S&S+PS with fine-grain
    # tasks consumes significantly more energy than LAMPS".
    for p in fine:
        if p["parallelism"] < 3:
            assert p["S&S+PS"] >= p["LAMPS"] - 1e-15
