"""Bench: recompute the paper's headline claims.

Abstract: "reduces the total energy consumption by up to 46% for tight
deadlines (1.5x CPL) and by up to 73% for loose deadlines (8x CPL)
compared to [S&S]"; "LAMPS+PS attains over 94% of the possible energy
saving" for coarse-grain tasks.

Our synthetic workload set reaches at *least* those maxima (its extremes
differ from the unpublished STG draws), and the attainment claim holds.
"""

from repro.experiments import headline


def test_headline_claims(once):
    report = once(headline.run, graphs_per_group=4,
                  sizes=(50, 100, 500))
    print()
    print(report)
    coarse = report.data["coarse"]
    fine = report.data["fine"]

    # "Up to 46% / 73%": our max savings must reach the paper's maxima.
    assert coarse["factor_1.5"]["max_saving_vs_sns"] >= 0.40
    assert coarse["factor_8.0"]["max_saving_vs_sns"] >= 0.70
    assert fine["factor_1.5"]["max_saving_vs_sns"] >= 0.35
    assert fine["factor_8.0"]["max_saving_vs_sns"] >= 0.65

    # Loose deadlines save more than tight ones (the 46% -> 73% trend).
    assert coarse["factor_8.0"]["max_saving_vs_sns"] > \
        coarse["factor_1.5"]["max_saving_vs_sns"]

    # ">94% of the possible saving" for coarse grain: we require the
    # mean attainment to clear the bar and the worst case to be close.
    assert coarse["factor_8.0"]["mean_attainment_of_limit_sf"] > 0.94
    assert coarse["factor_1.5"]["mean_attainment_of_limit_sf"] > 0.90
    assert coarse["factor_8.0"]["min_attainment_of_limit_sf"] > 0.85
