"""Bench: process-pool and cache scaling of the experiment runner.

A fixed 40-instance campaign (10 STG graphs x 4 deadline factors,
coarse grain) evaluated serially, with 2 and 4 workers, and against a
cold then warm result cache.  Prints a JSON blob with the wall-clock
trajectory so successive PRs can track the runner's scaling, and
asserts the modes agree bit-for-bit — speed must never buy different
numbers.
"""

import json
import time

from repro.core.suite import paper_suite  # noqa: F401  (campaign dep)
from repro.exec import ExecOptions, evaluate_suite_instances
from repro.experiments.registry import COARSE, DEADLINE_FACTORS
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_group


def _campaign_instances():
    graphs = [COARSE.apply(g) for g in stg_group(50, 10, seed=2006)]
    return [(g, factor * critical_path_length(g))
            for g in graphs for factor in DEADLINE_FACTORS]


def _energies(results):
    return [[r.total_energy for r in per_instance.values()]
            for per_instance in results]


def _timed(instances, options):
    t0 = time.perf_counter()
    results = evaluate_suite_instances(instances, options=options)
    return time.perf_counter() - t0, results


def test_runner_scaling(once, tmp_path):
    instances = _campaign_instances()
    assert len(instances) == 40

    # Headline number (pytest-benchmark): the cold serial campaign.
    baseline = once(evaluate_suite_instances, instances,
                    options=ExecOptions(jobs=1, use_cache=False))
    timings = {}
    for jobs in (1, 2, 4):
        timings[f"jobs{jobs}_nocache"], results = _timed(
            instances, ExecOptions(jobs=jobs, use_cache=False))
        assert _energies(results) == _energies(baseline), jobs

    cache_dir = tmp_path / "cache"
    timings["jobs4_cold_cache"], _ = _timed(
        instances, ExecOptions(jobs=4, cache_dir=cache_dir))
    warm_options = ExecOptions(jobs=1, cache_dir=cache_dir)
    timings["jobs1_warm_cache"], warm = _timed(instances, warm_options)

    stats = warm_options.open_cache().stats
    assert stats.hits == 40 and stats.misses == 0
    assert _energies(warm) == _energies(baseline)
    # A warm cache replaces scheduling with 40 small JSON reads; it must
    # beat the cold serial run outright.
    assert timings["jobs1_warm_cache"] < timings["jobs1_nocache"]

    print()
    print(json.dumps({
        "bench": "runner_scaling",
        "instances": len(instances),
        "seconds": {k: round(v, 4) for k, v in timings.items()},
        "speedup_vs_serial": {
            k: round(timings["jobs1_nocache"] / v, 2)
            for k, v in timings.items() if v > 0},
        "warm_cache": {"hits": stats.hits, "misses": stats.misses,
                       "bytes_read": stats.bytes_read},
    }, indent=2, sort_keys=True))
