"""Microbenchmarks: scheduler and heuristic runtime scaling.

The paper reports that finding the optimal configuration "never took
more than 20 seconds on a 3 GHz Pentium 4" for any benchmark; these
benches track the analogous cost here (list scheduling dominates, as the
T_LAMPS = #schedules * T_ls complexity analysis predicts).
"""

import pytest

from repro.core.energy import schedule_energy_sweep
from repro.core.platform import default_platform
from repro.core.stretch import feasible_points, required_frequency
from repro.core.suite import paper_suite
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule


@pytest.mark.parametrize("n", [500, 2000, 5000])
def test_list_schedule_scaling(benchmark, n):
    g = stg_random_graph(n, 42)
    d = task_deadlines(g, 2 * critical_path_length(g))
    s = benchmark(list_schedule, g, 16, d)
    assert s.makespan > 0


@pytest.mark.parametrize("n", [100, 1000])
def test_paper_suite_runtime(benchmark, n):
    g = stg_random_graph(n, 7).scaled(3.1e6)
    deadline = 2 * critical_path_length(g)
    res = benchmark.pedantic(paper_suite, args=(g, deadline),
                             rounds=3, iterations=1, warmup_rounds=1)
    assert len(res) == 6


# ---------------------------------------------------------------------------
# Array-native kernel micro-benchmarks (tools/perf_smoke.py measures the
# same two paths for the committed BENCH_kernel_baseline.json).
# ---------------------------------------------------------------------------

def _kernel_instance(n):
    platform = default_platform()
    g = stg_random_graph(n, 7).scaled(3.1e6)
    deadline = 2 * critical_path_length(g)
    d = task_deadlines(g, deadline)
    return platform, g, d, platform.seconds(deadline)


@pytest.mark.parametrize("n", [100, 1000, 5000])
def test_kernel_schedule_build(benchmark, n):
    """Schedule.from_arrays fast path via the event-driven scheduler."""
    platform, g, d, _ = _kernel_instance(n)
    s = benchmark(list_schedule, g, 16, d)
    assert s.employed_processors <= 16


@pytest.mark.parametrize("n", [100, 1000, 5000])
def test_kernel_full_ladder_sweep(benchmark, n):
    """One-shot vectorized energy sweep over the feasible ladder."""
    platform, g, d, window = _kernel_instance(n)
    s = list_schedule(g, 16, d)
    points = feasible_points(platform.ladder,
                             required_frequency(s, d, platform.fmax))
    assert points
    out = benchmark(schedule_energy_sweep, s, points, window,
                    sleep=platform.sleep)
    assert len(out) == len(points)


def test_mpeg_suite_runtime(benchmark):
    from repro.core.platform import default_platform
    from repro.graphs.mpeg import MPEG_DEADLINE_SECONDS, mpeg1_gop_graph

    plat = default_platform()
    g = mpeg1_gop_graph()
    deadline = plat.reference_cycles(MPEG_DEADLINE_SECONDS)
    res = benchmark(paper_suite, g, deadline, platform=plat)
    assert len(res) == 6
