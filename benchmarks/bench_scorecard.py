"""Bench: the end-to-end reproduction scorecard."""

from repro.experiments import scorecard


def test_scorecard(once):
    report = once(scorecard.run)
    print()
    print(report)
    assert report.data["failed"] == []
