"""Bench: trace-simulator cross-validation of the analytic accounting.

Runs the full heuristic lineup over a workload pool, replays every
resulting schedule through the trace-level simulator, and checks that
the integrated trace energy matches the closed-form accounting bit-for-
bit (zero transition latencies) and tracks it closely under realistic
sub-millisecond latencies.
"""

import numpy as np

from repro.core import Heuristic, default_platform, paper_suite
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sim import ProcState, TransitionModel, execute
from repro.util import render_table

CONCRETE = (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
            Heuristic.LAMPS_PS)


def run_crossvalidation(seeds=range(8), factor=2.0):
    rows = []
    worst_rel = 0.0
    latency = TransitionModel(down_latency=2e-4, up_latency=3e-4)
    for seed in seeds:
        g = stg_random_graph(50, seed).scaled(3.1e6)
        deadline = factor * critical_path_length(g)
        results = paper_suite(g, deadline)
        for h in CONCRETE:
            r = results[h]
            ps = h in (Heuristic.SNS_PS, Heuristic.LAMPS_PS)
            trace = execute(r.schedule, r.point, r.deadline_seconds,
                            shutdown=ps)
            trace.validate()
            rel = abs(trace.energy() / r.total_energy - 1.0)
            worst_rel = max(worst_rel, rel)
            realistic = execute(r.schedule, r.point, r.deadline_seconds,
                                shutdown=ps, transitions=latency)
            sleep_s = sum(realistic.time_in_state(p, ProcState.SLEEP)
                          for p in realistic.processors)
            rows.append((g.name, h.value, f"{r.total_energy:.5f}",
                         f"{rel:.1e}",
                         f"{realistic.energy():.5f}",
                         f"{sleep_s * 1e3:.1f} ms"))
    return rows, worst_rel


def test_sim_crossvalidation(once):
    rows, worst_rel = once(run_crossvalidation)
    print()
    print(render_table(
        ["graph", "approach", "analytic [J]", "trace rel. err",
         "with 0.5 ms latencies [J]", "sleep time"],
        rows, title="Trace simulator vs closed-form energy accounting"))
    print(f"\nworst relative error (zero latencies): {worst_rel:.2e}")
    # Exact agreement up to float noise.
    assert worst_rel < 1e-9
