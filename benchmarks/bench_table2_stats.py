"""Bench: regenerate Table 2 (benchmark characteristics)."""

from repro.experiments import table2_benchmarks
from repro.graphs.applications import APPLICATION_STATS


def test_table2_stats(once):
    report = once(table2_benchmarks.run, graphs_per_group=10,
                  sizes=(50, 100, 500))
    print()
    print(report)
    # The application stand-ins must match the paper's Table 2 exactly.
    for name, (n, m, cpl, work) in APPLICATION_STATS.items():
        d = report.data[name]
        assert d["nodes"] == n and d["edges"] == m
        assert int(d["critical_path"]) == cpl
        assert int(d["total_work"]) == work
    # Random-group work in the published ballpark (mean weights ~4-12).
    for size in ("50", "100", "500"):
        works = report.data[size]["work"]
        assert min(works) > int(size)  # weights >= 1, most > 1
        assert max(works) < 20 * int(size)
