"""Bench: regenerate Table 3 (the MPEG-1 benchmark)."""

import pytest

from repro.experiments import table3_mpeg


def test_table3_mpeg(once):
    report = once(table3_mpeg.run)
    print()
    print(report)
    d = report.data
    # Processor counts straight out of the paper's table.
    assert d["LAMPS"]["processors"] == 3
    assert d["LAMPS+PS"]["processors"] == 6
    assert d["S&S"]["processors"] in (7, 8)
    # Energy ratios within a few percent of the published column.
    for approach in ("LAMPS", "S&S+PS", "LAMPS+PS", "LIMIT-SF",
                     "LIMIT-MF"):
        assert d[approach]["relative"] == pytest.approx(
            d[approach]["paper_relative"], abs=0.05), approach
    # The paper's conclusion: the +PS schedules are essentially optimal.
    assert d["LAMPS+PS"]["energy"] <= d["LIMIT-SF"]["energy"] * 1.01
