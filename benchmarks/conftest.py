"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables or figures and prints
the rows/series it reports (run with ``-s`` to see them inline; the
``python -m repro.experiments`` CLI prints the same blocks).  Timing is
collected by pytest-benchmark; experiment benches run one round — they
benchmark the experiment, not a microkernel.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (heavy experiment bodies)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture version of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
