#!/usr/bin/env python
"""Energy-aware scheduling on a heterogeneous big.LITTLE processor.

The paper's heuristics pick how many processors to use; on a
heterogeneous part the question becomes *which* processors.  This
example sweeps the deadline on a 4-big + 4-little system (little cores:
half the speed at 30% of the power) and shows work migrating to the
efficient cores as slack appears — and the energy dividend that brings
over the best homogeneous big-core schedule.

Run:  python examples/big_little.py [seed]
"""

import sys

from repro.core import lamps_ps
from repro.graphs.analysis import critical_path_length, graph_stats
from repro.graphs.generators import stg_random_graph
from repro.hetero import BIG_LITTLE, hetero_lamps
from repro.util import render_table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    graph = stg_random_graph(50, seed, name=f"workload{seed}") \
        .scaled(3.1e6)
    s = graph_stats(graph)
    print(f"Workload: {s.n} tasks, parallelism {s.parallelism:.1f}")
    print(f"System: {BIG_LITTLE!r} — little cores run at half speed "
          f"on 30% power (0.6x energy per unit work)\n")

    cpl = critical_path_length(graph)
    rows = []
    for factor in (1.1, 1.5, 2.0, 4.0, 8.0):
        deadline = factor * cpl
        het = hetero_lamps(graph, deadline, BIG_LITTLE)
        homo = lamps_ps(graph, deadline)
        saving = 1.0 - het.total_energy / homo.total_energy
        rows.append((
            factor,
            f"{homo.total_energy:.4f}",
            f"{het.total_energy:.4f}",
            het.counts.get("big", 0),
            het.counts.get("little", 0),
            f"{het.point.frequency / 1e9:.2f}",
            f"{100 * saving:.1f}%",
        ))
    print(render_table(
        ["deadline xCPL", "big-only [J]", "big.LITTLE [J]", "big",
         "little", "f [GHz]", "saving"],
        rows, title="Heterogeneous LAMPS vs homogeneous LAMPS+PS"))
    print("\nTight deadlines need the big cores' speed; with slack the "
          "schedule migrates to the little cores and pockets their "
          "efficiency, on top of the paper's DVS + shutdown + "
          "processor-count levers.")


if __name__ == "__main__":
    main()
