#!/usr/bin/env python
"""Design-space exploration: processors x frequency x deadline.

Walks the energy landscape the LAMPS heuristics search: for a workload
graph, shows (a) energy versus processor count at several deadlines —
the paper's Fig. 6 view, including where counts become infeasible — and
(b) how the best configuration moves as the deadline loosens.

Run:  python examples/design_space.py [seed]
"""

import sys

from repro.core import (
    Heuristic,
    default_platform,
    energy_vs_processors,
    paper_suite,
)
from repro.graphs.analysis import (
    average_parallelism,
    critical_path_length,
    graph_stats,
)
from repro.graphs.generators import stg_random_graph
from repro.util import render_series, render_table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    graph = stg_random_graph(80, seed, name=f"workload{seed}") \
        .scaled(3.1e6)
    s = graph_stats(graph)
    print(f"Workload: {s.n} tasks, {s.m} edges, parallelism "
          f"{s.parallelism:.1f}\n")

    # (a) Energy vs processor count for two deadlines.
    cpl = critical_path_length(graph)
    max_n = min(graph.n, 16)
    columns = {}
    for factor in (1.5, 4.0):
        curve = energy_vs_processors(graph, factor * cpl,
                                     max_processors=max_n)
        columns[f"D={factor}xCPL"] = [
            round(e.total, 4) if e is not None else float("nan")
            for _, e in curve]
    print(render_series("N", list(range(1, max_n + 1)), columns,
                        title="Total energy [J] vs processor count "
                              "(nan = deadline missed)"))
    print()

    # (b) Best configuration per deadline factor.
    rows = []
    for factor in (1.2, 1.5, 2.0, 4.0, 8.0):
        res = paper_suite(graph, factor * cpl)
        r = res[Heuristic.LAMPS_PS]
        rows.append((
            factor, f"{r.total_energy:.4f}", r.n_processors,
            f"{r.point.vdd:.2f}", r.energy.n_shutdowns,
            f"{100 * r.total_energy / res[Heuristic.SNS].total_energy:.0f}%",
        ))
    print(render_table(
        ["deadline xCPL", "energy [J]", "procs", "Vdd [V]",
         "shutdowns", "vs S&S"],
        rows, title="LAMPS+PS best configuration per deadline"))
    print("\nLooser deadlines -> fewer processors, lower voltage, more "
          "shutdown opportunities; past the critical speed only the "
          "processor count keeps falling.")


if __name__ == "__main__":
    main()
