#!/usr/bin/env python
"""Scheduling a streaming Kahn Process Network (paper §3.1, Fig. 1).

Models a software video pipeline as a KPN — capture -> filter -> encode
-> mux with a feedback channel from encode back to filter (rate
control) — unrolls it into a deadline-annotated DAG, and schedules it
for a required throughput.

Demonstrates the piece of the application model most reproductions skip:
per-task deadlines from throughput requirements, including a delayed
(feedback) channel that crosses iteration boundaries.

Run:  python examples/kpn_pipeline.py
"""

from repro.core import Heuristic, default_platform, evaluate_all
from repro.graphs import Channel, ProcessNetwork
from repro.sched.deadlines import task_deadlines
from repro.sched.validate import check_deadlines
from repro.util import render_table

# Per-iteration work of each stage, in cycles at 3.1 GHz.
MS = 3.1e6
PIPELINE = ProcessNetwork(
    processes={
        "capture": 1.0 * MS,
        "filter": 4.0 * MS,
        "encode": 7.0 * MS,
        "mux": 0.8 * MS,
    },
    channels=[
        Channel("capture", "filter"),
        Channel("filter", "encode"),
        Channel("encode", "mux"),
        # Rate control: encode's output influences the *next* frame's
        # filtering — a one-iteration feedback delay (Fig. 1's T2 -> T3).
        Channel("encode", "filter", delay=1),
    ],
)


def main() -> None:
    plat = default_platform()
    frames = 8
    period = plat.reference_cycles(1 / 60.0)      # 60 frames per second
    first_deadline = plat.reference_cycles(0.05)  # 50 ms startup latency

    unrolled = PIPELINE.unroll(frames, period=period,
                               first_deadline=first_deadline)
    print(f"Unrolled {frames} iterations: {unrolled.graph.n} tasks, "
          f"{unrolled.graph.m} dependences, horizon "
          f"{plat.seconds(unrolled.horizon) * 1e3:.0f} ms\n")

    results = evaluate_all(
        unrolled.graph, unrolled.horizon,
        deadline_overrides=unrolled.deadlines,
        heuristics=(Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
                    Heuristic.LAMPS_PS))
    base = results[Heuristic.SNS].total_energy
    rows = []
    d = task_deadlines(unrolled.graph, unrolled.horizon,
                       overrides=unrolled.deadlines)
    for r in results.values():
        late = check_deadlines(r.schedule, d,
                               frequency_ratio=r.point.frequency
                               / plat.fmax)
        rows.append((
            r.heuristic.value, f"{r.total_energy * 1e3:.2f}",
            r.n_processors, f"{r.point.frequency / 1e9:.2f}",
            f"{100 * r.total_energy / base:.1f}%",
            "yes" if late is None else "NO"))
    print(render_table(
        ["approach", "energy [mJ]", "procs", "f [GHz]", "vs S&S",
         "throughput met"],
        rows, title="60 fps pipeline, 8 unrolled frames"))

    # Throughput sweep: where does the pipeline saturate?
    print()
    rows = []
    for fps in (30, 60, 120, 240):
        u = PIPELINE.unroll(frames,
                            period=plat.reference_cycles(1 / fps),
                            first_deadline=plat.reference_cycles(
                                max(0.05, 2 / fps)))
        try:
            res = evaluate_all(u.graph, u.horizon,
                               deadline_overrides=u.deadlines,
                               heuristics=(Heuristic.LAMPS_PS,))
            r = res[Heuristic.LAMPS_PS]
            rows.append((fps, f"{r.total_energy * 1e3:.2f}",
                         r.n_processors,
                         f"{r.point.frequency / 1e9:.2f}"))
        except Exception as exc:  # infeasible throughput
            rows.append((fps, "infeasible", "-", "-"))
    print(render_table(
        ["fps", "LAMPS+PS energy [mJ]", "procs", "f [GHz]"],
        rows, title="Throughput sweep"))


if __name__ == "__main__":
    main()
