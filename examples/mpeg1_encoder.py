#!/usr/bin/env python
"""Real-time MPEG-1 encoding on an embedded multiprocessor (paper §5.3).

The motivating application of the paper: encode 30 frames/s of video —
one 15-frame group of pictures (Fig. 9) every 0.5 s — on a shared-memory
multiprocessor, spending as little energy as possible.

The script compares all scheduling approaches for the real-time deadline,
then explores how the energy budget changes when the deadline tightens
(higher frame rates) — the trade-off a codec integrator actually faces.

Run:  python examples/mpeg1_encoder.py
"""

from repro.core import Heuristic, default_platform, paper_suite
from repro.graphs import mpeg1_gop_graph
from repro.graphs.analysis import critical_path_length
from repro.util import render_table


def gop_report(deadline_seconds: float) -> list:
    plat = default_platform()
    graph = mpeg1_gop_graph()
    deadline = plat.reference_cycles(deadline_seconds)
    results = paper_suite(graph, deadline, platform=plat)
    base = results[Heuristic.SNS].total_energy
    return [
        (r.heuristic.value,
         f"{r.total_energy:.4f}",
         r.n_processors if r.n_processors is not None else "-",
         f"{r.point.frequency / 1e9:.2f}" if r.point else "-",
         f"{100 * r.total_energy / base:.1f}%")
        for r in results.values()
    ]


def main() -> None:
    plat = default_platform()
    graph = mpeg1_gop_graph()
    cpl_s = critical_path_length(graph) / plat.fmax
    print(f"GOP critical path at full speed: {cpl_s * 1e3:.1f} ms "
          f"(deadline budget: 500 ms at 30 frames/s)\n")

    print(render_table(
        ["approach", "energy [J]", "procs", "f [GHz]", "vs S&S"],
        gop_report(0.5),
        title="30 frames/s (the paper's Table 3 setting)"))
    print()

    # A codec integrator's question: what does 60 fps cost?
    rows = []
    for fps in (30, 45, 60, 90):
        deadline_s = 15.0 / fps
        res = paper_suite(graph, plat.reference_cycles(deadline_s),
                          platform=plat)
        r = res[Heuristic.LAMPS_PS]
        rows.append((fps, f"{deadline_s * 1e3:.0f}",
                     f"{r.total_energy:.4f}", r.n_processors,
                     f"{r.point.frequency / 1e9:.2f}"))
    print(render_table(
        ["frame rate", "deadline [ms]", "LAMPS+PS energy [J]",
         "processors", "f [GHz]"],
        rows, title="Energy vs frame rate (LAMPS+PS)"))
    print("\nHigher frame rates force more processors and higher "
          "frequencies — energy per GOP rises superlinearly.")


if __name__ == "__main__":
    main()
