#!/usr/bin/env python
"""Energy-aware scheduling of a periodic real-time task set.

Section 3.1 of the paper: periodic tasks translate to the DAG model via
frame-based scheduling.  This example models a small automotive-style
controller — sensor fusion, control law, actuation, logging — with
different periods, unrolls one hyperperiod, and finds the minimum-energy
configuration with each heuristic while honouring every job's period
deadline.

Run:  python examples/periodic_tasks.py
"""

from repro.core import Heuristic, default_platform, evaluate_all
from repro.graphs.periodic import PeriodicTask, frame_based_dag
from repro.sched.deadlines import task_deadlines
from repro.sched.validate import check_deadlines
from repro.util import render_table

MS = 3.1e6  # cycles per millisecond at the 3.1 GHz reference clock

TASK_SET = [
    PeriodicTask("imu_fusion", wcet=2.0 * MS, period=10 * MS),
    PeriodicTask("control_law", wcet=4.0 * MS, period=20 * MS),
    PeriodicTask("actuation", wcet=1.0 * MS, period=20 * MS),
    PeriodicTask("telemetry", wcet=3.0 * MS, period=40 * MS),
    PeriodicTask("logging", wcet=2.5 * MS, period=40 * MS),
]


def main() -> None:
    plat = default_platform()
    workload = frame_based_dag(TASK_SET)
    print(f"Hyperperiod: {plat.seconds(workload.horizon) * 1e3:.0f} ms, "
          f"{workload.graph.n} jobs, utilization "
          f"{workload.utilization:.2f} (at full speed)\n")

    rows = [(t.name, f"{t.wcet / MS:.1f}", f"{t.period / MS:.0f}",
             f"{t.utilization:.3f}") for t in TASK_SET]
    print(render_table(["task", "wcet [ms]", "period [ms]", "U"],
                       rows, title="Task set"))
    print()

    results = evaluate_all(
        workload.graph, workload.horizon,
        deadline_overrides=workload.deadlines,
        heuristics=(Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
                    Heuristic.LAMPS_PS))
    d = task_deadlines(workload.graph, workload.horizon,
                       overrides=workload.deadlines)
    base = results[Heuristic.SNS].total_energy
    rows = []
    for r in results.values():
        late = check_deadlines(
            r.schedule, d,
            frequency_ratio=r.point.frequency / plat.fmax)
        rows.append((r.heuristic.value,
                     f"{r.total_energy * 1e3:.3f}",
                     r.n_processors,
                     f"{r.point.frequency / 1e9:.2f}",
                     f"{100 * r.total_energy / base:.1f}%",
                     "all met" if late is None else late))
    print(render_table(
        ["approach", "energy/hyperperiod [mJ]", "procs", "f [GHz]",
         "vs S&S", "period deadlines"],
        rows, title="One hyperperiod, every job by its period boundary"))
    print("\nEvery job's deadline is its own period boundary — the "
          "frame-based translation the paper cites (Liberato et al.).")


if __name__ == "__main__":
    main()
