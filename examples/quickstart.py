#!/usr/bin/env python
"""Quickstart: schedule a small task graph for minimum energy.

Builds the paper's 5-task illustration graph (Fig. 4), schedules it with
every approach, and prints the energies, operating points and an ASCII
Gantt chart of the chosen LAMPS+PS schedule.

Run:  python examples/quickstart.py
"""

from repro import TaskGraph, schedule
from repro.core import Heuristic, evaluate_all
from repro.sched.gantt import render_gantt
from repro.util import render_table

# Task weights are in clock cycles at the maximum frequency (3.1 GHz).
# One unit of the paper's example = 1 ms of work = 3.1e6 cycles.
UNIT = 3.1e6

graph = TaskGraph(
    weights={"T1": 2 * UNIT, "T2": 6 * UNIT, "T3": 4 * UNIT,
             "T4": 4 * UNIT, "T5": 2 * UNIT},
    edges=[("T1", "T2"), ("T1", "T3"), ("T2", "T5"), ("T3", "T5")],
    name="fig4-example",
)


def main() -> None:
    # One call: pick the heuristic, give a deadline as a multiple of the
    # critical path length (the paper's convention).
    best = schedule(graph, deadline_factor=1.5, heuristic="LAMPS+PS")
    print(f"LAMPS+PS: {best.total_energy * 1e3:.2f} mJ on "
          f"{best.n_processors} processors at "
          f"{best.point.frequency / 1e9:.2f} GHz "
          f"(Vdd = {best.point.vdd:.2f} V)\n")

    print(render_gantt(best.schedule, horizon_cycles=best.deadline_cycles
                       * best.point.frequency / 3.0863e9))
    print()

    # Compare the full lineup.
    results = evaluate_all(graph, deadline_factor=1.5)
    base = results[Heuristic.SNS].total_energy
    rows = [
        (r.heuristic.value,
         f"{r.total_energy * 1e3:.2f}",
         r.n_processors if r.n_processors is not None else "-",
         f"{r.point.vdd:.2f}",
         f"{100 * r.total_energy / base:.1f}%")
        for r in results.values()
    ]
    print(render_table(
        ["approach", "energy [mJ]", "processors", "Vdd [V]", "vs S&S"],
        rows, title="Deadline = 1.5 x critical path length"))


if __name__ == "__main__":
    main()
