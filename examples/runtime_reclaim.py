#!/usr/bin/env python
"""Online slack reclamation when tasks beat their worst-case budgets.

Static plans use worst-case execution times; real runs finish early.
This example builds a LAMPS+PS plan, then replays it in the
discrete-event simulator under actual execution times (50–100% of the
worst case) with three online behaviours:

* run the plan verbatim (extra slack is slept away),
* greedy slack reclamation (Zhu et al., TPDS 2003),
* leakage-aware reclamation (never scale below the critical speed —
  the paper's Fig. 2b insight applied at run time).

Run:  python examples/runtime_reclaim.py [seed]
"""

import sys

import numpy as np

from repro.core import default_platform, lamps_ps
from repro.graphs.analysis import critical_path_length, graph_stats
from repro.graphs.generators import stg_random_graph
from repro.graphs.transforms import weight_jitter
from repro.runtime import (
    greedy_reclaim_policy,
    leakage_aware_reclaim_policy,
    simulate,
)
from repro.sched.deadlines import task_deadlines
from repro.util import render_table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    plat = default_platform()
    graph = stg_random_graph(60, seed).scaled(3.1e6)
    deadline = 2 * critical_path_length(graph)
    plan = lamps_ps(graph, deadline)
    d = task_deadlines(graph, deadline)
    s = graph_stats(graph)
    print(f"Workload: {s.n} tasks, parallelism {s.parallelism:.1f}; "
          f"plan: {plan.n_processors} processors at "
          f"{plan.point.frequency / 1e9:.2f} GHz, "
          f"{plan.total_energy:.4f} J budgeted\n")

    rng = np.random.default_rng(seed)
    rows = []
    for label, jitter in (("exactly WCET", 0.0),
                          ("75-100% of WCET", 0.25),
                          ("50-100% of WCET", 0.5),
                          ("25-100% of WCET", 0.75)):
        actual_graph = weight_jitter(graph, jitter, rng)
        actual = {v: actual_graph.weight(v) for v in graph.node_ids}
        sims = {
            "as planned": simulate(plan.schedule, plan.point, d,
                                   actual_cycles=actual),
            "greedy reclaim": simulate(
                plan.schedule, plan.point, d, actual_cycles=actual,
                policy=greedy_reclaim_policy(plan.point, plat.ladder)),
            "leakage-aware": simulate(
                plan.schedule, plan.point, d, actual_cycles=actual,
                policy=leakage_aware_reclaim_policy(plan.point,
                                                    plat.ladder)),
        }
        assert all(not s.deadline_misses for s in sims.values())
        rows.append((label,
                     *(f"{sims[k].total_energy:.4f}"
                       for k in ("as planned", "greedy reclaim",
                                 "leakage-aware"))))
    print(render_table(
        ["actual times", "as planned [J]", "greedy reclaim [J]",
         "leakage-aware [J]"],
        rows, title="Realised energy (no deadline ever missed)"))
    print("\nGreedy reclamation can scale below the critical speed and "
          "lose to the leakage-aware floor — leakage turns classic "
          "race-to-idle wisdom on its head, exactly as Fig. 2b "
          "predicts.")


if __name__ == "__main__":
    main()
