#!/usr/bin/env python
"""Batch campaign over STG files on disk.

Shows the downstream-user workflow with the Standard Task Graph Set's
on-disk format: write a directory of ``.stg`` files (here: generated;
with the real STG distribution, point ``--dir`` at it), then load every
file, schedule it under all approaches, and aggregate the savings.

Run:  python examples/stg_campaign.py [--dir PATH] [--count N]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.core import Heuristic, paper_suite
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_group
from repro.graphs.stg import load_stg, save_stg, strip_dummies
from repro.util import render_table


def write_campaign(directory: Path, count: int) -> None:
    for g in stg_group(60, count, seed=99):
        save_stg(g, directory / f"{g.name}.stg")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", type=Path, default=None,
                        help="directory of .stg files (default: "
                             "generate a temporary campaign)")
    parser.add_argument("--count", type=int, default=8,
                        help="graphs to generate when --dir is not given")
    parser.add_argument("--deadline-factor", type=float, default=2.0)
    args = parser.parse_args()

    if args.dir is None:
        tmp = tempfile.TemporaryDirectory()
        directory = Path(tmp.name)
        write_campaign(directory, args.count)
        print(f"Generated {args.count} graphs in {directory}")
    else:
        directory = args.dir

    files = sorted(directory.glob("*.stg"))
    if not files:
        raise SystemExit(f"no .stg files in {directory}")

    heuristics = (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
                  Heuristic.LAMPS_PS, Heuristic.LIMIT_SF)
    relative = {h: [] for h in heuristics}
    rows = []
    for path in files:
        graph = strip_dummies(load_stg(path)).scaled(3.1e6)
        deadline = args.deadline_factor * critical_path_length(graph)
        res = paper_suite(graph, deadline)
        base = res[Heuristic.SNS].total_energy
        for h in heuristics:
            relative[h].append(res[h].total_energy / base)
        rows.append((path.stem,
                     *(f"{100 * res[h].total_energy / base:.1f}%"
                       for h in heuristics)))

    rows.append(("MEAN", *(f"{100 * np.mean(relative[h]):.1f}%"
                           for h in heuristics)))
    print(render_table(
        ["graph", *(h.value for h in heuristics)], rows,
        title=f"Energy relative to S&S "
              f"(deadline = {args.deadline_factor} x CPL)"))


if __name__ == "__main__":
    main()
