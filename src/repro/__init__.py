"""repro — reproduction of "Leakage-aware multiprocessor scheduling for
low power" (de Langen & Juurlink).

Public API highlights:

* :mod:`repro.power` — 70 nm power model, DVS ladder, sleep model.
* :mod:`repro.graphs` — task graphs, STG I/O, generators, MPEG-1, KPN.
* :mod:`repro.sched` — list scheduling (EDF and friends), schedules.
* :mod:`repro.core` — S&S, LAMPS, the +PS variants, LIMIT-SF/MF, and the
  :func:`repro.core.schedule` facade.
* :mod:`repro.experiments` — regenerates every table and figure.
"""

from .core import (
    Heuristic,
    ScheduleResult,
    schedule,
)
from .graphs import TaskGraph
from .power import DVSLadder, PowerModel, SleepModel, TECH_70NM, Technology

__version__ = "1.0.0"

__all__ = [
    "Heuristic",
    "ScheduleResult",
    "schedule",
    "TaskGraph",
    "DVSLadder",
    "PowerModel",
    "SleepModel",
    "Technology",
    "TECH_70NM",
    "__version__",
]
