"""Strict invariant-audit layer for the heuristic pipeline.

Every energy number in the reproduction flows through ``list_schedule →
required_frequency → schedule_energy``; a silently wrong schedule would
corrupt every downstream table — and, with the on-disk result cache,
get *persisted*.  This package is the always-available correctness
layer that guards against exactly that:

- :mod:`repro.audit.report` — :class:`AuditLog` (per-phase counters +
  violations, strict/collect modes) and the violation types.
- :mod:`repro.audit.invariants` — the checks themselves: structural
  schedule validation, deadline satisfaction at the chosen operating
  point, and energy-conservation invariants cross-checked against an
  independently recomputed per-processor integral.
- :mod:`repro.audit.corpus` — :func:`audit_corpus`, the bundled
  STG + MPEG sweep behind the ``repro audit`` CLI subcommand.

Enable it anywhere with ``strict=True`` (``repro.core.api.schedule``,
``paper_suite``, the S&S/LAMPS entry points, ``ExecOptions``,
``python -m repro.experiments --strict``); strict mode is a *no-op on
results* — byte-identical outputs, verified by ``tests/audit``.
"""

from .corpus import CorpusAudit, CorpusRow, audit_corpus
from .invariants import (
    audit_energy,
    audit_intermediate_schedule,
    audit_result,
    reference_energy,
)
from .report import AuditLog, AuditViolation, AuditViolationError

__all__ = [
    "AuditLog",
    "AuditViolation",
    "AuditViolationError",
    "audit_intermediate_schedule",
    "audit_energy",
    "audit_result",
    "reference_energy",
    "CorpusAudit",
    "CorpusRow",
    "audit_corpus",
]
