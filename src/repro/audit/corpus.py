"""Strict-mode sweep over the bundled STG + MPEG corpus.

:func:`audit_corpus` replays :func:`repro.core.suite.paper_suite` on
every bundled benchmark graph across the paper's deadline factors with
the full invariant-audit layer enabled, and returns the audit log plus
one summary row per instance — the data behind the ``repro audit`` CLI
subcommand's tables.  A clean sweep (zero violations) is the
acceptance bar for every change to the heuristic pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.platform import Platform, default_platform
from .report import AuditLog

__all__ = ["CorpusRow", "CorpusAudit", "audit_corpus"]

#: Default coarse-grain scale (cycles per STG weight unit, §5.1).
COARSE_SCALE = 3.1e6

#: Bundled graphs whose weights are already in cycles (no scaling).
_CYCLE_UNIT_GRAPHS = frozenset({"mpeg1"})


@dataclass(frozen=True)
class CorpusRow:
    """Audit outcome of one (graph, deadline factor) instance."""

    graph_name: str
    n_tasks: int
    deadline_factor: float
    checks_passed: int
    violations: int
    error: str = ""  # non-audit failure (e.g. infeasible instance)


@dataclass
class CorpusAudit:
    """Outcome of one corpus sweep: the shared log + per-instance rows."""

    log: AuditLog
    rows: List[CorpusRow]

    @property
    def clean(self) -> bool:
        """No violations and no instance-level errors."""
        return self.log.clean and all(not r.error for r in self.rows)


def audit_corpus(
    *,
    names: Optional[Sequence[str]] = None,
    deadline_factors: Sequence[float] = (1.5, 2.0, 4.0, 8.0),
    platform: Optional[Platform] = None,
    scale: float = COARSE_SCALE,
    strict: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
) -> CorpusAudit:
    """Audit the paper lineup on the bundled corpus.

    Args:
        names: bundled graph names (default: all of
            :func:`repro.graphs.datasets.bundled_names` — the STG
            applications, the random groups, and the MPEG-1 GOP).
        deadline_factors: deadlines as multiples of each graph's
            critical path length.
        platform: shared platform (default: the paper's 70 nm one).
        scale: cycles per STG weight unit for the STG-unit graphs
            (``mpeg1`` ships in cycles and is never scaled).
        strict: raise on the first violation instead of collecting all
            of them into the returned log.
        progress: optional ``(done, total)`` callback per instance.

    Returns:
        A :class:`CorpusAudit`; ``.clean`` is the pass/fail verdict.
    """
    # Imported lazily: the corpus sweep sits on top of the whole core
    # package, which itself imports the audit primitives.
    from ..core.suite import paper_suite
    from ..graphs.analysis import critical_path_length
    from ..graphs.datasets import bundled_names, load_bundled

    platform = platform or default_platform()
    log = AuditLog(strict=strict)
    rows: List[CorpusRow] = []
    chosen = list(names) if names is not None else bundled_names()
    total = len(chosen) * len(deadline_factors)
    done = 0
    for name in chosen:
        graph = load_bundled(name)
        if name not in _CYCLE_UNIT_GRAPHS and scale != 1.0:
            graph = graph.scaled(scale)
        cpl = critical_path_length(graph)
        for factor in deadline_factors:
            before_checks = log.invariant_checks_passed
            before_violations = len(log.violations)
            error = ""
            try:
                paper_suite(graph, factor * cpl, platform=platform,
                            audit=log)
            except Exception as exc:  # noqa: BLE001 - reported, not hidden
                if strict:
                    raise
                error = f"{type(exc).__name__}: {exc}"
            rows.append(CorpusRow(
                graph_name=name,
                n_tasks=graph.n,
                deadline_factor=factor,
                checks_passed=log.invariant_checks_passed - before_checks,
                violations=len(log.violations) - before_violations,
                error=error,
            ))
            done += 1
            if progress is not None:
                progress(done, total)
    return CorpusAudit(log=log, rows=rows)
