"""The invariant checks behind strict mode.

Three layers, all side-effect-free on the results they inspect:

* **Structure** — every intermediate schedule the heuristics build is
  re-checked with :func:`repro.sched.validate.validate_schedule`
  (placement/precedence/overlap invariants).
* **Deadlines** — the finally chosen schedule meets every per-task
  deadline *at the chosen operating point* (not merely at full speed).
* **Energy conservation** — the reported :class:`EnergyBreakdown` has
  non-negative components, its ``busy + idle + sleep + overhead``
  matches an *independently* recomputed per-processor integral (walked
  directly over the placements, not through the accounting code under
  test), and a breakdown computed with processor shutdown never exceeds
  the no-shutdown energy of the same schedule at the same point.

Violations are reported through an :class:`~repro.audit.report.AuditLog`
— raising :class:`~repro.audit.report.AuditViolationError` in strict
mode, accumulating otherwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..power.dvs import OperatingPoint
from ..power.shutdown import SleepModel
from ..sched.schedule import Schedule
from ..sched.validate import (
    ScheduleInvariantError,
    check_deadlines,
    validate_schedule,
)
from .report import AuditLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.energy import EnergyBreakdown

__all__ = [
    "reference_energy",
    "audit_intermediate_schedule",
    "audit_energy",
    "audit_result",
]

#: Relative tolerance for comparing the reported breakdown against the
#: independently recomputed integral (float summation-order drift).
_ENERGY_REL_TOL = 1e-9


def reference_energy(schedule: Schedule, point: OperatingPoint,
                     deadline_seconds: float, *,
                     sleep: Optional[SleepModel] = None) -> "EnergyBreakdown":
    """Independently recompute the energy of ``schedule`` at ``point``.

    Walks every processor's placement list directly — deliberately *not*
    reusing :meth:`Schedule.gap_lengths`/:meth:`Schedule.busy_cycles`,
    so it cross-checks the accounting in
    :func:`repro.core.energy.schedule_energy` rather than repeating it.
    """
    # Imported lazily: strict mode makes repro.core call into this
    # module, so a module-level import back into repro.core would cycle.
    from ..core.energy import EnergyBreakdown

    f = point.frequency
    horizon = deadline_seconds * f  # cycles at the operating point
    busy = idle = sleep_e = overhead = 0.0
    n_shutdowns = 0
    for proc in range(schedule.n_processors):
        placements = schedule.processor_tasks(proc)
        if not placements:
            continue  # never employed -> fully off
        t = 0.0
        gap_cycles = []
        for pl in sorted(placements, key=lambda p: p.start):
            if pl.start > t:
                gap_cycles.append(pl.start - t)
            busy += (pl.finish - pl.start) * point.energy_per_cycle
            t = max(t, pl.finish)
        if horizon > t + 1e-9 * max(1.0, abs(t)):
            gap_cycles.append(horizon - t)
        for g in gap_cycles:
            seconds = g / f
            if sleep is not None and sleep.would_shut_down(
                    seconds, point.idle_power):
                sleep_e += seconds * sleep.sleep_power
                overhead += sleep.overhead_energy
                n_shutdowns += 1
            else:
                idle += seconds * point.idle_power
    return EnergyBreakdown(busy=busy, idle=idle, sleep=sleep_e,
                           overhead=overhead, n_shutdowns=n_shutdowns)


def audit_intermediate_schedule(schedule: Schedule, log: AuditLog,
                                context: str) -> None:
    """Structural validation of one schedule the pipeline built."""
    try:
        validate_schedule(schedule)
    except ScheduleInvariantError as exc:
        log.fail("structure", context, str(exc))
        return
    log.passed()


def _close(a: float, b: float, scale: float) -> bool:
    return abs(a - b) <= _ENERGY_REL_TOL * max(1.0, scale)


def audit_energy(schedule: Schedule, energy: "EnergyBreakdown",
                 point: OperatingPoint, deadline_seconds: float,
                 sleep: Optional[SleepModel], log: AuditLog,
                 context: str) -> None:
    """Energy-conservation checks of one reported breakdown."""
    from ..core.energy import schedule_energy

    # 1. Non-negative components.
    bad = [name for name in ("busy", "idle", "sleep", "overhead")
           if getattr(energy, name) < 0.0]
    if bad:
        log.fail("energy", context,
                 f"negative breakdown component(s) {bad}: {energy}")
    else:
        log.passed()

    # 2. busy + idle + sleep + overhead == independent integral.
    ref = reference_energy(schedule, point, deadline_seconds, sleep=sleep)
    scale = max(abs(energy.total), abs(ref.total))
    mismatches = [
        f"{name} {got:.12g} != {want:.12g}"
        for name, got, want in (
            ("busy", energy.busy, ref.busy),
            ("idle", energy.idle, ref.idle),
            ("sleep", energy.sleep, ref.sleep),
            ("overhead", energy.overhead, ref.overhead),
            ("total", energy.total, ref.total),
        )
        if not _close(got, want, scale)
    ]
    if mismatches:
        log.fail("energy", context,
                 "breakdown disagrees with the independent integral: "
                 + "; ".join(mismatches))
    else:
        log.passed()

    # 3. The reported breakdown matches the scalar reference evaluator
    #    *exactly*.  The search loops produce their breakdowns with the
    #    vectorized schedule_energy_sweep, which is bitwise-identical to
    #    schedule_energy by construction — this is the check that keeps
    #    it honest.
    scalar = schedule_energy(schedule, point, deadline_seconds, sleep=sleep)
    exact_diffs = [
        f"{name} {got!r} != {want!r}"
        for name, got, want in (
            ("busy", energy.busy, scalar.busy),
            ("idle", energy.idle, scalar.idle),
            ("sleep", energy.sleep, scalar.sleep),
            ("overhead", energy.overhead, scalar.overhead),
            ("n_shutdowns", energy.n_shutdowns, scalar.n_shutdowns),
        )
        if got != want
    ]
    if exact_diffs:
        log.fail("energy", context,
                 "breakdown is not bitwise-equal to the scalar "
                 "schedule_energy reference: " + "; ".join(exact_diffs))
    else:
        log.passed()

    # 4. Shutdown never costs more than staying on (same schedule/point).
    if sleep is not None:
        no_ps = schedule_energy(schedule, point, deadline_seconds)
        if energy.total > no_ps.total * (1.0 + _ENERGY_REL_TOL):
            log.fail("dominance", context,
                     f"PS energy {energy.total:.12g} J exceeds no-PS "
                     f"energy {no_ps.total:.12g} J at "
                     f"{point.frequency / 1e9:.4g} GHz")
        else:
            log.passed()


def audit_result(result, deadlines, platform, log: AuditLog, *,
                 sleep: Optional[SleepModel] = None) -> None:
    """Full audit of a finally chosen :class:`ScheduleResult`.

    ``deadlines`` is the per-task deadline vector (reference cycles) the
    heuristic scheduled against; ``sleep`` must be the sleep model used
    to compute ``result.energy`` (``None`` for the non-PS heuristics).
    Results without a concrete schedule (cache restores, LIMIT bounds)
    are skipped — there is nothing to re-check.
    """
    schedule = result.schedule
    if schedule is None or result.point is None:
        return
    context = f"{result.graph_name or 'graph'}/{result.heuristic.value}"
    audit_intermediate_schedule(schedule, log, context)

    # Deadlines at the *chosen* operating point, not merely at f_max.
    ratio = result.point.frequency / platform.fmax
    late = check_deadlines(schedule, deadlines, frequency_ratio=ratio)
    if late is not None and result.meets_deadline:
        log.fail("deadline", context, late)
    else:
        log.passed()

    audit_energy(schedule, result.energy, result.point,
                 result.deadline_seconds, sleep, log, context)
