"""Structured audit reporting: counters, violations and the strict flag.

An :class:`AuditLog` is the mutable object every strict-mode heuristic
writes into: per-phase counters (schedules built, cache hits, anomaly
retries, operating points evaluated, invariant checks passed) plus the
list of :class:`AuditViolation` records.  In ``strict`` mode the first
violation raises :class:`AuditViolationError` immediately (fail fast —
this is the mode the ``--strict`` experiment flag uses); in collecting
mode (the ``repro audit`` CLI sweep) violations accumulate and are
rendered as a table afterwards.

The log is deliberately JSON-friendly: :meth:`AuditLog.counters` /
:meth:`AuditLog.merge` let worker processes ship their counters back to
the coordinating process as plain dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["AuditViolation", "AuditViolationError", "AuditLog"]

#: Names of the integer counters an :class:`AuditLog` carries, in
#: presentation order (also the merge/serialisation schema).
COUNTER_FIELDS = (
    "schedules_built",
    "cache_hits",
    "anomaly_retries",
    "operating_points_evaluated",
    "invariant_checks_passed",
)


class AuditViolationError(AssertionError):
    """A strict-mode invariant check failed."""


@dataclass(frozen=True)
class AuditViolation:
    """One failed invariant check.

    Attributes:
        kind: the invariant family — ``"structure"``, ``"deadline"``,
            ``"energy"`` or ``"dominance"``.
        context: where it happened, e.g. ``"robot[n=4]"`` or
            ``"robot/LAMPS+PS"``.
        message: the specific violated condition.
    """

    kind: str
    context: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.context}: {self.message}"


@dataclass
class AuditLog:
    """Counters and violations of one audited run.

    Attributes:
        strict: raise :class:`AuditViolationError` on the first
            violation instead of collecting it.
        schedules_built: list-scheduler invocations that were audited.
        cache_hits: instances served from the exec result cache (their
            schedules are not rebuilt, hence not re-validated).
        anomaly_retries: processor counts skipped or re-tried because a
            scheduling anomaly made them infeasible.
        operating_points_evaluated: (schedule, operating point) energy
            evaluations performed.
        invariant_checks_passed: individual invariant checks that held.
        violations: the failed checks (empty in strict mode unless the
            raised error was caught by the caller).
    """

    strict: bool = True
    schedules_built: int = 0
    cache_hits: int = 0
    anomaly_retries: int = 0
    operating_points_evaluated: int = 0
    invariant_checks_passed: int = 0
    violations: List[AuditViolation] = field(default_factory=list)

    # ------------------------------------------------------------------
    def passed(self, n: int = 1) -> None:
        """Record ``n`` invariant checks that held."""
        self.invariant_checks_passed += n

    def fail(self, kind: str, context: str, message: str) -> None:
        """Record a violation; raise immediately when strict."""
        violation = AuditViolation(kind=kind, context=context,
                                   message=message)
        self.violations.append(violation)
        if self.strict:
            raise AuditViolationError(str(violation))

    @property
    def clean(self) -> bool:
        """Whether no violation has been recorded."""
        return not self.violations

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """The integer counters as a plain (picklable/JSON-able) dict."""
        return {name: getattr(self, name) for name in COUNTER_FIELDS}

    def merge(self, counts: Dict[str, int],
              violations: Optional[List[dict]] = None) -> None:
        """Fold counters (and optional violation dicts) from a worker in."""
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + int(counts.get(name, 0)))
        for v in violations or []:
            self.fail(v["kind"], v["context"], v["message"])

    def summary_line(self) -> str:
        """One-line counter summary (the ``--strict`` stderr line)."""
        c = self.counters()
        checks = c["invariant_checks_passed"]
        return (f"[audit] {c['schedules_built']} schedules built, "
                f"{c['cache_hits']} cache hits, "
                f"{c['anomaly_retries']} anomaly retries, "
                f"{c['operating_points_evaluated']} operating points, "
                f"{checks} invariant checks passed, "
                f"{len(self.violations)} violations")
