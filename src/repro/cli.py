"""Top-level command-line interface.

Subcommands for the workflows a downstream user runs most::

    python -m repro info graph.stg
    python -m repro schedule graph.stg --deadline-factor 2 \\
        --heuristic LAMPS+PS
    python -m repro sweep graph.stg
    python -m repro generate --nodes 100 --count 5 --out-dir graphs/
    python -m repro power

STG files may contain the Standard Task Graph Set's dummy entry/exit
nodes; they are stripped automatically.  The ``--scale`` option maps STG
weight units to cycles (default: the paper's coarse scenario, 3.1e6).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.api import deadline_from_factor, evaluate_all, schedule
from .core.platform import default_platform
from .core.results import Heuristic
from .graphs.analysis import graph_stats
from .graphs.dag import TaskGraph
from .graphs.datasets import bundled_names, load_bundled
from .graphs.generators import stg_group
from .graphs.stg import load_stg, save_stg, strip_dummies
from .sched.gantt import render_gantt
from .util.tables import format_si, render_table

__all__ = ["main"]


def _load(path: str, scale: float) -> TaskGraph:
    """Load a graph from a .stg path or a bundled dataset name."""
    if not Path(path).exists() and path in bundled_names():
        graph = load_bundled(path)
    else:
        graph = strip_dummies(load_stg(path))
    return graph.scaled(scale) if scale != 1.0 else graph


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _load(args.graph, args.scale)
    s = graph_stats(graph)
    plat = default_platform()
    rows = [
        ("tasks", s.n),
        ("dependences", s.m),
        ("critical path", f"{s.cpl:g} cycles "
                          f"({plat.seconds(s.cpl) * 1e3:.3f} ms at fmax)"),
        ("total work", f"{s.work:g} cycles"),
        ("average parallelism", f"{s.parallelism:.2f}"),
    ]
    print(render_table(["property", "value"], rows,
                       title=f"{graph.name or args.graph}"))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    graph = _load(args.graph, args.scale)
    result = schedule(graph, deadline_factor=args.deadline_factor,
                      heuristic=args.heuristic, policy=args.policy)
    print(f"{result.heuristic.value}: "
          f"{result.total_energy:.6g} J on {result.n_processors} "
          f"processors at {format_si(result.point.frequency, 'Hz')} "
          f"(Vdd = {result.point.vdd:g} V)")
    e = result.energy
    print(f"  busy {e.busy:.4g} J | idle {e.idle:.4g} J | "
          f"sleep {e.sleep:.4g} J | overhead {e.overhead:.4g} J | "
          f"{e.n_shutdowns} shutdowns")
    if args.gantt and result.schedule is not None:
        print()
        print(render_gantt(result.schedule))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    graph = _load(args.graph, args.scale)
    rows = []
    for factor in args.deadline_factors:
        results = evaluate_all(graph, deadline_factor=factor)
        base = results[Heuristic.SNS].total_energy
        rows.extend(
            (factor, r.heuristic.value, f"{r.total_energy:.6g}",
             r.n_processors if r.n_processors is not None else "-",
             f"{100 * r.total_energy / base:.1f}%")
            for r in results.values())
    print(render_table(
        ["deadline xCPL", "approach", "energy [J]", "procs", "vs S&S"],
        rows, title=graph.name or args.graph))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for g in stg_group(args.nodes, args.count, seed=args.seed):
        path = out / f"{g.name}.stg"
        save_stg(g, path)
        print(path)
    return 0


def _cmd_bundled(args: argparse.Namespace) -> int:
    rows = []
    for name in bundled_names():
        s = graph_stats(load_bundled(name))
        rows.append((name, s.n, s.m, f"{s.cpl:g}", f"{s.work:g}",
                     f"{s.parallelism:.2f}"))
    print(render_table(
        ["name", "tasks", "edges", "critical path", "total work",
         "parallelism"],
        rows, title="Bundled task graphs (usable wherever a .stg path "
                    "is expected)"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .sim import execute, render_trace

    graph = _load(args.graph, args.scale)
    result = schedule(graph, deadline_factor=args.deadline_factor,
                      heuristic=args.heuristic)
    ps = Heuristic(args.heuristic) in (Heuristic.SNS_PS,
                                       Heuristic.LAMPS_PS)
    trace = execute(result.schedule, result.point,
                    result.deadline_seconds, shutdown=ps)
    print(f"{result.heuristic.value}: {result.total_energy:.6g} J on "
          f"{result.n_processors} processors at "
          f"{format_si(result.point.frequency, 'Hz')}")
    print()
    print(render_trace(trace, width=args.width))
    by_state = trace.energy_by_state()
    print()
    print(render_table(
        ["state", "energy [J]"],
        [(s.value, f"{e:.6g}") for s, e in sorted(
            by_state.items(), key=lambda kv: -kv[1])]))
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from .core.pareto import energy_deadline_front, knee_point

    graph = _load(args.graph, args.scale)
    front = energy_deadline_front(graph, factors=args.deadline_factors,
                                  heuristic=args.heuristic)
    rows = [(p.deadline_factor, f"{p.deadline_seconds * 1e3:.3f}",
             f"{p.energy:.6g}", p.n_processors,
             f"{p.frequency / 1e9:.2f}") for p in front]
    print(render_table(
        ["deadline xCPL", "deadline [ms]", "energy [J]", "procs",
         "f [GHz]"],
        rows, title=f"Energy-deadline front ({args.heuristic})"))
    knee = knee_point(front)
    print(f"\nknee point: {knee.deadline_factor} x CPL "
          f"({knee.energy:.6g} J) — loosening further recovers < 5%")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core.suite import paper_suite
    from .obs import ObsLog, format_log_stats, write_chrome_trace, \
        write_metrics_jsonl

    graph = _load(args.graph, args.scale)
    deadline = deadline_from_factor(graph, args.deadline_factor)
    log = ObsLog()
    with log.span("cli.profile", category="cli", graph=graph.name):
        results = paper_suite(graph, deadline, obs=log)
    for r in results.values():
        procs = r.n_processors if r.n_processors is not None else "-"
        print(f"{r.heuristic.value}: {r.total_energy:.6g} J on "
              f"{procs} processors")
    trace_path = write_chrome_trace(log, args.out)
    metrics_path = write_metrics_jsonl(
        log, trace_path.with_name(trace_path.name + ".metrics.jsonl"))
    print(file=sys.stderr)
    print(format_log_stats(log), file=sys.stderr)
    print(f"\ntrace written to {trace_path} (open in "
          f"https://ui.perfetto.dev); metrics in {metrics_path}",
          file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import aggregate_trace_events, format_stats, load_trace

    events, embedded = load_trace(args.trace)
    if embedded is not None:
        aggregates = embedded.get("spanAggregates") or \
            aggregate_trace_events(events)
        counters = embedded.get("counters")
        histograms = embedded.get("histograms")
    else:
        aggregates = aggregate_trace_events(events)
        counters = histograms = None
    if not aggregates and not counters:
        print(f"{args.trace}: no span events found", file=sys.stderr)
        return 1
    print(format_stats(aggregates=aggregates, counters=counters,
                       histograms=histograms))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .audit import audit_corpus

    def progress(done: int, total: int) -> None:
        print(f"\r[audit] {done}/{total} instances", end="",
              file=sys.stderr, flush=True)

    outcome = audit_corpus(
        names=args.graphs or None,
        deadline_factors=args.deadline_factors,
        scale=args.scale,
        progress=progress if sys.stderr.isatty() else None,
    )
    if sys.stderr.isatty():
        print(file=sys.stderr)

    rows = [
        (r.graph_name, r.n_tasks, f"{r.deadline_factor:g}",
         r.checks_passed, r.violations, r.error or "ok")
        for r in outcome.rows
    ]
    print(render_table(
        ["graph", "tasks", "deadline xCPL", "checks", "violations",
         "status"],
        rows, title="Invariant audit of the bundled corpus"))
    log = outcome.log
    print()
    print(render_table(
        ["counter", "value"],
        [("schedules built", log.schedules_built),
         ("anomaly retries", log.anomaly_retries),
         ("operating points evaluated", log.operating_points_evaluated),
         ("invariant checks passed", log.invariant_checks_passed),
         ("violations", len(log.violations))]))
    if log.violations:
        print()
        print(render_table(
            ["kind", "context", "message"],
            [(v.kind, v.context, v.message) for v in log.violations],
            title="Violations"))
    if not outcome.clean:
        print("\naudit FAILED", file=sys.stderr)
        return 1
    print(f"\n{log.summary_line()}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import main as lint_main

    return lint_main(args.lint_args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .obs import format_log_stats, write_chrome_trace
    from .serve import ScheduleServer

    server = ScheduleServer(
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        jobs=args.jobs,
        max_batch=args.max_batch,
        window_seconds=args.batch_window_ms / 1e3,
        max_pending=args.max_pending,
        obs_max_spans=args.obs_max_spans if args.obs_max_spans > 0
        else None,
        metrics_window_seconds=args.metrics_window_seconds,
    )

    async def _run() -> None:
        host, port = await server.start(args.host, args.port)
        cache = "disabled" if args.cache_dir is None else args.cache_dir
        print(f"repro serve: listening on http://{host}:{port} "
              f"(cache: {cache}, jobs: {args.jobs})", file=sys.stderr)
        try:
            await asyncio.Event().wait()  # until cancelled
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    print(file=sys.stderr)
    print(format_log_stats(server.obs), file=sys.stderr)
    if args.profile is not None:
        trace_path = write_chrome_trace(server.obs, args.profile)
        print(f"trace written to {trace_path} "
              f"(inspect with 'repro stats {trace_path}')",
              file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .serve.top import run_top

    return run_top(args.url, interval_seconds=args.interval,
                   iterations=1 if args.once else None)


def _cmd_power(args: argparse.Namespace) -> int:
    plat = default_platform()
    rows = [
        (f"{p.vdd:.2f}", f"{p.frequency / 1e9:.4f}",
         f"{plat.ladder.normalized(p):.3f}", f"{p.active_power:.4f}",
         f"{p.idle_power:.4f}", f"{p.energy_per_cycle * 1e9:.5f}")
        for p in plat.ladder
    ]
    print(render_table(
        ["Vdd [V]", "f [GHz]", "f/fmax", "P active [W]", "P idle [W]",
         "E/cycle [nJ]"],
        rows, title="70 nm DVS ladder (0.05 V steps)"))
    crit = plat.ladder.critical_point()
    print(f"\ncritical point: Vdd = {crit.vdd:g} V, "
          f"{plat.ladder.normalized(crit):.2f} x fmax")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Leakage-aware multiprocessor scheduling "
                    "(de Langen & Juurlink reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_opts(p):
        p.add_argument("graph", help="an STG task-graph file")
        p.add_argument("--scale", type=float, default=3.1e6,
                       help="cycles per STG weight unit "
                            "(default: coarse grain, 3.1e6)")

    p = sub.add_parser("info", help="show task-graph statistics")
    add_graph_opts(p)
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("schedule", help="schedule one graph")
    add_graph_opts(p)
    p.add_argument("--deadline-factor", type=float, default=2.0)
    p.add_argument("--heuristic", default="LAMPS+PS",
                   choices=[h.value for h in Heuristic])
    p.add_argument("--policy", default="edf")
    p.add_argument("--gantt", action="store_true",
                   help="print an ASCII Gantt chart")
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("sweep", help="all heuristics x deadlines")
    add_graph_opts(p)
    p.add_argument("--deadline-factors", type=float, nargs="+",
                   default=[1.5, 2.0, 4.0, 8.0])
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("generate", help="emit STG-like random graphs")
    p.add_argument("--nodes", type=int, default=100)
    p.add_argument("--count", type=int, default=10)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--out-dir", default=".")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("power", help="print the DVS operating points")
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser(
        "serve",
        help="run the async schedule service (HTTP/JSON over the "
             "result cache; see tools/load_test.py for a client)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--cache-dir", metavar="PATH", default=None,
                   help="result-cache root; warm requests are answered "
                        "from it without any computation (default: "
                        "no cache)")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   metavar="N",
                   help="bound the cache: LRU-evict entries and sweep "
                        "orphaned temp files past N bytes "
                        "(default: unbounded)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes per batch dispatch "
                        "(default: 1)")
    p.add_argument("--max-batch", type=int, default=32, metavar="N",
                   help="most requests coalesced into one dispatch "
                        "(default: 32)")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   metavar="MS",
                   help="linger before dispatching so concurrent "
                        "requests coalesce (default: 2 ms)")
    p.add_argument("--max-pending", type=int, default=64, metavar="N",
                   help="admission ceiling; excess requests are shed "
                        "with 429 (default: 64)")
    p.add_argument("--obs-max-spans", type=int, default=50_000,
                   metavar="N",
                   help="span-retention bound of the service log; "
                        "older spans fold into streaming aggregates "
                        "(default: 50000; 0 = unbounded, campaign "
                        "semantics)")
    p.add_argument("--metrics-window-seconds", type=float, default=60.0,
                   metavar="S",
                   help="sliding window behind the /metrics and /stats "
                        "rate/quantile gauges (default: 60)")
    p.add_argument("--profile", nargs="?", const="repro-serve-trace.json",
                   default=None, metavar="PATH",
                   help="write a Chrome-trace JSON of the serving "
                        "session on shutdown")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard polling a running serve's /stats")
    p.add_argument("--url", default="http://127.0.0.1:8642",
                   help="server base URL "
                        "(default: http://127.0.0.1:8642)")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between polls (default: 2)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (scripting)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "audit",
        help="sweep the bundled corpus under the invariant checks")
    p.add_argument("graphs", nargs="*",
                   help="bundled graph names (default: all)")
    p.add_argument("--deadline-factors", type=float, nargs="+",
                   default=[1.5, 2.0, 4.0, 8.0])
    p.add_argument("--scale", type=float, default=3.1e6,
                   help="cycles per STG weight unit "
                        "(default: coarse grain, 3.1e6)")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "lint",
        help="static analysis: determinism, unit-safety and "
             "kernel-discipline rules (see 'repro lint --list-rules')",
        add_help=False)
    p.add_argument("lint_args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to the lint CLI")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("bundled", help="list the bundled task graphs")
    p.set_defaults(func=_cmd_bundled)

    p = sub.add_parser("trace",
                       help="render the power-state trace of a plan")
    add_graph_opts(p)
    p.add_argument("--deadline-factor", type=float, default=2.0)
    p.add_argument("--heuristic", default="LAMPS+PS",
                   choices=[h.value for h in Heuristic
                            if h not in (Heuristic.LIMIT_SF,
                                         Heuristic.LIMIT_MF)])
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run the paper suite on one graph under the repro.obs "
             "recorder and write a Chrome-trace/Perfetto JSON")
    add_graph_opts(p)
    p.add_argument("--deadline-factor", type=float, default=2.0)
    p.add_argument("--out", default="repro-trace.json", metavar="PATH",
                   help="trace output path (default: repro-trace.json)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "stats",
        help="print the aggregated self-time table of a recorded trace")
    p.add_argument("trace", help="a trace JSON written by --profile or "
                                 "'repro profile'")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("pareto",
                       help="energy-deadline trade-off exploration")
    add_graph_opts(p)
    p.add_argument("--deadline-factors", type=float, nargs="+",
                   default=[1.0, 1.2, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0])
    p.add_argument("--heuristic", default="LAMPS+PS",
                   choices=[h.value for h in Heuristic])
    p.set_defaults(func=_cmd_pareto)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # argparse.REMAINDER refuses a leading option-like token
    # ('repro lint --list-rules'), so forward lint's argv wholesale.
    if argv and argv[0] == "lint":
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
