"""Communication-aware extension: transfer-annotated graphs, a
locality-aware scheduler, and communication-aware LAMPS.
"""

from .heuristics import comm_lamps
from .model import CommGraph, uniform_ccr
from .scheduler import comm_aware_schedule

__all__ = ["CommGraph", "uniform_ccr", "comm_aware_schedule",
           "comm_lamps"]
