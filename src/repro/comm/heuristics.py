"""Communication-aware LAMPS.

The LAMPS processor-count/frequency trade-off rebuilt on the
communication-aware scheduler: with transfer costs, spreading work has
a *makespan* penalty on top of the leakage penalty, so the optimal
processor count falls as the communication-to-computation ratio rises.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core.energy import schedule_energy_sweep
from ..core.platform import Platform, default_platform
from ..core.results import Heuristic, InfeasibleScheduleError, \
    ScheduleResult
from ..core.stretch import feasible_points, required_frequency
from ..sched.deadlines import task_deadlines
from ..sched.schedule import Schedule
from .model import CommGraph
from .scheduler import comm_aware_schedule

__all__ = ["comm_lamps"]


def comm_lamps(cgraph: CommGraph, deadline: float, *,
               platform: Optional[Platform] = None,
               shutdown: bool = True,
               policy: str = "edf") -> ScheduleResult:
    """LAMPS(+PS) on a communication-annotated graph.

    Mirrors :func:`repro.core.lamps.lamps_search` with the
    communication-aware scheduler substituted; the same binary search /
    linear sweep structure and energy model apply (transfer time shows
    up as idle gaps, consistent with a DMA-driven interconnect that
    does not occupy the processors).
    """
    platform = platform or default_platform()
    graph = cgraph.graph
    d = task_deadlines(graph, deadline)
    deadline_seconds = platform.seconds(deadline)
    sleep = platform.sleep if shutdown else None

    cache: Dict[int, Schedule] = {}

    def sched(n: int) -> Schedule:
        if n not in cache:
            cache[n] = comm_aware_schedule(cgraph, n, d, policy=policy)
        return cache[n]

    def feasible(n: int) -> bool:
        return sched(n).required_reference_frequency(d) <= 1.0 + 1e-9

    if not feasible(graph.n) and not feasible(1):
        # Communication can make the widest spread too slow, while a
        # single processor pays no transfer cost — check both extremes
        # before giving up.
        raise InfeasibleScheduleError(
            f"{graph.name or 'graph'}: infeasible at full speed "
            f"under communication costs")
    # With communication, makespan is not monotone in N (more
    # processors can hurt), so the sweep starts from 1 processor and
    # stops only after a sustained plateau.
    best = None
    prev_makespan = math.inf
    stall = 0
    for n in range(1, graph.n + 1):
        s = sched(n)
        f_req = required_frequency(s, d, platform.fmax)
        if f_req <= platform.fmax * (1.0 + 1e-9):
            points = feasible_points(platform.ladder, f_req)
            if sleep is None:
                points = points[:1]  # plain LAMPS stretches maximally
            sweep = schedule_energy_sweep(s, points, deadline_seconds,
                                          sleep=sleep)
            for e, point in zip(sweep, points):
                if best is None or e.total < best[0].total:
                    best = (e, point, s)
        if s.makespan >= prev_makespan - 1e-9:
            stall += 1
            if stall >= 3:  # non-monotone: require a plateau, not a blip
                break
        else:
            stall = 0
            prev_makespan = s.makespan
    if best is None:
        raise InfeasibleScheduleError(
            f"{graph.name or 'graph'}: no feasible configuration")
    energy, point, schedule = best
    return ScheduleResult(
        heuristic=Heuristic.LAMPS_PS if shutdown else Heuristic.LAMPS,
        graph_name=graph.name,
        energy=energy,
        point=point,
        n_processors=schedule.employed_processors,
        deadline_cycles=float(deadline),
        deadline_seconds=deadline_seconds,
        schedule=schedule,
    )
