"""Communication-annotated task graphs.

The paper's model charges nothing for inter-processor data transfer
(shared-memory, CPU-bound assumption, Section 3.1) and cites
communication-aware scheduling (Varatkar & Marculescu, ICCAD 2003) as
the neighbouring problem.  This subpackage adds the missing piece: a
:class:`CommGraph` wraps a :class:`~repro.graphs.dag.TaskGraph` with
per-edge communication costs (cycles), incurred only when producer and
consumer run on *different* processors.

The interesting consequence for leakage-aware scheduling: communication
penalises spreading work, so rising communication cost pushes the
energy-optimal processor count down even before leakage is considered —
the two effects compound.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

import numpy as np

from ..graphs.dag import TaskGraph

__all__ = ["CommGraph", "uniform_ccr"]


class CommGraph:
    """A task graph plus inter-processor communication costs.

    Args:
        graph: the computation DAG (weights in cycles).
        comm: mapping ``(u, v) -> cycles`` for dependence edges; edges
            not listed cost zero.  Costs apply only across processors.

    Raises:
        KeyError: if a comm entry names a non-edge.
        ValueError: on negative costs.
    """

    def __init__(self, graph: TaskGraph,
                 comm: Mapping[Tuple[Hashable, Hashable], float]) -> None:
        self.graph = graph
        edges = set(graph.edges())
        cost: Dict[Tuple[int, int], float] = {}
        for (u, v), c in comm.items():
            if (u, v) not in edges:
                raise KeyError(f"({u!r}, {v!r}) is not a dependence edge")
            if c < 0:
                raise ValueError(
                    f"communication cost of ({u!r}, {v!r}) is negative")
            cost[(graph.index_of(u), graph.index_of(v))] = float(c)
        self._cost = cost

    def comm_cycles(self, u: Hashable, v: Hashable) -> float:
        """Cross-processor transfer cost of edge ``(u, v)`` (cycles)."""
        return self._cost.get(
            (self.graph.index_of(u), self.graph.index_of(v)), 0.0)

    def comm_by_index(self, ui: int, vi: int) -> float:
        """Index-level cost lookup (scheduler hot path)."""
        return self._cost.get((ui, vi), 0.0)

    @property
    def total_comm(self) -> float:
        """Sum of all edge costs (cycles)."""
        return float(sum(self._cost.values()))

    @property
    def ccr(self) -> float:
        """Communication-to-computation ratio: total comm / total work."""
        return self.total_comm / float(self.graph.weights_array.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CommGraph({self.graph!r}, ccr={self.ccr:.2f})")


def uniform_ccr(graph: TaskGraph, ccr: float, rng_or_seed=0) -> CommGraph:
    """A :class:`CommGraph` with a target communication-to-computation
    ratio.

    Edge costs are drawn proportional to random positive draws and
    rescaled so the total communication equals ``ccr * total work`` —
    the standard way scheduling papers parameterise communication
    intensity.
    """
    if ccr < 0:
        raise ValueError("ccr must be >= 0")
    edges = list(graph.edges())
    if not edges or ccr == 0:
        return CommGraph(graph, {})
    rng = np.random.default_rng(rng_or_seed) \
        if not isinstance(rng_or_seed, np.random.Generator) else rng_or_seed
    raw = rng.uniform(0.5, 1.5, size=len(edges))
    total = ccr * float(graph.weights_array.sum())
    scaled = raw * (total / raw.sum())
    return CommGraph(graph, dict(zip(edges, scaled)))
