"""Communication-aware list scheduling.

Event-driven EDF as in :mod:`repro.sched.list_scheduler`, extended with
cross-processor transfer delays: a task dispatched to processor ``p``
can start only after every predecessor's data has arrived —
immediately for same-processor predecessors, ``comm`` cycles after the
predecessor's finish otherwise.  Each dispatch picks the free processor
with the earliest achievable start (locality-aware placement).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Union

import numpy as np

from ..sched.priorities import PriorityPolicy, priority_keys
from ..sched.schedule import Placement, Schedule
from .model import CommGraph

__all__ = ["comm_aware_schedule"]


def comm_aware_schedule(cgraph: CommGraph, n_processors: int,
                        deadlines: Optional[np.ndarray] = None, *,
                        policy: Union[str, PriorityPolicy] = "edf"
                        ) -> Schedule:
    """Schedule a :class:`CommGraph` on ``n_processors``.

    Returns a plain :class:`~repro.sched.schedule.Schedule`; start
    times already include any communication waits (the transfer itself
    occupies the interconnect, not the processors, so processor energy
    accounting is unchanged — waits appear as idle gaps).
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    graph = cgraph.graph
    n = graph.n
    if deadlines is None:
        deadlines = np.zeros(n)
    keys = priority_keys(graph, deadlines, policy)
    w = graph.weights_array
    preds = graph.pred_indices
    succs = graph.succ_indices
    n_pending = np.array([len(p) for p in preds])

    finish = np.zeros(n)
    proc_of = np.full(n, -1, dtype=int)
    proc_free = [0.0] * n_processors
    starts = np.zeros(n)

    ready: List[tuple] = [(keys[v], v) for v in range(n)
                          if n_pending[v] == 0]
    heapq.heapify(ready)
    # (finish_time, task); processors are looked up via proc_of.
    running: List[tuple] = []
    time = 0.0
    scheduled = 0

    def earliest_start(v: int, p: int) -> float:
        t = max(proc_free[p], time)
        for u in preds[v]:
            arrive = finish[u]
            if proc_of[u] != p:
                arrive += cgraph.comm_by_index(u, v)
            if arrive > t:
                t = arrive
        return t

    while scheduled < n:
        # Dispatch as many ready tasks as have free processors, in
        # priority order, each to its earliest-start processor.
        made_progress = True
        while ready and made_progress:
            made_progress = False
            free = [p for p in range(n_processors)
                    if proc_free[p] <= time + 1e-12]
            if not free:
                break
            _, v = heapq.heappop(ready)
            best_p = min(free, key=lambda p: (earliest_start(v, p), p))
            s = earliest_start(v, best_p)
            starts[v] = s
            finish[v] = s + w[v]
            proc_of[v] = best_p
            proc_free[best_p] = finish[v]
            heapq.heappush(running, (finish[v], v))
            scheduled += 1
            made_progress = True
        if scheduled >= n:
            break
        if not running:
            break
        time, v = heapq.heappop(running)
        for s_ in succs[v]:
            n_pending[s_] -= 1
            if n_pending[s_] == 0:
                heapq.heappush(ready, (keys[s_], s_))
        while running and running[0][0] <= time:
            t2, v2 = heapq.heappop(running)
            for s_ in succs[v2]:
                n_pending[s_] -= 1
                if n_pending[s_] == 0:
                    heapq.heappush(ready, (keys[s_], s_))

    placements = [
        Placement(task=graph.id_of(v), processor=int(proc_of[v]),
                  start=float(starts[v]), finish=float(finish[v]))
        for v in range(n)
    ]
    return Schedule(graph, n_processors, placements)
