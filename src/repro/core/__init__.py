"""Core heuristics: S&S, LAMPS, the +PS variants, the LIMIT bounds, and
the :func:`schedule` facade.
"""

from .api import deadline_from_factor, evaluate_all, schedule
from .batch import ScheduleBatch, SweepRequest, batch_energy_sweep
from .energy import EnergyBreakdown, schedule_energy, schedule_energy_sweep
from .exhaustive import enumerate_schedules, optimal_single_frequency
from .lamps import energy_vs_processors, lamps, lamps_ps, lamps_search
from .limits import limit_mf, limit_sf
from .multifreq import MultiFreqResult, per_processor_stretch
from .pareto import FrontPoint, energy_deadline_front, knee_point
from .plans import PlanCache, PlannedSweep, plan_scope, sweep_energies
from .platform import Platform, default_platform
from .results import Heuristic, InfeasibleScheduleError, ScheduleResult
from .sns import schedule_and_stretch, sns, sns_ps
from .suite import paper_suite, paper_suite_batch

__all__ = [
    "schedule",
    "evaluate_all",
    "deadline_from_factor",
    "Heuristic",
    "ScheduleResult",
    "InfeasibleScheduleError",
    "EnergyBreakdown",
    "schedule_energy",
    "schedule_energy_sweep",
    "ScheduleBatch",
    "SweepRequest",
    "batch_energy_sweep",
    "PlanCache",
    "PlannedSweep",
    "plan_scope",
    "sweep_energies",
    "Platform",
    "default_platform",
    "sns",
    "sns_ps",
    "schedule_and_stretch",
    "lamps",
    "lamps_ps",
    "lamps_search",
    "energy_vs_processors",
    "limit_sf",
    "limit_mf",
    "paper_suite",
    "paper_suite_batch",
    "MultiFreqResult",
    "per_processor_stretch",
    "optimal_single_frequency",
    "enumerate_schedules",
    "FrontPoint",
    "energy_deadline_front",
    "knee_point",
]
