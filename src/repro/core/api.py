"""Public facade over the scheduling heuristics.

:func:`schedule` runs one heuristic; :func:`evaluate_all` runs the full
paper lineup on one instance (the building block of every experiment).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Union

from ..audit.report import AuditLog
from ..graphs.analysis import critical_path_length
from ..graphs.dag import TaskGraph
from ..obs import ObsLog
from .lamps import lamps_search
from .limits import limit_mf, limit_sf
from .plans import PlanCache
from .platform import Platform
from .results import Heuristic, ScheduleResult
from .sns import schedule_and_stretch

__all__ = ["schedule", "evaluate_all", "deadline_from_factor"]


def deadline_from_factor(graph: TaskGraph, factor: float) -> float:
    """Deadline in reference cycles for a deadline-extension ``factor``.

    The paper expresses deadlines as multiples of the critical path
    length at full speed (1.5x, 2x, 4x, 8x).
    """
    if factor < 1.0:
        raise ValueError(f"deadline factor must be >= 1, got {factor}")
    return factor * critical_path_length(graph)


def schedule(
    graph: TaskGraph,
    deadline_cycles: Optional[float] = None,
    *,
    deadline_factor: Optional[float] = None,
    heuristic: Union[Heuristic, str] = Heuristic.LAMPS_PS,
    platform: Optional[Platform] = None,
    policy: str = "edf",
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    strict: bool = False,
    audit: Optional[AuditLog] = None,
    obs: Optional[ObsLog] = None,
    plans: Optional[PlanCache] = None,
) -> ScheduleResult:
    """Schedule ``graph`` for minimum energy under a deadline.

    Exactly one of ``deadline_cycles`` (reference cycles — the task weights'
    unit) or ``deadline_factor`` (multiple of the critical path length)
    must be given.

    Args:
        heuristic: one of the :class:`Heuristic` members or its string
            value (e.g. ``"LAMPS+PS"``).
        platform: DVS ladder + sleep model; defaults to the paper's
            70 nm platform.
        policy: list-scheduling priority (the paper's default is EDF).
        deadline_overrides: tighter per-task deadlines, e.g. from an
            unrolled KPN.
        strict: re-validate every intermediate schedule and the energy
            invariants of the result (see :mod:`repro.audit`); a no-op
            on the returned values.  Violations raise
            :class:`~repro.audit.report.AuditViolationError`.
        audit: an :class:`~repro.audit.report.AuditLog` to record
            counters/violations into (implies the strict checks; its
            own ``strict`` flag decides raise-vs-collect).  Ignored by
            the LIMIT bounds, which build no schedule.
        obs: an :class:`~repro.obs.ObsLog` recording spans/counters of
            the search (see :mod:`repro.obs`); never changes the
            result.  Ignored by the LIMIT bounds.
        plans: a shared per-instance
            :class:`~repro.core.plans.PlanCache` so multiple heuristic
            runs on the same instance build each schedule once
            (ignored under strict/audit — see
            :func:`~repro.core.plans.plan_scope`).

    Returns:
        A :class:`ScheduleResult` with the chosen processor count,
        operating point, energy breakdown, and the schedule itself.

    Example:
        >>> from repro.graphs import mpeg1_gop_graph
        >>> g = mpeg1_gop_graph()
        >>> res = schedule(g, deadline_factor=2.0, heuristic="LAMPS+PS")
        >>> res.n_processors >= 1
        True
    """
    if (deadline_cycles is None) == (deadline_factor is None):
        raise ValueError(
            "give exactly one of 'deadline_cycles' or "
            "'deadline_factor'")
    if deadline_cycles is None:
        deadline_cycles = deadline_from_factor(graph, deadline_factor)
    h = Heuristic(heuristic)
    kwargs = dict(platform=platform, deadline_overrides=deadline_overrides)
    check = dict(strict=strict, audit=audit, obs=obs, plans=plans)

    if h is Heuristic.SNS:
        return schedule_and_stretch(graph, deadline_cycles, shutdown=False,
                                    policy=policy, **kwargs, **check)
    if h is Heuristic.SNS_PS:
        return schedule_and_stretch(graph, deadline_cycles, shutdown=True,
                                    policy=policy, **kwargs, **check)
    if h is Heuristic.LAMPS:
        return lamps_search(graph, deadline_cycles, shutdown=False,
                            policy=policy, **kwargs, **check)
    if h is Heuristic.LAMPS_PS:
        return lamps_search(graph, deadline_cycles, shutdown=True,
                            policy=policy, **kwargs, **check)
    if h is Heuristic.LIMIT_SF:
        return limit_sf(graph, deadline_cycles, plans=plans, **kwargs)
    if h is Heuristic.LIMIT_MF:
        return limit_mf(graph, deadline_cycles, plans=plans, **kwargs)
    raise AssertionError(f"unhandled heuristic {h!r}")  # pragma: no cover


def evaluate_all(
    graph: TaskGraph,
    deadline_cycles: Optional[float] = None,
    *,
    deadline_factor: Optional[float] = None,
    platform: Optional[Platform] = None,
    policy: str = "edf",
    heuristics: Optional[tuple] = None,
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    strict: bool = False,
    audit: Optional[AuditLog] = None,
    obs: Optional[ObsLog] = None,
    plans: Optional[PlanCache] = None,
) -> Dict[Heuristic, ScheduleResult]:
    """Run every heuristic (or a chosen subset) on one instance.

    Returns a dict keyed by :class:`Heuristic`, in the paper's
    presentation order.  ``strict``/``audit`` behave as in
    :func:`schedule` and apply to every heuristic run.  The heuristics
    share one per-instance :class:`~repro.core.plans.PlanCache` (pass
    ``plans`` to share it wider), so overlapping schedule
    configurations — e.g. S&S's full-spread build and LAMPS's upper
    probes — are built once; under strict/audit every search falls back
    to its own fresh cache (see :func:`~repro.core.plans.plan_scope`).
    """
    chosen = heuristics or tuple(Heuristic)
    shared = plans if plans is not None else PlanCache()
    return {
        Heuristic(h): schedule(
            graph, deadline_cycles, deadline_factor=deadline_factor,
            heuristic=h, platform=platform, policy=policy,
            deadline_overrides=deadline_overrides,
            strict=strict, audit=audit, obs=obs, plans=shared)
        for h in chosen
    }
