"""Batched multi-instance energy evaluation over padded dense arrays.

PR 4 vectorized *one* schedule's DVS-ladder sweep
(:func:`~repro.core.energy.schedule_energy_sweep`); this module batches
*across* schedules: a :class:`ScheduleBatch` stacks the kernel arrays of
many schedules — typically every schedule a campaign chunk builds — into
padded dense matrices with validity masks over the ragged tails, and
:func:`batch_energy_sweep` evaluates a whole list of ladder sweeps
against them in one broadcast.  The campaign runner
(:func:`repro.exec.runner.evaluate_suite_instances`) plans a chunk of
instances, collects every ladder sweep the searches would perform, and
evaluates them all here instead of one
``schedule_energy_sweep`` call at a time.

Exactness contract (see DESIGN.md, "Why batched padded sweeps are
exact"): for every request, the returned breakdowns are *bitwise* equal
to ``schedule_energy_sweep(schedule, points, deadline_seconds,
sleep=sleep)``, and therefore to the scalar
:func:`~repro.core.energy.schedule_energy` loop.  Three mechanisms make
padding invisible at the bit level:

* every per-gap expression (division to seconds, the shutdown rule) is
  elementwise, so broadcasting it over a flat element array performs
  the identical operation per element;
* per-processor gap sums are computed by *grouping rows by length* and
  reducing each group as a 2-D ``np.sum(axis=1)`` — numpy's pairwise
  summation depends only on a row's length and contents, so each row
  reduces exactly like the scalar path's 1-D sum (padding never enters
  a reduction);
* cross-processor accumulation folds sequentially over employed-
  processor *positions* (a Python loop over the padded axis, vectorized
  over all lanes), reproducing the scalar loop's left-to-right ``+=``
  order; padded positions contribute exactly ``+0.0``, which is a
  bitwise no-op on the non-negative partial sums.

The sleep rule is applied through ``sleep.would_shut_down`` in a single
vectorized call with a per-element idle power, which is elementwise
identical to the scalar path's per-gap-vector calls for
:class:`~repro.power.shutdown.SleepModel` (whose decision rule is
elementwise); a custom model must be elementwise-vectorized in both
arguments to keep the bitwise guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..power.dvs import OperatingPoint
from ..power.shutdown import SleepModel
from ..sched.schedule import Schedule
from .energy import EnergyBreakdown, _horizon_error, _makespan_error

__all__ = ["ScheduleBatch", "SweepRequest", "batch_energy_sweep"]


@dataclass(frozen=True)
class SweepRequest:
    """One deferred ladder sweep against a batch member.

    Attributes:
        schedule_index: which :class:`ScheduleBatch` member to evaluate.
        points: operating points, evaluated in order (may be empty).
        deadline_seconds: the on-window, as in
            :func:`~repro.core.energy.schedule_energy`.
        sleep: PS gap rule; ``None`` keeps idle gaps on.
    """

    schedule_index: int
    points: Tuple[OperatingPoint, ...]
    deadline_seconds: float
    sleep: Optional[SleepModel] = None


class ScheduleBatch:
    """Kernel arrays of many schedules, stacked into padded matrices.

    Rows are batch members (one per schedule); ragged axes — tasks,
    employed processors, idle gaps — are padded to the batch maximum
    with a validity mask (task axis) or per-row counts (processor and
    gap axes).  All arrays are frozen at construction, like the
    single-schedule kernel they are gathered from.

    Build instances through :meth:`from_schedules` only; the stacking
    reads the public kernel surface of each
    :class:`~repro.sched.schedule.Schedule`, so a batch is exactly as
    trustworthy as its members.
    """

    __slots__ = (
        "schedules", "size", "n_tasks", "max_tasks",
        # padded per-task arrays + validity mask over the ragged tail
        "starts", "finishes", "procs", "task_mask",
        # employed-processor axis (compacted to employed ids, padded)
        "employed_counts", "employed_ids", "proc_busy", "proc_last",
        # internal idle gaps: flat elements + per (member, slot) CSR
        "gap_flat", "gap_counts", "gap_starts",
        "makespans",
    )

    def __init__(self) -> None:
        raise TypeError(
            "ScheduleBatch cannot be constructed directly; use "
            "ScheduleBatch.from_schedules(...)")

    @classmethod
    def from_schedules(cls, schedules: Sequence[Schedule]
                       ) -> "ScheduleBatch":
        """Stack the kernel arrays of ``schedules`` into one batch.

        The members keep their order: ``batch.schedules[i]`` is
        ``schedules[i]`` and every padded row ``i`` describes it.

        Raises:
            ValueError: on an empty sequence.
        """
        schedules = tuple(schedules)
        if not schedules:
            raise ValueError("a ScheduleBatch needs at least one schedule")
        b = len(schedules)
        n_tasks = np.array([s.graph.n for s in schedules], dtype=np.intp)
        max_tasks = int(n_tasks.max())
        starts = np.zeros((b, max_tasks))
        finishes = np.zeros((b, max_tasks))
        procs = np.zeros((b, max_tasks), dtype=np.intp)
        task_mask = np.zeros((b, max_tasks), dtype=bool)

        employed_counts = np.array(
            [s.employed_processors for s in schedules], dtype=np.intp)
        e_max = int(employed_counts.max())
        employed_ids = np.full((b, e_max), -1, dtype=np.intp)
        proc_busy = np.zeros((b, e_max))
        proc_last = np.zeros((b, e_max))
        gap_counts = np.zeros((b, e_max), dtype=np.intp)
        gap_starts = np.zeros((b, e_max), dtype=np.intp)

        gap_parts: List[np.ndarray] = []
        offset = 0
        for i, s in enumerate(schedules):
            n = s.graph.n
            starts[i, :n] = s.start_times
            finishes[i, :n] = s.finish_times
            procs[i, :n] = s.task_processors
            task_mask[i, :n] = True
            ids = np.array(s.employed_processor_ids, dtype=np.intp)
            e = ids.size
            employed_ids[i, :e] = ids
            proc_busy[i, :e] = s.proc_busy_cycles[ids]
            proc_last[i, :e] = s.proc_last_finish[ids]
            flat, bounds = s.internal_gap_cycles
            # Unused processors carry no tasks, hence no internal gaps:
            # the schedule's flat gap array is exactly the concatenation
            # over employed processors in id order.
            gap_counts[i, :e] = bounds[ids + 1] - bounds[ids]
            gap_starts[i, :e] = offset + bounds[ids]
            gap_parts.append(flat)
            offset += flat.size

        self = cls.__new__(cls)
        self.schedules = schedules
        self.size = b
        self.n_tasks = n_tasks
        self.max_tasks = max_tasks
        self.starts = starts
        self.finishes = finishes
        self.procs = procs
        self.task_mask = task_mask
        self.employed_counts = employed_counts
        self.employed_ids = employed_ids
        self.proc_busy = proc_busy
        self.proc_last = proc_last
        self.gap_flat = np.concatenate(gap_parts) if gap_parts \
            else np.empty(0)
        self.gap_counts = gap_counts
        self.gap_starts = gap_starts
        self.makespans = np.array([s.makespan for s in schedules])
        for a in (self.n_tasks, self.starts, self.finishes, self.procs,
                  self.task_mask, self.employed_counts, self.employed_ids,
                  self.proc_busy, self.proc_last, self.gap_flat,
                  self.gap_counts, self.gap_starts, self.makespans):
            a.setflags(write=False)
        return self

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScheduleBatch(size={self.size}, "
                f"max_tasks={self.max_tasks}, "
                f"max_employed={self.employed_ids.shape[1]})")


def _exact_row_sums(values: np.ndarray, row_starts: np.ndarray,
                    row_lengths: np.ndarray) -> np.ndarray:
    """Per-row sums of a ragged row-major array, bitwise like 1-D sums.

    Rows are grouped by length and each group reduced with one
    ``np.sum(axis=1)`` over a gathered contiguous matrix, so every row's
    reduction tree is identical to ``np.sum`` of that row alone —
    padding never participates.  Zero-length rows sum to ``0.0``.

    Returns:
        One float per row (J or s — whatever unit ``values`` carries).
    """
    n_rows = row_lengths.size
    out = np.zeros(n_rows)
    if values.size == 0 or n_rows == 0:
        return out
    for length in np.unique(row_lengths):
        n = int(length)
        if n == 0:
            continue
        rows = np.nonzero(row_lengths == length)[0]
        idx = row_starts[rows][:, None] + np.arange(n)[None, :]
        out[rows] = np.sum(values[idx], axis=1)
    return out


def _validate_requests(batch: ScheduleBatch, lane_sched: np.ndarray,
                       freqs: np.ndarray, horizons: np.ndarray) -> None:
    """Raise exactly what the serial sweeps would, at the first offender.

    The serial path evaluates requests in order; within one request,
    :func:`~repro.core.energy.schedule_energy_sweep` checks each point
    in order — first the makespan window, then every employed
    processor's horizon guard.  Lanes are laid out in that exact
    (request, point) order, so the first bad lane is the first serial
    failure.
    """
    makespan_bad = batch.makespans[lane_sched] > horizons * (1.0 + 1e-9)
    t = batch.proc_last[lane_sched]                     # (lanes, e_max)
    tol = 1e-9 * np.maximum(1.0, np.abs(t))
    slot_valid = np.arange(t.shape[1])[None, :] < \
        batch.employed_counts[lane_sched][:, None]
    proc_bad = (horizons[:, None] < (t - tol)) & slot_valid
    bad = makespan_bad | proc_bad.any(axis=1)
    if not bad.any():
        return
    lane = int(np.argmax(bad))
    s = lane_sched[lane]
    if makespan_bad[lane]:
        raise _makespan_error(float(batch.makespans[s]),
                              float(horizons[lane]), float(freqs[lane]))
    k = int(np.argmax(proc_bad[lane]))
    raise _horizon_error(float(horizons[lane]),
                         int(batch.employed_ids[s, k]),
                         float(batch.proc_last[s, k]))


def batch_energy_sweep(
        batch: ScheduleBatch,
        requests: Sequence[SweepRequest],
) -> List[List[EnergyBreakdown]]:
    """Evaluate many ladder sweeps against a batch in one broadcast.

    Returns one list per request, bitwise equal to
    ``schedule_energy_sweep(batch.schedules[r.schedule_index],
    r.points, r.deadline_seconds, sleep=r.sleep)`` — including the
    exception the serial loop would raise, with the same message, for
    the first offending (request, point) in request order.

    Args:
        batch: the stacked schedules.
        requests: sweeps to evaluate; requests may repeat a schedule
            index, mix sleep models, and carry empty point tuples
            (which yield empty result lists, like the serial sweep).

    Raises:
        ValueError: if some request's schedule does not fit in its
            window at some requested point.
        IndexError: on a schedule index outside the batch.
    """
    requests = list(requests)
    out: List[List[EnergyBreakdown]] = [[] for _ in requests]
    for r in requests:
        if not 0 <= r.schedule_index < batch.size:
            raise IndexError(
                f"schedule index {r.schedule_index} outside batch of "
                f"{batch.size}")
    # ---- lane layout: one lane per (request, point), request-major ----
    lane_req_l: List[int] = []
    point_objs: List[OperatingPoint] = []
    for ri, r in enumerate(requests):
        for p in r.points:
            lane_req_l.append(ri)
            point_objs.append(p)
    n_lanes = len(lane_req_l)
    if n_lanes == 0:
        return out
    lane_req = np.array(lane_req_l, dtype=np.intp)
    lane_sched = np.array(
        [requests[ri].schedule_index for ri in lane_req_l], dtype=np.intp)
    freqs = np.array([p.frequency for p in point_objs])
    epc = np.array([p.energy_per_cycle for p in point_objs])
    ip = np.array([p.idle_power for p in point_objs])
    windows = np.array(
        [requests[ri].deadline_seconds for ri in lane_req_l])
    horizons = windows * freqs                     # cycles, one per lane

    _validate_requests(batch, lane_sched, freqs, horizons)

    e_counts = batch.employed_counts[lane_sched]   # employed procs/lane
    e_max = int(e_counts.max())

    # ---- busy: sequential fold over employed positions ---------------
    busy_v = np.zeros(n_lanes)
    busy_rows = batch.proc_busy[lane_sched]        # (lanes, e_max_batch)
    for pos in range(e_max):
        live_sel = np.nonzero(e_counts > pos)[0]
        busy_v[live_sel] = busy_v[live_sel] + \
            busy_rows[live_sel, pos] * epc[live_sel]

    # ---- gap rows: one row per (lane, employed position) -------------
    # Row-major flat element array; each row holds the processor's
    # internal gaps (in order) then the trailing gap when present —
    # exactly the vector the scalar path sums.
    t_rows = batch.proc_last[lane_sched]           # (lanes, e_max_batch)
    tol_rows = 1e-9 * np.maximum(1.0, np.abs(t_rows))
    trail = horizons[:, None] > (t_rows + tol_rows)
    slot_valid = np.arange(t_rows.shape[1])[None, :] < e_counts[:, None]
    trail &= slot_valid

    g_rows = batch.gap_counts[lane_sched]          # internal gaps/row
    row_valid = slot_valid
    row_lane = np.nonzero(row_valid)[0]
    row_pos = np.nonzero(row_valid)[1]
    row_g = g_rows[row_lane, row_pos]
    row_trail = trail[row_lane, row_pos]
    row_len = row_g + row_trail
    n_rows = row_len.size
    row_starts = np.zeros(n_rows, dtype=np.intp)
    if n_rows:
        np.cumsum(row_len[:-1], out=row_starts[1:])
    total = int(row_len.sum())

    elem_row = np.repeat(np.arange(n_rows, dtype=np.intp), row_len)
    within = np.arange(total, dtype=np.intp) - row_starts[elem_row]
    is_internal = within < row_g[elem_row]
    gap_src = batch.gap_starts[lane_sched][row_lane, row_pos]
    src = gap_src[elem_row] + within
    elem_lane = row_lane[elem_row]
    trailing_cycles = horizons[:, None] - t_rows   # (lanes, e_max_batch)
    if batch.gap_flat.size:
        internal_vals = batch.gap_flat[np.where(is_internal, src, 0)]
    else:  # no schedule in the batch has internal gaps
        internal_vals = np.zeros(total)
    cycles = np.where(
        is_internal, internal_vals,
        trailing_cycles[elem_lane, row_pos[elem_row]])
    seconds = cycles / freqs[elem_lane]            # the scalar's ``/ f``

    # ---- per-row sums, split by sleep treatment ----------------------
    lane_sleep = [requests[ri].sleep for ri in lane_req_l]
    idle_v = np.zeros(n_lanes)
    sleep_v = np.zeros(n_lanes)
    over_v = np.zeros(n_lanes)
    shut_v = np.zeros(n_lanes, dtype=np.intp)

    plain_lanes = np.array([s is None for s in lane_sleep])
    if plain_lanes.any():
        sums = _exact_row_sums(seconds, row_starts, row_len)
        _fold_plain(idle_v, sums, row_lane, row_pos, plain_lanes,
                    e_counts, e_max, ip)

    # Sleep lanes: group by model so each model is consulted once, in a
    # single elementwise call covering all of its lanes' gap elements.
    sleep_groups: Dict[int, List[int]] = {}
    models: Dict[int, SleepModel] = {}
    for li, m in enumerate(lane_sleep):
        if m is None:
            continue
        sleep_groups.setdefault(id(m), []).append(li)
        models[id(m)] = m
    for key, lanes_l in sleep_groups.items():
        model = models[key]
        lane_in = np.zeros(n_lanes, dtype=bool)
        lane_in[lanes_l] = True
        elem_sel = np.nonzero(lane_in[elem_lane])[0]
        shut_elem = np.zeros(total, dtype=bool)
        if elem_sel.size:
            decisions = np.asarray(model.would_shut_down(
                seconds[elem_sel], ip[elem_lane[elem_sel]]))
            shut_elem[elem_sel] = decisions
        stay_elem = ~shut_elem & lane_in[elem_lane]

        stay_len = np.bincount(elem_row[stay_elem], minlength=n_rows) \
            .astype(np.intp)
        shut_len = np.bincount(elem_row[shut_elem], minlength=n_rows) \
            .astype(np.intp)
        stay_vals = seconds[stay_elem]
        shut_vals = seconds[shut_elem]
        stay_starts = np.zeros(n_rows, dtype=np.intp)
        shut_starts = np.zeros(n_rows, dtype=np.intp)
        if n_rows:
            np.cumsum(stay_len[:-1], out=stay_starts[1:])
            np.cumsum(shut_len[:-1], out=shut_starts[1:])
        stay_sums = _exact_row_sums(stay_vals, stay_starts, stay_len)
        shut_sums = _exact_row_sums(shut_vals, shut_starts, shut_len)

        sp = model.sleep_power
        oh = model.overhead_energy
        row_of = _row_index_grid(row_lane, row_pos, n_lanes, e_max)
        for pos in range(e_max):
            live_sel = np.nonzero(lane_in & (e_counts > pos))[0]
            if live_sel.size == 0:
                continue
            rows = row_of[live_sel, pos]
            # Empty rows contribute exact +0.0 terms — bitwise no-ops,
            # matching the scalar path's ``continue`` on gap-less procs.
            idle_v[live_sel] = idle_v[live_sel] + stay_sums[rows] * \
                ip[live_sel]
            sleep_v[live_sel] = sleep_v[live_sel] + shut_sums[rows] * sp
            over_v[live_sel] = over_v[live_sel] + shut_len[rows] * oh
            shut_v[live_sel] = shut_v[live_sel] + shut_len[rows]

    # ---- assemble per-request outputs --------------------------------
    for li in range(n_lanes):
        out[int(lane_req[li])].append(EnergyBreakdown(
            busy=float(busy_v[li]), idle=float(idle_v[li]),
            sleep=float(sleep_v[li]), overhead=float(over_v[li]),
            n_shutdowns=int(shut_v[li])))
    return out


def _row_index_grid(row_lane: np.ndarray, row_pos: np.ndarray,
                    n_lanes: int, e_max: int) -> np.ndarray:
    """Map (lane, employed position) to its row id (-1 where absent)."""
    grid = np.full((n_lanes, e_max), -1, dtype=np.intp)
    grid[row_lane, row_pos] = np.arange(row_lane.size, dtype=np.intp)
    return grid


def _fold_plain(idle_v: np.ndarray, sums: np.ndarray,
                row_lane: np.ndarray, row_pos: np.ndarray,
                plain_lanes: np.ndarray, e_counts: np.ndarray,
                e_max: int, ip: np.ndarray) -> None:
    """Accumulate no-sleep idle energy in employed-position order."""
    n_lanes = idle_v.size
    row_of = _row_index_grid(row_lane, row_pos, n_lanes, e_max)
    for pos in range(e_max):
        live_sel = np.nonzero(plain_lanes & (e_counts > pos))[0]
        if live_sel.size == 0:
            continue
        rows = row_of[live_sel, pos]
        idle_v[live_sel] = idle_v[live_sel] + sums[rows] * ip[live_sel]
