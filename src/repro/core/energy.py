"""Energy accounting for schedules.

Given a cycle-level schedule, an operating point, and the deadline
window, compute the total energy under the paper's model (Section 3):

* a task of ``w`` cycles costs ``w * energy_per_cycle(f)``;
* an employed processor is on from t = 0 to the deadline; while idle it
  dissipates ``P_DC + P_on``;
* with processor shutdown (PS), each idle gap longer than the breakeven
  interval is spent in deep sleep instead, paying the 483 µJ overhead
  plus 50 µW for the gap's duration;
* processors that execute no task at all are off and cost nothing.

Two evaluators are provided.  :func:`schedule_energy` is the scalar
reference implementation: one operating point, explicit per-processor
loop.  :func:`schedule_energy_sweep` evaluates a whole DVS ladder in one
pass over the schedule's precomputed gap/busy arrays — the search loops
(LAMPS+PS, S&S+PS) use it, and audits cross-check it against the scalar
form.  The sweep reproduces the scalar results *bitwise*: every
floating-point operation is either the identical elementwise expression
broadcast over points, or a sum over an array with the same length and
contents (numpy's pairwise summation is deterministic for a given
shape), so ``schedule_energy_sweep(s, pts, D) == [schedule_energy(s, p,
D) for p in pts]`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..power.dvs import OperatingPoint
from ..power.shutdown import SleepModel
from ..sched.schedule import Schedule

__all__ = ["EnergyBreakdown", "schedule_energy", "schedule_energy_sweep"]

#: Work size (points x (processors + internal gaps)) below which
#: :func:`schedule_energy_sweep` delegates to the scalar loop: for tiny
#: sweeps the broadcast setup costs more than the per-point evaluation
#: it amortises (the reference sweep_100 benchmark sits at ~0.91x under
#: the broadcast path, ~1.25x via the scalar loop).  Deliberately
#: conservative — large ladders stay on the one-pass path; see
#: tests/core/test_energy_sweep.py for the identity of both sides.
_SCALAR_SWEEP_CUTOVER = 64


def _makespan_error(makespan: float, horizon_cycles: float,
                    frequency_hz: float) -> ValueError:
    """The exact infeasible-window error all evaluators must raise.

    Shared by :func:`schedule_energy`, :func:`schedule_energy_sweep`
    and :func:`repro.core.batch.batch_energy_sweep` so the three paths
    cannot drift apart in message text.
    """
    return ValueError(
        f"schedule makespan {makespan:g} cycles exceeds the "
        f"deadline window {horizon_cycles:g} cycles at "
        f"{frequency_hz/1e9:.3f} GHz")


def _horizon_error(horizon_cycles: float, proc: int,
                   last_finish_cycles: float) -> ValueError:
    """The exact early-horizon error (see :meth:`Schedule.gap_lengths`)."""
    return ValueError(
        f"horizon {horizon_cycles:g} is before processor "
        f"{proc}'s last finish {last_finish_cycles:g}")


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Where a schedule's energy goes (joules).

    Attributes:
        busy: energy of executing cycles.
        idle: energy of idle-but-on intervals.
        sleep: energy drawn in deep-sleep state.
        overhead: shutdown/wake transition energy.
        n_shutdowns: number of shutdown decisions taken.
    """

    busy: float
    idle: float
    sleep: float = 0.0
    overhead: float = 0.0
    n_shutdowns: int = 0

    @property
    def total(self) -> float:
        """Total energy (J)."""
        return self.busy + self.idle + self.sleep + self.overhead

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            busy=self.busy + other.busy,
            idle=self.idle + other.idle,
            sleep=self.sleep + other.sleep,
            overhead=self.overhead + other.overhead,
            n_shutdowns=self.n_shutdowns + other.n_shutdowns,
        )

    def __radd__(self, other: object) -> "EnergyBreakdown":
        # Support ``sum(breakdowns)``, whose implicit start value is the
        # integer 0.
        if other == 0:
            return self
        return NotImplemented


def schedule_energy(schedule: Schedule, point: OperatingPoint,
                    deadline_seconds: float, *,
                    sleep: Optional[SleepModel] = None) -> EnergyBreakdown:
    """Total energy of running ``schedule`` at ``point`` until the deadline.

    This is the scalar reference implementation; the search loops use
    :func:`schedule_energy_sweep`, which must agree with it bitwise.

    Args:
        schedule: cycle-level schedule (weights are cycles).
        point: the common operating point of all active processors.
        deadline_seconds: the on-window; every employed processor is
            powered from 0 to this time.  Must be at or after the
            schedule's makespan at ``point``.
        sleep: when given, apply the PS gap rule (shut down during gaps
            where that saves energy); when ``None``, idle gaps stay on.

    Raises:
        ValueError: if the schedule does not fit in the window at this
            operating point.
    """
    f = point.frequency
    horizon_cycles = deadline_seconds * f
    if schedule.makespan > horizon_cycles * (1.0 + 1e-9):
        raise _makespan_error(schedule.makespan, horizon_cycles, f)

    busy = 0.0
    idle = 0.0
    sleep_e = 0.0
    overhead = 0.0
    n_shutdowns = 0
    for proc in schedule.employed_processor_ids:  # others are fully off
        busy += schedule.busy_cycles(proc) * point.energy_per_cycle
        gaps = schedule.gap_lengths(proc, horizon_cycles) / f  # seconds
        if gaps.size == 0:
            continue
        if sleep is None:
            idle += float(gaps.sum()) * point.idle_power
        else:
            shut = np.asarray(sleep.would_shut_down(gaps, point.idle_power))
            stay = ~shut
            idle += float(gaps[stay].sum()) * point.idle_power
            sleep_e += float(gaps[shut].sum()) * sleep.sleep_power
            k = int(shut.sum())
            overhead += k * sleep.overhead_energy
            n_shutdowns += k
    return EnergyBreakdown(busy=busy, idle=idle, sleep=sleep_e,
                           overhead=overhead, n_shutdowns=n_shutdowns)


def schedule_energy_sweep(
        schedule: Schedule, points: Sequence[OperatingPoint],
        deadline_seconds: float, *,
        sleep: Optional[SleepModel] = None) -> List[EnergyBreakdown]:
    """Energy of ``schedule`` at every operating point, in one pass.

    Evaluates the whole DVS ladder against the schedule's precomputed
    kernel arrays instead of re-deriving the gap structure per point.
    The internal idle gaps of a cycle-level schedule are frequency
    -invariant (see :class:`~repro.sched.schedule.Schedule`): per
    processor, only the trailing gap up to the horizon depends on the
    operating point, so the per-gap arithmetic — division to seconds,
    the PS breakeven rule — broadcasts over a gaps×points matrix.

    Returns ``[schedule_energy(schedule, p, deadline_seconds,
    sleep=sleep) for p in points]``, bitwise, including the exceptions
    the scalar loop would raise (same type, same message, at the same
    first offending point).

    Args:
        schedule: cycle-level schedule (weights are cycles).
        points: operating points to evaluate, e.g. from
            :func:`repro.core.stretch.feasible_points`.
        deadline_seconds: the on-window, as in :func:`schedule_energy`.
        sleep: PS gap rule; ``None`` keeps idle gaps on.

    Raises:
        ValueError: if the schedule does not fit in the window at some
            requested point.
    """
    points = list(points)
    m = len(points)
    if m == 0:
        return []
    employed = schedule.employed_processor_ids
    gap_flat, gap_bounds = schedule.internal_gap_cycles
    if m * (len(employed) + gap_flat.size) <= _SCALAR_SWEEP_CUTOVER:
        # Small sweeps: the broadcast machinery costs more than it
        # saves, and the scalar loop is the bitwise reference this
        # function is specified against — delegation cannot diverge.
        return [schedule_energy(schedule, p, deadline_seconds, sleep=sleep)
                for p in points]
    freqs = np.array([p.frequency for p in points])
    epc = np.array([p.energy_per_cycle for p in points])
    ip = np.array([p.idle_power for p in points])
    horizons = deadline_seconds * freqs  # cycles, one per point

    makespan = schedule.makespan
    # Replicate the scalar loop's exception order exactly: per point (in
    # order), first the makespan check, then gap_lengths' horizon guard
    # per employed processor (in order).
    t_arr = schedule.proc_last_finish[list(employed)] if employed \
        else np.empty(0)
    bad = horizons[:, None] < (t_arr - 1e-9 * np.maximum(1.0, np.abs(t_arr)))
    for j in range(m):
        if makespan > horizons[j] * (1.0 + 1e-9):
            raise _makespan_error(makespan, float(horizons[j]),
                                  float(freqs[j]))
        if bad[j].any():
            k = int(np.argmax(bad[j]))
            raise _horizon_error(float(horizons[j]), employed[k],
                                 float(t_arr[k]))

    busy_v = np.zeros(m)
    idle_v = np.zeros(m)
    sleep_v = np.zeros(m)
    over_v = np.zeros(m)
    shut_v = np.zeros(m, dtype=np.intp)
    for proc in employed:
        # Accumulate per processor in employed order — elementwise over
        # points, each lane performs exactly the scalar loop's ``+=``.
        busy_v += schedule.busy_cycles(proc) * epc
        internal = gap_flat[gap_bounds[proc]:gap_bounds[proc + 1]]
        g = internal.size
        t = float(schedule.proc_last_finish[proc])
        tol = 1e-9 * max(1.0, abs(t))
        trail = horizons > t + tol         # trailing gap present, per point
        rows = internal[None, :] / freqs[:, None]   # (points, gaps) seconds
        tr = (horizons - t) / freqs                 # trailing gap, seconds
        if sleep is None:
            # Per-point gap sums: numpy's pairwise summation depends
            # only on length and contents, and an axis-1 sum reduces
            # each row exactly like a 1-D sum — so group the points by
            # row length (with / without the trailing gap).
            if trail.any():
                with_tr = np.concatenate(
                    [rows[trail], tr[trail, None]], axis=1)
                idle_v[trail] += np.sum(with_tr, axis=1) * ip[trail]
            if g:
                no_tr = ~trail
                if no_tr.any():
                    idle_v[no_tr] += np.sum(rows[no_tr], axis=1) * ip[no_tr]
        else:
            # The PS rule compacts each point's gap vector by its shut
            # mask before summing; compaction changes the summation
            # tree, so reproduce the scalar's per-point arrays exactly.
            sp = sleep.sleep_power
            oh = sleep.overhead_energy
            for j in range(m):
                if trail[j]:
                    gaps = np.append(rows[j], tr[j])
                elif g:
                    gaps = rows[j]
                else:
                    continue  # gaps.size == 0 -> scalar skips the proc
                shut = np.asarray(sleep.would_shut_down(gaps, ip[j]))
                stay = ~shut
                idle_v[j] += float(gaps[stay].sum()) * ip[j]
                sleep_v[j] += float(gaps[shut].sum()) * sp
                k = int(shut.sum())
                over_v[j] += k * oh
                shut_v[j] += k
    return [EnergyBreakdown(busy=float(busy_v[j]), idle=float(idle_v[j]),
                            sleep=float(sleep_v[j]),
                            overhead=float(over_v[j]),
                            n_shutdowns=int(shut_v[j]))
            for j in range(m)]
