"""Energy accounting for schedules.

Given a cycle-level schedule, an operating point, and the deadline
window, compute the total energy under the paper's model (Section 3):

* a task of ``w`` cycles costs ``w * energy_per_cycle(f)``;
* an employed processor is on from t = 0 to the deadline; while idle it
  dissipates ``P_DC + P_on``;
* with processor shutdown (PS), each idle gap longer than the breakeven
  interval is spent in deep sleep instead, paying the 483 µJ overhead
  plus 50 µW for the gap's duration;
* processors that execute no task at all are off and cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..power.dvs import OperatingPoint
from ..power.shutdown import SleepModel
from ..sched.schedule import Schedule

__all__ = ["EnergyBreakdown", "schedule_energy"]


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Where a schedule's energy goes (joules).

    Attributes:
        busy: energy of executing cycles.
        idle: energy of idle-but-on intervals.
        sleep: energy drawn in deep-sleep state.
        overhead: shutdown/wake transition energy.
        n_shutdowns: number of shutdown decisions taken.
    """

    busy: float
    idle: float
    sleep: float = 0.0
    overhead: float = 0.0
    n_shutdowns: int = 0

    @property
    def total(self) -> float:
        """Total energy (J)."""
        return self.busy + self.idle + self.sleep + self.overhead

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            busy=self.busy + other.busy,
            idle=self.idle + other.idle,
            sleep=self.sleep + other.sleep,
            overhead=self.overhead + other.overhead,
            n_shutdowns=self.n_shutdowns + other.n_shutdowns,
        )

    def __radd__(self, other) -> "EnergyBreakdown":
        # Support ``sum(breakdowns)``, whose implicit start value is the
        # integer 0.
        if other == 0:
            return self
        return NotImplemented


def schedule_energy(schedule: Schedule, point: OperatingPoint,
                    deadline_seconds: float, *,
                    sleep: Optional[SleepModel] = None) -> EnergyBreakdown:
    """Total energy of running ``schedule`` at ``point`` until the deadline.

    Args:
        schedule: cycle-level schedule (weights are cycles).
        point: the common operating point of all active processors.
        deadline_seconds: the on-window; every employed processor is
            powered from 0 to this time.  Must be at or after the
            schedule's makespan at ``point``.
        sleep: when given, apply the PS gap rule (shut down during gaps
            where that saves energy); when ``None``, idle gaps stay on.

    Raises:
        ValueError: if the schedule does not fit in the window at this
            operating point.
    """
    f = point.frequency
    horizon_cycles = deadline_seconds * f
    if schedule.makespan > horizon_cycles * (1.0 + 1e-9):
        raise ValueError(
            f"schedule makespan {schedule.makespan:g} cycles exceeds the "
            f"deadline window {horizon_cycles:g} cycles at "
            f"{f/1e9:.3f} GHz")

    busy = 0.0
    idle = 0.0
    sleep_e = 0.0
    overhead = 0.0
    n_shutdowns = 0
    for proc in range(schedule.n_processors):
        if not schedule.processor_tasks(proc):
            continue  # never employed -> fully off
        busy += schedule.busy_cycles(proc) * point.energy_per_cycle
        gaps = schedule.gap_lengths(proc, horizon_cycles) / f  # seconds
        if gaps.size == 0:
            continue
        if sleep is None:
            idle += float(gaps.sum()) * point.idle_power
        else:
            shut = np.asarray(sleep.would_shut_down(gaps, point.idle_power))
            stay = ~shut
            idle += float(gaps[stay].sum()) * point.idle_power
            sleep_e += float(gaps[shut].sum()) * sleep.sleep_power
            k = int(shut.sum())
            overhead += k * sleep.overhead_energy
            n_shutdowns += k
    return EnergyBreakdown(busy=busy, idle=idle, sleep=sleep_e,
                           overhead=overhead, n_shutdowns=n_shutdowns)
