"""Exhaustive minimum-energy scheduling for tiny instances.

Multiprocessor makespan minimisation is NP-hard, but for graphs of a
handful of tasks the whole (assignment x order) space can be searched.
This gives a ground-truth *optimal single-frequency* schedule to
validate the heuristics against: on tiny instances LAMPS+PS should sit
within a few percent of true optimal, and never below it.

The search enumerates list-scheduling orders via branch and bound over
topological prefixes: every non-delay schedule on N processors is
produced by dispatching ready tasks in some order, and for this
execution model (single frequency, idle-until-deadline energy) an
optimal *non-delay* schedule is optimal among all schedules for the
no-PS objective and a lower bound anchor for the +PS one.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.dag import TaskGraph
from ..sched.deadlines import task_deadlines
from ..sched.schedule import Placement, Schedule
from .energy import schedule_energy_sweep
from .platform import Platform, default_platform
from .results import Heuristic, InfeasibleScheduleError, ScheduleResult
from .stretch import feasible_points, required_frequency

__all__ = ["optimal_single_frequency", "enumerate_schedules"]

_MAX_TASKS = 12


def enumerate_schedules(graph: TaskGraph, n_processors: int,
                        *, limit: int = 2_000_000) -> "list[Schedule]":
    """All distinct non-delay schedules on ``n_processors``.

    Distinct means a different (start-time, processor-load) evolution;
    processor identities are canonicalised (lowest-id free processor
    takes the dispatched task) to avoid counting permutations of
    identical processors.

    Raises:
        ValueError: if the graph is too large (> 12 tasks) or the
            enumeration exceeds ``limit`` states.
    """
    if graph.n > _MAX_TASKS:
        raise ValueError(
            f"exhaustive search caps at {_MAX_TASKS} tasks, got {graph.n}")
    w = graph.weights_array
    preds = graph.pred_indices
    succs = graph.succ_indices

    results: List[Schedule] = []
    seen_keys: set = set()
    counter = itertools.count()

    # State: (placements dict, per-proc free time, pending counts,
    # running heap of (finish, task, proc), ready set, time).
    def rec(placed: Dict[int, Tuple[int, float]], free: Tuple[float, ...],
            pending: Tuple[int, ...], ready: frozenset, time: float,
            running: Tuple[Tuple[float, int, int], ...]) -> None:
        if len(results) + 1 > limit or next(counter) > limit:
            raise ValueError("enumeration limit exceeded")
        if len(placed) == graph.n and not running:
            key = tuple(sorted(placed.items()))
            if key not in seen_keys:
                seen_keys.add(key)
                placements = [
                    Placement(task=graph.id_of(v), processor=p,
                              start=s, finish=s + w[v])
                    for v, (p, s) in placed.items()
                ]
                results.append(Schedule(graph, n_processors, placements))
            return
        idle = [p for p in range(n_processors)
                if free[p] <= time + 1e-12]
        dispatchable = sorted(ready)
        if idle and dispatchable:
            p = min(idle)  # canonical processor choice
            for v in dispatchable:
                new_placed = dict(placed)
                new_placed[v] = (p, time)
                new_free = list(free)
                new_free[p] = time + w[v]
                new_running = tuple(sorted(
                    running + ((time + w[v], v, p),)))
                rec(new_placed, tuple(new_free), pending,
                    ready - {v}, time, new_running)
            # Also consider *not* dispatching anything now (delay), but
            # only when something is running — pure idling before any
            # work cannot help with a single frequency.
            if running:
                _advance(placed, free, pending, ready, running, rec, succs)
            return
        if running:
            _advance(placed, free, pending, ready, running, rec, succs)

    def _advance(placed: Dict[int, Tuple[int, float]],
                 free: Tuple[float, ...], pending: Tuple[int, ...],
                 ready: frozenset, running: Tuple[Tuple[float, int, int],
                                                  ...],
                 rec: Callable[..., None],
                 succs: Sequence) -> None:
        finish, v, p = running[0]
        rest = running[1:]
        new_pending = list(pending)
        new_ready = set(ready)
        for s in succs[v]:
            new_pending[s] -= 1
            if new_pending[s] == 0:
                new_ready.add(s)
        rec(placed, free, tuple(new_pending), frozenset(new_ready),
            finish, rest)

    pending0 = tuple(len(p) for p in preds)
    ready0 = frozenset(v for v in range(graph.n) if pending0[v] == 0)
    rec({}, tuple(0.0 for _ in range(n_processors)), pending0, ready0,
        0.0, ())
    return results


def optimal_single_frequency(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform] = None,
    shutdown: bool = True,
    max_processors: Optional[int] = None,
) -> ScheduleResult:
    """Optimal single-frequency schedule by exhaustive enumeration.

    Searches every processor count, every non-delay schedule, and every
    feasible operating point, with the paper's energy model (optionally
    with PS).  Only for tiny graphs (<= 12 tasks).

    Returns a :class:`ScheduleResult` tagged with the heuristic whose
    search space it bounds (LAMPS+PS when ``shutdown`` else LAMPS).
    """
    platform = platform or default_platform()
    d = task_deadlines(graph, deadline_cycles)
    deadline_seconds = platform.seconds(deadline_cycles)
    sleep = platform.sleep if shutdown else None
    n_max = min(graph.n, max_processors or graph.n)

    best: Optional[Tuple] = None
    for n in range(1, n_max + 1):
        for sched in enumerate_schedules(graph, n):
            f_req = required_frequency(sched, d, platform.fmax)
            if f_req > platform.fmax * (1.0 + 1e-9):
                continue
            points = feasible_points(platform.ladder, f_req)
            sweep = schedule_energy_sweep(sched, points,
                                          deadline_seconds, sleep=sleep)
            for energy, point in zip(sweep, points):
                if best is None or energy.total < best[0].total:
                    best = (energy, point, sched)
    if best is None:
        raise InfeasibleScheduleError(
            f"{graph.name or 'graph'}: no feasible schedule up to "
            f"{n_max} processors")
    energy, point, sched = best
    return ScheduleResult(
        heuristic=Heuristic.LAMPS_PS if shutdown else Heuristic.LAMPS,
        graph_name=graph.name,
        energy=energy,
        point=point,
        n_processors=sched.employed_processors,
        deadline_cycles=float(deadline_cycles),
        deadline_seconds=deadline_seconds,
        schedule=sched,
    )
