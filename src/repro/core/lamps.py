"""LAMPS and LAMPS+PS — the paper's core contribution (Sections 4.2, 4.3).

LAMPS trades voltage scaling against the number of employed processors:

Phase 1
    Binary-search the minimal processor count ``N_min`` that meets the
    deadline at full speed, between the work bound
    ``N_lwb = ceil(total work / D)`` and ``N_upb = |V|``.

Phase 2
    For ``N = N_min, N_min+1, ...`` — *linear* search, because energy vs
    processor count has local minima (Fig. 6) — list-schedule on ``N``
    processors, stretch the frequency to finish exactly on time, and
    record the energy; stop once adding a processor no longer shortens
    the makespan.  Return the configuration with the least energy.

LAMPS+PS evaluates, for every processor count, the whole feasible
frequency range with the shutdown gap rule (Fig. 8's pseudocode) instead
of only the maximally stretched point.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Mapping, Optional, Tuple, Union

from ..audit.invariants import audit_energy, audit_result
from ..audit.report import AuditLog
from ..graphs.dag import TaskGraph
from ..obs import NullObs, ObsLog, live
from ..power.dvs import OperatingPoint
from ..power.shutdown import SleepModel
from ..sched.list_scheduler import list_schedule
from ..sched.priorities import PriorityPolicy
from ..sched.schedule import Schedule
from .energy import EnergyBreakdown, schedule_energy_sweep
from .plans import PlanCache, PlannedSweep, plan_scope, sweep_energies
from .platform import Platform, default_platform
from .results import Heuristic, InfeasibleScheduleError, ScheduleResult
from .stretch import feasible_points, stretch_point

__all__ = ["lamps", "lamps_ps", "lamps_search", "energy_vs_processors"]


def lamps_search(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform] = None,
    shutdown: bool = False,
    policy: Union[str, PriorityPolicy] = "edf",
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    phase2: str = "linear",
    strict: bool = False,
    audit: Optional[AuditLog] = None,
    obs: Optional[ObsLog] = None,
    plans: Optional[PlanCache] = None,
) -> ScheduleResult:
    """Run LAMPS (``shutdown=False``) or LAMPS+PS (``shutdown=True``).

    Args:
        graph, deadline_cycles, platform, policy, deadline_overrides:
            as in
            :func:`repro.core.sns.schedule_and_stretch`.
        shutdown: enable the PS extension.
        phase2: ``"linear"`` (the paper's choice — robust to local
            minima) or ``"binary"``-style early stopping at the first
            energy increase (the ablation showing why linear is needed).
        strict: validate every intermediate schedule and the energy
            invariants of the final result (no-op on the returned
            values; violations raise
            :class:`~repro.audit.report.AuditViolationError`).
        audit: an :class:`~repro.audit.report.AuditLog` to record
            counters and violations into (implies the strict checks;
            its own ``strict`` flag decides raise-vs-collect).
        obs: an :class:`~repro.obs.ObsLog` recording phase spans,
            binary-search iterations, anomaly retries and operating
            points evaluated (no effect on the result).
        plans: a shared per-instance :class:`~repro.core.plans.PlanCache`
            (e.g. from :func:`~repro.core.api.evaluate_all`); ignored
            under strict/audit, which replay the historical per-call
            cache exactly (see :func:`~repro.core.plans.plan_scope`).

    Phase 2 is organised as a plan/finish split: the processor-count
    walk plans every candidate's ladder points (control flow is energy
    -independent — the plateau break reads only makespans), one
    :func:`~repro.core.plans.sweep_energies` broadcast evaluates every
    candidate's full ladder in a single batched kernel call, and the
    finish replays the historical selection (first-minimum ties, the
    greedy ablation's energy-increase break, the +PS full-spread
    displacement) over the precomputed energies — bitwise-identical to
    the historical interleaved loop.

    Raises:
        InfeasibleScheduleError: the deadline cannot be met at full
            speed on any processor count up to ``|V|``.
    """
    if phase2 not in ("linear", "greedy"):
        raise ValueError(f"phase2 must be 'linear' or 'greedy', got {phase2!r}")
    platform = platform or default_platform()
    log = audit if audit is not None else (AuditLog() if strict else None)
    plans = plan_scope(plans, log)
    d = plans.deadline_vector(graph, deadline_cycles,
                              overrides=deadline_overrides)
    deadline_seconds = platform.seconds(deadline_cycles)
    sleep = platform.sleep if shutdown else None
    o = live(obs)

    def sched(n: int) -> Schedule:
        # ``build=list_schedule`` resolves this module's global at call
        # time, so the anomaly tests' monkeypatched builders are used
        # (and automatically disable the cache's width aliasing).
        return plans.schedule(graph, n, d, policy=policy, obs=obs,
                              log=log, build=list_schedule)

    def feasible(n: int) -> bool:
        return plans.ratio(sched(n), d) <= 1.0 + 1e-9

    # ---- Phase 1: minimal processor count (binary search) ---------------
    with o.span("lamps.phase1", category="core",
                graph=graph.name, shutdown=shutdown):
        n_lwb = max(1, math.ceil(float(graph.weights_array.sum()) / deadline_cycles))
        n_upb = graph.n
        if not feasible(n_upb):
            raise InfeasibleScheduleError(
                f"{graph.name or 'graph'}: deadline {deadline_cycles:g} cycles "
                f"unreachable even with {n_upb} processors at full speed")
        lo, hi = n_lwb, n_upb
        while lo < hi:
            mid = (lo + hi) // 2
            o.count("lamps.binary_search_iterations")
            if feasible(mid):
                hi = mid
            else:
                lo = mid + 1
        n_min = lo
        # The binary search assumes feasibility is monotone in the
        # processor count; scheduling anomalies (more processors ->
        # longer makespan) can break that, so verify and advance
        # linearly until feasible — Phase 2 must never start from an
        # infeasible count (n_upb is feasible, so this terminates).
        while n_min < n_upb and not feasible(n_min):
            n_min += 1
            o.count("lamps.anomaly_retries")
            if log is not None:
                log.anomaly_retries += 1

    # ---- Phase 2: sweep processor counts ---------------------------------
    with o.span("lamps.phase2", category="core",
                graph=graph.name, n_min=n_min, shutdown=shutdown):
        # Plan: walk the counts, collecting each feasible candidate's
        # ladder points.  The walk is energy-independent — the plateau
        # break reads only makespans — so every candidate's sweep can
        # be deferred to one batched broadcast below.
        cands: List[Tuple[int, Schedule]] = []
        sweeps: List[PlannedSweep] = []
        prev_makespan = math.inf
        for n in range(n_min, n_upb + 1):
            s = sched(n)
            f_req = plans.ratio(s, d) * platform.fmax
            if f_req > platform.fmax * (1.0 + 1e-9):
                # Scheduling anomaly made this count infeasible: skip it
                # but keep sweeping — a later count can recover.
                o.count("lamps.anomaly_retries")
                if log is not None:
                    log.anomaly_retries += 1
            else:
                points = _candidate_points(s, f_req, platform,
                                           deadline_seconds, sleep, log, o)
                cands.append((n, s))
                sweeps.append(PlannedSweep(s, tuple(points), sleep))
                if s.makespan >= prev_makespan - 1e-9:
                    break  # more processors no longer shorten the schedule
            # Track *every* makespan, not only the feasible ones —
            # comparing a later feasible count against a makespan from
            # before an anomalous stretch used to truncate the sweep
            # one point early.
            prev_makespan = s.makespan
        spread: Optional[int] = None
        if shutdown:
            # Fig. 8 sweeps up to the number of processors that can be
            # employed efficiently; the fully spread schedule (the S&S
            # one) can win under PS because longer per-processor gaps
            # sleep better, so include it as a candidate — unless an
            # anomaly made it infeasible (it usually is feasible: the
            # upfront check ran on this very schedule).
            s = sched(graph.n)
            f_req = plans.ratio(s, d) * platform.fmax
            if f_req <= platform.fmax * (1.0 + 1e-9):
                points = _candidate_points(s, f_req, platform,
                                           deadline_seconds, sleep, log, o)
                spread = len(sweeps)
                cands.append((graph.n, s))
                sweeps.append(PlannedSweep(s, tuple(points), sleep))
            else:
                o.count("lamps.anomaly_retries")
                if log is not None:
                    log.anomaly_retries += 1

        # One broadcast evaluates every candidate's full ladder; the
        # batch kernel is bitwise-identical to per-candidate
        # schedule_energy_sweep calls, including exception order.
        energies = sweep_energies(sweeps, deadline_seconds)

        # Finish: replay the historical selection over the precomputed
        # energies — first-minimum ties, the greedy ablation's break on
        # an energy increase, and the +PS full-spread candidate that
        # only displaces a strictly worse winner (even after a greedy
        # break, exactly as the historical post-loop evaluation did).
        best: Optional[tuple] = None  # (energy, n, point, schedule)
        for i, (n, s) in enumerate(cands):
            if i == spread:
                continue
            energy, point = _select_best(energies[i],
                                         list(sweeps[i].points))
            if best is None or energy.total < best[0].total:
                best = (energy, n, point, s)
            elif phase2 == "greedy" and energy.total > best[0].total:
                break
        if spread is not None:
            energy, point = _select_best(energies[spread],
                                         list(sweeps[spread].points))
            if best is None or energy.total < best[0].total:
                best = (energy, graph.n, point, cands[spread][1])
        assert best is not None  # n_min is always feasible
        energy, _, point, schedule = best

    result = ScheduleResult(
        heuristic=Heuristic.LAMPS_PS if shutdown else Heuristic.LAMPS,
        graph_name=graph.name,
        energy=energy,
        point=point,
        n_processors=schedule.employed_processors,
        deadline_cycles=float(deadline_cycles),
        deadline_seconds=deadline_seconds,
        schedule=schedule,
    )
    if log is not None:
        audit_result(result, d, platform, log, sleep=sleep)
    return result


def _candidate_points(
        schedule: Schedule, f_req: float,
        platform: Platform, deadline_seconds: float,
        sleep: Optional[SleepModel],
        log: Optional[AuditLog] = None,
        o: Optional[Union[ObsLog, NullObs]] = None,
) -> "list[OperatingPoint]":
    """The ladder points a search evaluates for a fixed schedule.

    Without PS: the single maximally stretched point (the paper
    stretches to finish "as close as possible to the deadline").  With
    PS: the whole feasible range (Fig. 8's inner loop).  Feasibility
    checks, obs counters and audit counters all happen here — energy
    does not enter the control flow, which is what lets the batched
    campaign path (:func:`repro.core.suite.paper_suite_batch`) plan
    every sweep up front and evaluate them together.

    Raises:
        InfeasibleScheduleError: no ladder point meets ``f_req`` (e.g.
            float round-off pushed it marginally above ``fmax``).
    """
    o = o if o is not None else live(None)
    if sleep is None:
        try:
            point = stretch_point(platform.ladder, f_req)
        except ValueError as exc:
            raise InfeasibleScheduleError(
                f"{schedule.graph.name or 'graph'}: needs "
                f"{f_req / 1e9:.6g} GHz, ladder tops out at "
                f"{platform.fmax / 1e9:.6g} GHz "
                f"(deadline window {deadline_seconds:.6g} s)") from exc
        o.count("core.operating_points_evaluated")
        if log is not None:
            log.operating_points_evaluated += 1
        return [point]
    points = feasible_points(platform.ladder, f_req)
    if not points:
        raise InfeasibleScheduleError(
            f"{schedule.graph.name or 'graph'}: no feasible operating "
            f"point — needs {f_req / 1e9:.6g} GHz, ladder tops out at "
            f"{platform.fmax / 1e9:.6g} GHz "
            f"(deadline window {deadline_seconds:.6g} s)")
    o.count("core.operating_points_evaluated", len(points))
    if log is not None:
        log.operating_points_evaluated += len(points)
    return list(points)


def _select_best(
        breakdowns: "list[EnergyBreakdown]",
        points: "list[OperatingPoint]",
) -> Tuple[EnergyBreakdown, OperatingPoint]:
    """The least-energy (energy, point) pair; ties keep the first.

    The tie-break is load-bearing for byte identity: ``min`` keeps the
    earliest minimal candidate, exactly like the historical per-point
    loop, so the serial and batched paths pick the same point.
    """
    return min(zip(breakdowns, points), key=lambda c: c[0].total)


def _best_operating_point(
        schedule: Schedule, f_req: float,
        platform: Platform, deadline_seconds: float,
        sleep: Optional[SleepModel],
        log: Optional[AuditLog] = None,
        o: Optional[Union[ObsLog, NullObs]] = None,
) -> Tuple[EnergyBreakdown, OperatingPoint]:
    """Best (energy, point) for a fixed schedule.

    ``_candidate_points`` decides *what* to evaluate (and counts it),
    one :func:`~repro.core.energy.schedule_energy_sweep` evaluates the
    ladder bitwise-identically to a per-point scalar loop, and
    ``_select_best`` picks the winner.  ``o`` is an already-normalised
    obs recorder (``ObsLog`` or ``NULL_OBS``).

    Raises:
        InfeasibleScheduleError: no ladder point meets ``f_req``.
    """
    points = _candidate_points(schedule, f_req, platform,
                               deadline_seconds, sleep, log, o)
    breakdowns = schedule_energy_sweep(schedule, points, deadline_seconds,
                                       sleep=sleep)
    return _select_best(breakdowns, points)


def lamps(graph: TaskGraph, deadline_cycles: float, **kwargs) -> ScheduleResult:
    """LAMPS — see :func:`lamps_search`."""
    return lamps_search(graph, deadline_cycles, shutdown=False, **kwargs)


def lamps_ps(graph: TaskGraph, deadline_cycles: float, **kwargs) -> ScheduleResult:
    """LAMPS+PS — see :func:`lamps_search`."""
    return lamps_search(graph, deadline_cycles, shutdown=True, **kwargs)


def energy_vs_processors(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform] = None,
    shutdown: bool = False,
    policy: Union[str, PriorityPolicy] = "edf",
    max_processors: Optional[int] = None,
    strict: bool = False,
    audit: Optional[AuditLog] = None,
    obs: Optional[ObsLog] = None,
    plans: Optional[PlanCache] = None,
) -> "list[tuple[int, Optional[EnergyBreakdown]]]":
    """Energy as a function of the processor count (the data of Fig. 6).

    Returns one ``(n, energy_or_None)`` pair per processor count from 1
    to ``max_processors`` (default: the count where the makespan stops
    improving); ``None`` marks infeasible counts.

    Like :func:`lamps_search` phase 2, the sweep is a plan/finish
    split: every count's schedule and ladder points are planned first
    (the truncation rule reads only makespans), one batched broadcast
    evaluates all the ladders, and the rows — and the strict-mode
    per-count energy audits, in the same ascending order — are
    assembled from the precomputed results.
    """
    platform = platform or default_platform()
    log = audit if audit is not None else (AuditLog() if strict else None)
    plans = plan_scope(plans, log)
    d = plans.deadline_vector(graph, deadline_cycles)
    deadline_seconds = platform.seconds(deadline_cycles)
    sleep = platform.sleep if shutdown else None
    o = live(obs)
    planned: "list[tuple[int, Schedule, Optional[int]]]" = []
    sweeps: List[PlannedSweep] = []
    prev_makespan = math.inf
    n_cap = max_processors or graph.n
    for n in range(1, n_cap + 1):
        s = plans.schedule(graph, n, d, policy=policy, obs=obs, log=log,
                           build=list_schedule)
        f_req = plans.ratio(s, d) * platform.fmax
        if f_req > platform.fmax * (1.0 + 1e-9):
            planned.append((n, s, None))
            o.count("lamps.anomaly_retries")
            if log is not None:
                log.anomaly_retries += 1
        else:
            points = _candidate_points(s, f_req, platform,
                                       deadline_seconds, sleep, log, o)
            planned.append((n, s, len(sweeps)))
            sweeps.append(PlannedSweep(s, tuple(points), sleep))
            if max_processors is None and \
                    s.makespan >= prev_makespan - 1e-9:
                break  # a feasible count stopped improving the makespan
        # Track *every* makespan, not only the feasible ones — comparing
        # a later feasible count against a makespan from before an
        # infeasible stretch used to truncate the Fig. 6 sweep one
        # point early (and an anomalously *long* infeasible count must
        # not end the sweep either).
        prev_makespan = s.makespan

    energies = sweep_energies(sweeps, deadline_seconds)
    out: list[tuple[int, Optional[EnergyBreakdown]]] = []
    for n, s, sweep_i in planned:
        if sweep_i is None:
            out.append((n, None))
            continue
        energy, point = _select_best(energies[sweep_i],
                                     list(sweeps[sweep_i].points))
        out.append((n, energy))
        if log is not None:
            audit_energy(s, energy, point, deadline_seconds, sleep,
                         log, f"{graph.name or 'graph'}[n={n}]")
    return out
