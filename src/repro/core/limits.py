"""The theoretical lower bounds LIMIT-SF and LIMIT-MF (Section 4.4).

Both bounds assume idle processors consume *no* energy and use one
processor per task, so only active cycles count and no real schedule —
whatever the scheduling algorithm — can beat them:

* **LIMIT-SF** keeps the paper's single-common-frequency restriction.
  The frequency is scaled to the energy-optimal (critical) point when
  the deadline allows, otherwise only as far as the deadline permits.
  Feasibility on infinitely many processors is governed by the critical
  path: every task can finish at its top level.
* **LIMIT-MF** runs every task at the critical frequency regardless of
  the deadline — an absolute bound even for per-processor,
  time-varying frequencies.  It may miss the deadline; the result's
  ``meets_deadline`` flag records whether it happened to satisfy it.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

import numpy as np

from ..graphs.analysis import top_levels, total_work
from ..graphs.dag import TaskGraph
from ..sched.deadlines import task_deadlines
from .energy import EnergyBreakdown
from .plans import PlanCache
from .platform import Platform, default_platform
from .results import Heuristic, InfeasibleScheduleError, ScheduleResult

__all__ = ["limit_sf", "limit_mf"]


def _ideal_required_frequency(graph: TaskGraph, deadline_cycles: float,
                              platform: Platform,
                              overrides: Optional[Mapping[Hashable, float]],
                              plans: Optional[PlanCache] = None,
                              ) -> float:
    """Minimum frequency for the ideal (one-task-per-processor) schedule.

    With unlimited processors each task finishes at its top level, so the
    requirement is ``fmax * max(top_level / deadline)`` over tasks.
    Feasibility is judged by the caller (LIMIT-MF deliberately ignores
    it), so the ALAP propagation runs without the feasibility check.
    ``plans`` shares the deadline vector and top levels with the
    heuristics evaluated on the same instance.
    """
    if plans is not None:
        d = plans.deadline_vector(graph, deadline_cycles,
                                  overrides=overrides,
                                  check_feasible=False)
        tl = plans.top_levels(graph)
    else:
        d = task_deadlines(graph, deadline_cycles, overrides=overrides,
                           check_feasible=False)
        tl = top_levels(graph)
    with np.errstate(divide="ignore"):
        ratio = float(np.max(tl / d))
    return ratio * platform.fmax


def limit_sf(graph: TaskGraph, deadline_cycles: float, *,
             platform: Optional[Platform] = None,
             deadline_overrides: Optional[Mapping[Hashable, float]] = None,
             plans: Optional[PlanCache] = None,
             ) -> ScheduleResult:
    """Single-frequency lower bound (LIMIT-SF).

    Raises:
        InfeasibleScheduleError: deadline below the critical path length.
    """
    platform = platform or default_platform()
    f_req = _ideal_required_frequency(graph, deadline_cycles, platform,
                                      deadline_overrides, plans)
    if f_req > platform.fmax * (1.0 + 1e-9):
        raise InfeasibleScheduleError(
            f"{graph.name or 'graph'}: ideal schedule needs "
            f"{f_req/1e9:.3f} GHz > fmax")
    point = platform.ladder.best_point(f_req * (1.0 - 1e-9))
    energy = EnergyBreakdown(
        busy=total_work(graph) * point.energy_per_cycle, idle=0.0)
    return ScheduleResult(
        heuristic=Heuristic.LIMIT_SF,
        graph_name=graph.name,
        energy=energy,
        point=point,
        n_processors=None,
        deadline_cycles=float(deadline_cycles),
        deadline_seconds=platform.seconds(deadline_cycles),
    )


def limit_mf(graph: TaskGraph, deadline_cycles: float, *,
             platform: Optional[Platform] = None,
             deadline_overrides: Optional[Mapping[Hashable, float]] = None,
             plans: Optional[PlanCache] = None,
             ) -> ScheduleResult:
    """Multi-frequency absolute lower bound (LIMIT-MF).

    Always uses the critical operating point; ``meets_deadline`` is
    False when doing so would overrun the deadline (the bound still
    holds — see Section 4.4).
    """
    platform = platform or default_platform()
    point = platform.ladder.critical_point()
    f_req = _ideal_required_frequency(graph, deadline_cycles, platform,
                                      deadline_overrides, plans)
    energy = EnergyBreakdown(
        busy=total_work(graph) * point.energy_per_cycle, idle=0.0)
    return ScheduleResult(
        heuristic=Heuristic.LIMIT_MF,
        graph_name=graph.name,
        energy=energy,
        point=point,
        n_processors=None,
        deadline_cycles=float(deadline_cycles),
        deadline_seconds=platform.seconds(deadline_cycles),
        meets_deadline=bool(point.frequency >= f_req * (1.0 - 1e-9)),
    )
