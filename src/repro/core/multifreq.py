"""Per-processor frequency assignment — the paper's future-work question.

Section 6 conjectures that letting each processor run at its own (still
constant) frequency "will probably not reach" the LIMIT-MF bound and
that "the actual benefit from having multiple frequencies will probably
be much less".  This module makes that conjecture testable:

:func:`per_processor_stretch` starts from a single-frequency schedule
(e.g. LAMPS+PS's) and greedily lowers individual processors' operating
points while the deadline still holds, re-timing the schedule after
every move (slowing one processor delays successors on *other*
processors, so a naive per-processor slack computation would be wrong).

The result quantifies how much of the LIMIT-MF headroom a realistic
multi-frequency schedule can actually collect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from ..graphs.dag import TaskGraph
from ..power.dvs import OperatingPoint
from ..sched.deadlines import task_deadlines
from ..sched.schedule import Schedule
from .energy import EnergyBreakdown
from .lamps import lamps_search
from .platform import Platform, default_platform

__all__ = ["MultiFreqResult", "retime", "multifreq_energy",
           "per_processor_stretch"]


@dataclass(frozen=True)
class MultiFreqResult:
    """Outcome of the per-processor frequency assignment.

    Attributes:
        schedule: the underlying cycle-level schedule (assignment and
            per-processor order; timing comes from :func:`retime`).
        points: operating point per processor id (only employed
            processors appear).
        energy: total energy under the assignment.
        finish_seconds: retimed per-task finish times (dense node index).
        deadline_seconds: the scheduling window.
    """

    schedule: Schedule
    points: Mapping[int, OperatingPoint]
    energy: EnergyBreakdown
    finish_seconds: np.ndarray
    deadline_seconds: float

    @property
    def total_energy(self) -> float:
        """Total energy of the assignment (J)."""
        return self.energy.total

    @property
    def distinct_frequencies(self) -> int:
        """How many different frequencies the assignment uses."""
        return len({p.frequency for p in self.points.values()})


def retime(schedule: Schedule,
           points: Mapping[int, OperatingPoint]) -> np.ndarray:
    """Task finish times in *seconds* under per-processor frequencies.

    Keeps the schedule's processor assignment and per-processor task
    order; start times follow from both the processor availability and
    the DAG predecessors (which may live on differently clocked
    processors).

    Returns:
        Array of finish times (s) indexed by dense node index.
    """
    graph = schedule.graph
    start = np.zeros(graph.n)
    finish = np.zeros(graph.n)
    proc_free: Dict[int, float] = {}
    # Positions within each processor's sequence must be respected; a
    # global order that interleaves processors correctly is obtained by
    # sorting on the original cycle start times (ties: topo order).
    topo_rank = {v: i for i, v in enumerate(schedule.graph.topo_indices)}
    order = sorted(
        (pl for p in range(schedule.n_processors)
         for pl in schedule.processor_tasks(p)),
        key=lambda pl: (pl.start,
                        topo_rank[graph.index_of(pl.task)]))
    preds = graph.pred_indices
    w = graph.weights_array
    for pl in order:
        v = graph.index_of(pl.task)
        f = points[pl.processor].frequency
        ready = max((finish[u] for u in preds[v]), default=0.0)
        s = max(ready, proc_free.get(pl.processor, 0.0))
        start[v] = s
        finish[v] = s + w[v] / f
        proc_free[pl.processor] = finish[v]
    return finish


def multifreq_energy(schedule: Schedule,
                     points: Mapping[int, OperatingPoint],
                     finish_seconds: np.ndarray,
                     deadline_seconds: float, *,
                     platform: Platform,
                     use_sleep: bool = True) -> EnergyBreakdown:
    """Energy of a retimed multi-frequency schedule.

    Each employed processor is on from 0 to the deadline at its own
    operating point; the PS gap rule applies per gap when
    ``use_sleep`` is set.
    """
    graph = schedule.graph
    sleep = platform.sleep if use_sleep else None
    total = EnergyBreakdown(busy=0.0, idle=0.0)
    w = graph.weights_array
    for proc in range(schedule.n_processors):
        tasks = schedule.processor_tasks(proc)
        if not tasks:
            continue
        point = points[proc]
        busy_cycles = sum(w[graph.index_of(pl.task)] for pl in tasks)
        busy = busy_cycles * point.energy_per_cycle
        # Gap structure in seconds from the retimed finish times.
        idle = sleep_e = overhead = 0.0
        n_shut = 0
        t = 0.0
        gaps: List[float] = []
        for pl in tasks:
            v = graph.index_of(pl.task)
            s = finish_seconds[v] - w[v] / point.frequency
            if s > t + 1e-15:
                gaps.append(s - t)
            t = finish_seconds[v]
        if t > deadline_seconds * (1.0 + 1e-9):
            raise ValueError(
                f"processor {proc} finishes at {t:g} s, past the "
                f"deadline {deadline_seconds:g} s")
        if deadline_seconds > t:
            gaps.append(deadline_seconds - t)
        for gap in gaps:
            if sleep is not None and sleep.would_shut_down(
                    gap, point.idle_power):
                sleep_e += gap * sleep.sleep_power
                overhead += sleep.overhead_energy
                n_shut += 1
            else:
                idle += gap * point.idle_power
        total = total + EnergyBreakdown(
            busy=busy, idle=idle, sleep=sleep_e, overhead=overhead,
            n_shutdowns=n_shut)
    return total


def per_processor_stretch(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform] = None,
    use_sleep: bool = True,
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    base_schedule: Optional[Tuple[Schedule, OperatingPoint]] = None,
    islands: Optional[Mapping[int, int]] = None,
    max_rounds: int = 64,
) -> MultiFreqResult:
    """Greedy per-processor frequency lowering from a LAMPS+PS base.

    Args:
        graph: task graph (weights in reference cycles).
        deadline_cycles: graph deadline in reference cycles.
        platform: ladder + sleep model.
        use_sleep: apply the PS gap rule in the energy objective.
        deadline_overrides: per-task deadlines (KPN outputs).
        base_schedule: optionally a (schedule, common point) pair to
            start from; defaults to the LAMPS+PS solution.
        islands: optional voltage/frequency-island grouping, processor
            id -> island id (clustered DVS, as on Cell- or
            big.LITTLE-style parts where cores share supply rails).
            Processors in one island always run at the same point; the
            greedy move lowers a whole island.  ``None`` means fully
            independent processors; mapping every processor to one
            island recovers the paper's single-frequency model.
        max_rounds: hill-climbing round cap (each round tries one
            downward step on every island).

    Returns:
        A :class:`MultiFreqResult`; its energy is never worse than the
        base single-frequency solution.
    """
    platform = platform or default_platform()
    d_ref = task_deadlines(graph, deadline_cycles, overrides=deadline_overrides)
    deadline_seconds = platform.seconds(deadline_cycles)
    d_seconds = d_ref / platform.fmax

    if base_schedule is None:
        base = lamps_search(graph, deadline_cycles, platform=platform,
                            shutdown=use_sleep,
                            deadline_overrides=deadline_overrides)
        schedule, base_point = base.schedule, base.point
    else:
        schedule, base_point = base_schedule

    ladder = platform.ladder
    employed = [p for p in range(schedule.n_processors)
                if schedule.processor_tasks(p)]
    points: Dict[int, OperatingPoint] = {p: base_point for p in employed}
    if islands is None:
        island_of = {p: p for p in employed}
    else:
        island_of = {p: islands[p] for p in employed}
    members: Dict[int, list] = {}
    for p, isl in island_of.items():
        members.setdefault(isl, []).append(p)

    def feasible(fin: np.ndarray) -> bool:
        return bool(np.all(fin <= d_seconds * (1.0 + 1e-9)))

    finish = retime(schedule, points)
    if not feasible(finish):
        raise ValueError("base schedule misses its deadlines")
    best_energy = multifreq_energy(schedule, points, finish,
                                   deadline_seconds, platform=platform,
                                   use_sleep=use_sleep)

    ladder_list = list(ladder)
    index_of_point = {p.frequency: i for i, p in enumerate(ladder_list)}
    for _ in range(max_rounds):
        improved = False
        for isl, procs in members.items():
            idx = index_of_point[points[procs[0]].frequency]
            if idx == 0:
                continue
            candidate = dict(points)
            for p in procs:
                candidate[p] = ladder_list[idx - 1]
            fin = retime(schedule, candidate)
            if not feasible(fin):
                continue
            energy = multifreq_energy(schedule, candidate, fin,
                                      deadline_seconds,
                                      platform=platform,
                                      use_sleep=use_sleep)
            if energy.total < best_energy.total - 1e-15:
                points = candidate
                best_energy = energy
                finish = fin
                improved = True
        if not improved:
            break

    return MultiFreqResult(
        schedule=schedule, points=points, energy=best_energy,
        finish_seconds=finish, deadline_seconds=deadline_seconds)
