"""Energy–deadline design-space exploration.

A system integrator's question the paper's machinery answers but never
packages: *how does the minimum energy trade against the deadline?*
:func:`energy_deadline_front` sweeps deadline factors and returns the
Pareto-optimal (deadline, energy) points together with the chosen
configuration at each, and :func:`knee_point` locates the sweet spot
where loosening the deadline stops paying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..graphs.analysis import critical_path_length
from ..graphs.dag import TaskGraph
from .platform import Platform, default_platform
from .results import Heuristic, ScheduleResult
from .api import schedule

__all__ = ["FrontPoint", "energy_deadline_front", "knee_point"]


@dataclass(frozen=True)
class FrontPoint:
    """One point of the energy–deadline trade-off curve.

    Attributes:
        deadline_factor: deadline as a multiple of the CPL.
        deadline_seconds: the same in wall-clock time.
        energy: minimum energy found at this deadline (J).
        n_processors: processors the winning configuration employs.
        frequency: its common operating frequency (Hz).
        result: the full :class:`ScheduleResult`.
    """

    deadline_factor: float
    deadline_seconds: float
    energy: float
    n_processors: int
    frequency: float
    result: ScheduleResult


def energy_deadline_front(
    graph: TaskGraph,
    *,
    factors: Sequence[float] = (1.0, 1.2, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0),
    heuristic: Union[Heuristic, str] = Heuristic.LAMPS_PS,
    platform: Optional[Platform] = None,
    prune_dominated: bool = True,
) -> List[FrontPoint]:
    """The energy-vs-deadline curve of ``graph``.

    Args:
        factors: deadline factors to sweep (ascending recommended).
        heuristic: which optimiser defines "minimum energy".
        prune_dominated: drop points that a *shorter* deadline already
            beats on energy (the curve is not guaranteed monotone —
            leakage makes very loose deadlines backfire for the non-PS
            heuristics).

    Returns:
        Front points in ascending deadline order.
    """
    platform = platform or default_platform()
    cpl = critical_path_length(graph)
    points: List[FrontPoint] = []
    for factor in sorted(factors):
        r = schedule(graph, factor * cpl, heuristic=heuristic,
                     platform=platform)
        points.append(FrontPoint(
            deadline_factor=float(factor),
            deadline_seconds=r.deadline_seconds,
            energy=r.total_energy,
            n_processors=r.n_processors or 0,
            frequency=r.point.frequency if r.point else float("nan"),
            result=r))
    if prune_dominated:
        pruned: List[FrontPoint] = []
        best = np.inf
        for p in points:
            if p.energy < best - 1e-15:
                pruned.append(p)
                best = p.energy
        points = pruned
    return points


def knee_point(front: Sequence[FrontPoint], *,
               threshold: float = 0.05) -> FrontPoint:
    """The smallest-deadline point whose remaining headroom is small.

    "Small" means: loosening the deadline all the way to the front's
    end would recover less than ``threshold`` of this point's energy.

    Raises:
        ValueError: on an empty front.
    """
    if not front:
        raise ValueError("empty front")
    floor = min(p.energy for p in front)
    for p in front:
        if p.energy - floor <= threshold * p.energy:
            return p
    return front[-1]
