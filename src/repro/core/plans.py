"""Per-instance plan memoization + batched candidate evaluation.

PR 4 vectorized one schedule's ladder sweep and the batch layer
vectorized evaluation *across* instances; what remains *within* one
instance is redundant plan construction: LAMPS phase 1 (binary search
over the processor count), phase 2 (linear sweep), Fig. 6's
``energy_vs_processors`` and the six-heuristic suite all call
``list_schedule`` on overlapping ``(graph, n, policy)`` configurations
and re-derive the same deadline vectors, top levels and required-
frequency ratios.  A :class:`PlanCache` memoizes all of these for the
lifetime of one instance, and :func:`sweep_energies` evaluates every
planned ladder sweep of a search in a single
:func:`~repro.core.batch.batch_energy_sweep` broadcast.

Why plan reuse is exact (DESIGN.md §12 carries the full argument):

* A list schedule is a pure function of ``(graph, n, priority-key
  array)`` — the event loop of
  :func:`~repro.sched.list_scheduler.list_schedule` reads nothing else.
  Keys come from :func:`~repro.sched.priorities.priority_keys`, so the
  cache key is the *key-array fingerprint* (``keys.tobytes()``): EDF
  keys are the deadline vector itself (any deadline or override change
  changes the fingerprint and misses), while structural policies
  (HLFET, FIFO, LPT, SPT) are deadline-independent and legitimately
  share one entry across deadlines.
* **Width aliasing**: the scheduler's free processors form a min-heap,
  so a ready task only ever waits when *all* ``n`` processors are busy
  — which forces ``employed == n``.  Contrapositive: a schedule built
  on ``n`` processors that employs ``e < n`` never stalled, and the
  event loop replays identically for *every* ``n' >= e`` (the dispatch
  decisions only read the busy set, which stays inside ``{0..e-1}``).
  One stall-free schedule therefore serves every processor count at or
  above the graph's width — most of LAMPS phase 1's binary-search
  probes, and the full-spread S&S build.  Aliasing applies **only**
  when the builder *is* the canonical ``list_schedule``: the identity
  argument is a theorem about that scheduler, not about arbitrary
  substitutes (the anomaly tests monkeypatch module-level
  ``list_schedule`` names with synthetic schedules; those get exact
  per-count caching only).
* Deadline vectors, top levels and required-frequency ratios are pure
  functions of their (pinned, frozen) inputs — memoization returns the
  identical float/array contents.

Strict/audit runs use a fresh per-call cache with aliasing off
(:func:`plan_scope`), so ``AuditLog`` counters, intermediate-schedule
checks and their labels replay the historical per-call sequence
verbatim; shared caches accelerate unaudited runs only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, \
    Sequence, Tuple, Union

import numpy as np

from ..audit.invariants import audit_intermediate_schedule
from ..audit.report import AuditLog
from ..graphs.analysis import top_levels as _graph_top_levels
from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from ..power.dvs import OperatingPoint
from ..power.shutdown import SleepModel
from ..sched.deadlines import task_deadlines
from ..sched.list_scheduler import list_schedule
from ..sched.priorities import PriorityPolicy, priority_keys
from ..sched.schedule import Schedule
from .batch import ScheduleBatch, SweepRequest, batch_energy_sweep
from .energy import EnergyBreakdown

__all__ = ["PlanCache", "PlannedSweep", "plan_scope", "sweep_energies"]

#: Signature of a schedule builder (``list_schedule`` or a test double).
ScheduleBuilder = Callable[..., Schedule]


@dataclass
class PlannedSweep:
    """One deferred ladder sweep a search plan wants evaluated.

    ``schedule_energy_sweep(schedule, points, deadline_seconds,
    sleep=sleep)`` — or the batched equivalent via
    :func:`sweep_energies` — produces the breakdown list the search's
    finish step consumes.
    """

    schedule: Schedule
    points: Tuple[OperatingPoint, ...]
    sleep: Optional[SleepModel]


def sweep_energies(sweeps: Sequence[PlannedSweep],
                   deadline_seconds: float) -> List[List[EnergyBreakdown]]:
    """Evaluate planned ladder sweeps in one batched broadcast.

    Stacks the distinct schedules of ``sweeps`` into one
    :class:`~repro.core.batch.ScheduleBatch` and evaluates every sweep
    through a single :func:`~repro.core.batch.batch_energy_sweep` call.
    Bitwise-identical to ``[schedule_energy_sweep(s.schedule,
    list(s.points), deadline_seconds, sleep=s.sleep) for s in sweeps]``
    — including exceptions, which the batch kernel raises for the first
    offending request in request order, i.e. exactly where the serial
    loop would have raised first.
    """
    sweeps = list(sweeps)
    if not sweeps:
        return []
    schedules: List[Schedule] = []
    index: Dict[int, int] = {}
    requests: List[SweepRequest] = []
    for ps in sweeps:
        key = id(ps.schedule)
        if key not in index:
            index[key] = len(schedules)
            schedules.append(ps.schedule)
        requests.append(SweepRequest(
            schedule_index=index[key], points=tuple(ps.points),
            deadline_seconds=deadline_seconds, sleep=ps.sleep))
    return batch_energy_sweep(ScheduleBatch.from_schedules(schedules),
                              requests)


class PlanCache:
    """Memoizes the energy-independent plan work of one instance.

    Caches, per graph identity: ALAP deadline vectors
    (:meth:`deadline_vector`), top levels (:meth:`top_levels`),
    priority-key fingerprints, required-frequency ratios
    (:meth:`ratio`) and — the dominant cost — list schedules
    (:meth:`schedule`), keyed by ``(graph identity, priority-key
    fingerprint, processor count)`` with the width-aliasing fast path
    described in the module docstring.

    The intended lifetime is one instance (one ``(graph, deadline)``
    pair), shared across every search that instance runs; entries pin
    strong references to their graphs and arrays, so a longer-lived
    cache holds its inputs alive.

    Attributes:
        alias: whether width aliasing may serve a stall-free schedule
            for a larger requested count.  ``False`` replays the
            historical one-build-per-distinct-count behaviour exactly
            (used under strict/audit via :func:`plan_scope`).
        hits, misses: schedule-cache counters; also surfaced through
            ``obs`` as ``plan_cache.hits`` / ``plan_cache.misses``.
    """

    __slots__ = ("alias", "hits", "misses", "_graphs", "_deadline_vecs",
                 "_tops", "_key_fps", "_exact", "_stall_free", "_ratios")

    def __init__(self, *, alias: bool = True) -> None:
        self.alias = alias
        self.hits = 0
        self.misses = 0
        self._graphs: Dict[int, TaskGraph] = {}
        self._deadline_vecs: Dict[Tuple[int, float],
                                  Tuple[np.ndarray, bool]] = {}
        self._tops: Dict[int, np.ndarray] = {}
        self._key_fps: Dict[tuple, bytes] = {}
        self._exact: Dict[tuple, Schedule] = {}
        self._stall_free: Dict[tuple, Schedule] = {}
        self._ratios: Dict[Tuple[int, int], tuple] = {}

    def _gid(self, graph: TaskGraph) -> int:
        gid = id(graph)
        # Pin the graph so its id cannot be recycled while cached.
        self._graphs.setdefault(gid, graph)
        return gid

    # ------------------------------------------------------------------
    # Pure-function memos
    # ------------------------------------------------------------------
    def deadline_vector(self, graph: TaskGraph, deadline_cycles: float, *,
                        overrides: Optional[Mapping[Hashable, float]] = None,
                        check_feasible: bool = True) -> np.ndarray:
        """Memoized :func:`~repro.sched.deadlines.task_deadlines`.

        Override mappings are mutable caller state and are passed
        through uncached.  A vector first computed with
        ``check_feasible=False`` is recomputed (identical contents)
        when a checking caller asks for it, so the feasibility error
        still raises exactly where it historically did.
        """
        if overrides:
            return task_deadlines(graph, deadline_cycles,
                                  overrides=overrides,
                                  check_feasible=check_feasible)
        key = (self._gid(graph), float(deadline_cycles))
        hit = self._deadline_vecs.get(key)
        if hit is not None and (hit[1] or not check_feasible):
            return hit[0]
        d = task_deadlines(graph, deadline_cycles,
                           check_feasible=check_feasible)
        d.setflags(write=False)
        self._deadline_vecs[key] = (d, check_feasible)
        return d

    def top_levels(self, graph: TaskGraph) -> np.ndarray:
        """Memoized :func:`~repro.graphs.analysis.top_levels`."""
        gid = self._gid(graph)
        tl = self._tops.get(gid)
        if tl is None:
            tl = _graph_top_levels(graph)
            tl.setflags(write=False)
            self._tops[gid] = tl
        return tl

    def ratio(self, schedule: Schedule, deadlines: np.ndarray) -> float:
        """Memoized ``schedule.required_reference_frequency(deadlines)``.

        Keyed by object identity of both arguments (which the cache
        pins); a pure function of frozen inputs, so the cached float is
        the identical value.
        """
        key = (id(schedule), id(deadlines))
        ent = self._ratios.get(key)
        if ent is None:
            ent = (schedule, deadlines,
                   schedule.required_reference_frequency(deadlines))
            self._ratios[key] = ent
        return float(ent[2])

    # ------------------------------------------------------------------
    # Schedule memo (the dominant cost)
    # ------------------------------------------------------------------
    def _key_fingerprint(self, graph: TaskGraph, deadlines: np.ndarray,
                         policy: Union[str, PriorityPolicy]) -> bytes:
        gid = self._gid(graph)
        d = np.asarray(deadlines, dtype=float)
        key = (gid, policy, d.tobytes())
        fp = self._key_fps.get(key)
        if fp is None:
            fp = priority_keys(graph, d, policy).tobytes()
            self._key_fps[key] = fp
        return fp

    def schedule(self, graph: TaskGraph, n: int,
                 deadlines: Optional[np.ndarray], *,
                 policy: Union[str, PriorityPolicy] = "edf",
                 obs: Optional[ObsLog] = None,
                 log: Optional[AuditLog] = None,
                 label: Optional[str] = None,
                 build: Optional[ScheduleBuilder] = None) -> Schedule:
        """Memoized ``list_schedule(graph, n, deadlines, policy=...)``.

        On a miss the schedule is built through ``build`` (the caller's
        module-level ``list_schedule`` reference, so monkeypatched
        builders are honoured), the audit counters/checks run exactly
        as an uncached build would, and the result is stored under its
        priority-key fingerprint.  On a hit nothing is built, audited
        or counted — matching the historical local-dict caches, which
        only counted fresh builds.

        Width aliasing (see the module docstring) serves a stall-free
        cached schedule for any requested count at or above its
        employed width, and only when ``build`` is the canonical
        scheduler.
        """
        if build is None:
            build = list_schedule
        gid = self._gid(graph)
        canonical = build is list_schedule
        fp: object
        if canonical:
            # list_schedule substitutes zeros for a missing deadline
            # vector; fingerprint the same substitution.
            fp = self._key_fingerprint(
                graph,
                deadlines if deadlines is not None else np.zeros(graph.n),
                policy)
        else:
            fp = (policy,
                  None if deadlines is None
                  else np.asarray(deadlines, dtype=float).tobytes())
        key = (gid, fp, n)
        s = self._exact.get(key)
        if s is None and canonical and self.alias:
            free = self._stall_free.get((gid, fp))
            if free is not None and n >= free.employed_processors:
                s = free
                self._exact[key] = s
        o = live(obs)
        if s is not None:
            self.hits += 1
            o.count("plan_cache.hits")
            return s
        s = build(graph, n, deadlines, policy=policy, obs=obs)
        self.misses += 1
        o.count("plan_cache.misses")
        if log is not None:
            log.schedules_built += 1
            audit_intermediate_schedule(
                s, log, label or f"{graph.name or 'graph'}[n={n}]")
        self._exact[key] = s
        if canonical and s.employed_processors < n and \
                (gid, fp) not in self._stall_free:
            self._stall_free[(gid, fp)] = s
        return s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PlanCache(alias={self.alias}, hits={self.hits}, "
                f"misses={self.misses}, schedules={len(self._exact)})")


def plan_scope(plans: Optional[PlanCache],
               log: Optional[AuditLog]) -> PlanCache:
    """The cache a search call should actually use.

    Strict/audit runs (``log`` present) get a fresh per-call cache with
    aliasing off, replaying the historical local-dict behaviour byte
    for byte — audit counters, intermediate-schedule checks and labels
    fire once per distinct requested processor count, exactly as
    before.  Unaudited runs share ``plans`` when given, else get a
    fresh aliasing cache.
    """
    if plans is None or log is not None:
        return PlanCache(alias=log is None)
    return plans
