"""The execution platform: DVS ladder + sleep model bundled together.

Every heuristic takes a :class:`Platform`; the default reproduces the
paper's 70 nm processor with 0.05 V steps and Jejurikar et al.'s sleep
parameters.  Construct variants for ablations (finer voltage steps,
different shutdown overheads, leakier technologies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..power.dvs import DVSLadder
from ..power.model import PowerModel
from ..power.shutdown import SleepModel
from ..power.technology import Technology

__all__ = ["Platform", "default_platform"]


@dataclass(frozen=True)
class Platform:
    """A multiprocessor platform for the energy-aware schedulers.

    Attributes:
        ladder: the discrete DVS operating points (shared by all
            processors; the paper's model runs every active processor at
            one common frequency).
        sleep: deep-sleep parameters for the +PS heuristics.
    """

    ladder: DVSLadder = field(default_factory=DVSLadder)
    sleep: SleepModel = field(default_factory=SleepModel)

    @property
    def fmax(self) -> float:
        """Reference (maximum) frequency in Hz."""
        return self.ladder.fmax

    @property
    def model(self) -> PowerModel:
        """The underlying analytic power model."""
        return self.ladder.model

    @property
    def technology(self) -> Technology:
        """The technology constants behind the ladder."""
        return self.ladder.tech

    def seconds(self, reference_cycles: float) -> float:
        """Convert cycles-at-f_max into wall-clock seconds."""
        return reference_cycles / self.fmax

    def reference_cycles(self, seconds: float) -> float:
        """Convert wall-clock seconds into cycles-at-f_max."""
        return seconds * self.fmax


_DEFAULT: Platform | None = None


def default_platform() -> Platform:
    """The paper's platform (cached; ladders are immutable)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Platform()
    return _DEFAULT
