"""Result types shared by all scheduling heuristics."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..power.dvs import OperatingPoint
from ..sched.schedule import Schedule
from .energy import EnergyBreakdown

__all__ = ["Heuristic", "ScheduleResult", "InfeasibleScheduleError"]


class Heuristic(str, enum.Enum):
    """The scheduling approaches of the paper (Section 4)."""

    SNS = "S&S"                #: schedule & stretch (baseline)
    LAMPS = "LAMPS"            #: leakage-aware processor-count search
    SNS_PS = "S&S+PS"          #: S&S with processor shutdown
    LAMPS_PS = "LAMPS+PS"      #: LAMPS with processor shutdown
    LIMIT_SF = "LIMIT-SF"      #: single-frequency lower bound
    LIMIT_MF = "LIMIT-MF"      #: multi-frequency absolute lower bound

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class InfeasibleScheduleError(ValueError):
    """No operating point lets the schedule meet its deadlines."""


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one heuristic on one (graph, deadline) instance.

    Attributes:
        heuristic: which approach produced the result.
        graph_name: label of the scheduled graph.
        energy: full energy breakdown; ``energy.total`` is the paper's
            reported quantity.
        point: the chosen common operating point (``None`` for LIMIT-MF
            reports below the ladder, never in practice).
        n_processors: processors *employed* (executing at least one
            task); ``None`` for the LIMIT bounds, which are
            processor-count-agnostic (idle processors are free there).
        deadline_cycles: graph deadline in cycles at f_max.
        deadline_seconds: the same deadline in wall-clock seconds.
        schedule: the concrete schedule (``None`` for the LIMIT bounds).
        meets_deadline: whether the result honours the deadline
            (LIMIT-MF may not, by design — see Section 4.4).
    """

    heuristic: Heuristic
    graph_name: str
    energy: EnergyBreakdown
    point: Optional[OperatingPoint]
    n_processors: Optional[int]
    deadline_cycles: float
    deadline_seconds: float
    schedule: Optional[Schedule] = None
    meets_deadline: bool = True

    @property
    def total_energy(self) -> float:
        """Total energy in joules."""
        return self.energy.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        f = f"{self.point.frequency/1e9:.2f} GHz" if self.point else "n/a"
        return (f"ScheduleResult({self.heuristic.value}, "
                f"{self.graph_name!r}, E={self.total_energy:.4g} J, "
                f"N={self.n_processors}, f={f})")
