"""Schedule & Stretch (S&S) and S&S+PS.

S&S (Section 4.1) is the DVS-only baseline: list-schedule with EDF on as
many processors as can reduce the makespan, then use all slack before
the deadline to scale the common frequency down as far as feasibility
allows.  It ignores leakage: the extra processors it employs keep
leaking while idle.

S&S+PS (Section 4.3) keeps the same schedule but jointly optimises the
frequency and shutdown decisions: it sweeps the frequency from maximum
down to the minimum feasible level and, at each level, shuts processors
down during every idle gap long enough to amortise the wake-up cost,
keeping the setting with the least total energy.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional, Union

from ..audit.invariants import audit_result
from ..audit.report import AuditLog
from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from ..sched.list_scheduler import list_schedule
from ..sched.priorities import PriorityPolicy
from .energy import schedule_energy_sweep
from .plans import PlanCache, plan_scope
from .platform import Platform, default_platform
from .results import Heuristic, InfeasibleScheduleError, ScheduleResult
from .stretch import feasible_points, stretch_point

__all__ = ["schedule_and_stretch", "sns", "sns_ps"]


def schedule_and_stretch(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform] = None,
    shutdown: bool = False,
    policy: Union[str, PriorityPolicy] = "edf",
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    max_processors: Optional[int] = None,
    strict: bool = False,
    audit: Optional[AuditLog] = None,
    obs: Optional[ObsLog] = None,
    plans: Optional[PlanCache] = None,
) -> ScheduleResult:
    """Run S&S (``shutdown=False``) or S&S+PS (``shutdown=True``).

    Args:
        graph: task graph, weights in cycles at the reference frequency.
        deadline_cycles: graph deadline in the same reference cycles.
        platform: DVS ladder + sleep model; defaults to the paper's.
        shutdown: enable the PS extension.
        policy: list-scheduling priority (the paper uses EDF).
        deadline_overrides: tighter per-task deadlines (KPN outputs).
        max_processors: cap on available processors; defaults to ``|V|``
            (the paper's upper bound — more can never help).
        strict: validate the schedule and the energy invariants of the
            result (no-op on the returned values; violations raise
            :class:`~repro.audit.report.AuditViolationError`).
        audit: an :class:`~repro.audit.report.AuditLog` to record
            counters and violations into (implies the strict checks).
        obs: an :class:`~repro.obs.ObsLog` recording the stretch span,
            the schedule build and the operating points evaluated (no
            effect on the result).
        plans: a shared per-instance
            :class:`~repro.core.plans.PlanCache`; reuses the deadline
            vector and schedule across heuristics on the same instance
            (ignored under strict/audit — see
            :func:`~repro.core.plans.plan_scope`).

    Raises:
        InfeasibleScheduleError: deadline unreachable even at full speed.
    """
    platform = platform or default_platform()
    n_procs = graph.n if max_processors is None else min(max_processors, graph.n)
    if n_procs < 1:
        raise ValueError("need at least one processor")
    log = audit if audit is not None else (AuditLog() if strict else None)
    o = live(obs)

    plans = plan_scope(plans, log)
    d = plans.deadline_vector(graph, deadline_cycles,
                              overrides=deadline_overrides)
    sched = plans.schedule(graph, n_procs, d, policy=policy, obs=obs,
                           log=log, build=list_schedule)
    with o.span("sns.stretch", category="core", graph=graph.name,
                shutdown=shutdown):
        f_req = plans.ratio(sched, d) * platform.fmax
        deadline_seconds = platform.seconds(deadline_cycles)

        if shutdown:
            points = feasible_points(platform.ladder, f_req)
            if not points:
                raise InfeasibleScheduleError(
                    f"{graph.name or 'graph'}: needs {f_req/1e9:.3f} GHz, "
                    f"ladder tops out at {platform.fmax/1e9:.3f} GHz")
            o.count("core.operating_points_evaluated", len(points))
            if log is not None:
                log.operating_points_evaluated += len(points)
            # One-shot ladder sweep (bitwise-identical to a per-point
            # schedule_energy loop over ``points``).
            breakdowns = schedule_energy_sweep(
                sched, points, deadline_seconds, sleep=platform.sleep)
            energy, point = min(zip(breakdowns, points),
                                key=lambda c: c[0].total)
            heuristic = Heuristic.SNS_PS
        else:
            try:
                point = stretch_point(platform.ladder, f_req)
            except ValueError as exc:
                raise InfeasibleScheduleError(str(exc)) from exc
            o.count("core.operating_points_evaluated")
            if log is not None:
                log.operating_points_evaluated += 1
            energy = schedule_energy_sweep(
                sched, [point], deadline_seconds)[0]
            heuristic = Heuristic.SNS

    result = ScheduleResult(
        heuristic=heuristic,
        graph_name=graph.name,
        energy=energy,
        point=point,
        n_processors=sched.employed_processors,
        deadline_cycles=float(deadline_cycles),
        deadline_seconds=deadline_seconds,
        schedule=sched,
    )
    if log is not None:
        audit_result(result, d, platform, log,
                     sleep=platform.sleep if shutdown else None)
    return result


def sns(graph: TaskGraph, deadline_cycles: float, **kwargs) -> ScheduleResult:
    """S&S — see :func:`schedule_and_stretch`."""
    return schedule_and_stretch(graph, deadline_cycles, shutdown=False, **kwargs)


def sns_ps(graph: TaskGraph, deadline_cycles: float, **kwargs) -> ScheduleResult:
    """S&S+PS — see :func:`schedule_and_stretch`."""
    return schedule_and_stretch(graph, deadline_cycles, shutdown=True, **kwargs)
