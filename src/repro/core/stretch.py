r"""Stretching: mapping a cycle-level schedule to feasible operating points.

A schedule computed in cycle units meets per-task deadlines (given in
cycles at the reference frequency ``f_max``) when run at any frequency at
or above

.. math:: f_{req} = f_{max} \\cdot \\max_v \\; finish_v / d_v.

The S&S family picks the *slowest* feasible discrete point (maximum
stretch); the +PS family sweeps all feasible points.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..power.dvs import DVSLadder, OperatingPoint
from ..sched.schedule import Schedule

__all__ = ["required_frequency", "stretch_point", "feasible_points"]

#: Tolerance for floating-point deadline comparisons: a schedule needing
#: f_req within one part in 1e9 of a ladder point is considered feasible.
_REL_TOL = 1e-9


def required_frequency(schedule: Schedule, deadlines: np.ndarray,
                       fmax: float) -> float:
    """Minimum frequency (Hz) at which ``schedule`` meets all deadlines.

    ``deadlines`` is per dense node index, in cycles at ``fmax``.
    """
    ratio = schedule.required_reference_frequency(deadlines)
    return ratio * fmax


def stretch_point(ladder: DVSLadder, f_required: float) -> OperatingPoint:
    """The slowest ladder point meeting ``f_required`` (maximum stretch).

    Raises:
        ValueError: if the requirement exceeds the ladder's maximum, i.e.
            the schedule cannot meet its deadlines at any setting.
    """
    return ladder.slowest_at_least(f_required * (1.0 - _REL_TOL))


def feasible_points(ladder: DVSLadder,
                    f_required: float) -> Tuple[OperatingPoint, ...]:
    """All ladder points meeting ``f_required``, slowest first.

    Empty when even full speed is too slow.
    """
    return ladder.at_or_above(f_required * (1.0 - _REL_TOL))
