"""Fast evaluation of the full paper lineup on one instance.

:func:`paper_suite` produces the same results as calling
:func:`repro.core.api.schedule` six times, but shares the expensive
intermediates: S&S and S&S+PS use one schedule, and LAMPS and LAMPS+PS
share the whole per-processor-count schedule cache.  The experiment
harness calls this in its inner loop (thousands of instances), so the
sharing matters — profiling shows list scheduling dominates the runtime,
exactly as the paper's complexity analysis (``T_LAMPS ~ #schedules *
T_ls``) predicts.

The suite is organised as a *plan/finish* split: ``_plan_suite`` runs
all control flow — schedule construction, feasibility checks, LAMPS
phase 1 and the phase-2 processor-count walk — and emits the ordered
list of ladder sweeps the searches need, without evaluating any energy
(control flow is energy-independent; see DESIGN.md, "Why batched padded
sweeps are exact").  ``_finish_suite`` turns the sweep results back into
the six :class:`~repro.core.results.ScheduleResult` entries with the
historical tie-breaking.  :func:`paper_suite` glues the two with one
:func:`~repro.core.energy.schedule_energy_sweep` per planned sweep;
:func:`paper_suite_batch` evaluates a whole chunk of instances' plans in
a single :func:`~repro.core.batch.batch_energy_sweep` broadcast — both
paths share the plan and finish code, so they cannot drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, \
    Tuple, Union

from ..audit.invariants import audit_result
from ..audit.report import AuditLog
from ..graphs.dag import TaskGraph
from ..obs import NullObs, ObsLog, live
from ..power.dvs import OperatingPoint
from ..power.shutdown import SleepModel
from ..sched.list_scheduler import list_schedule
from ..sched.priorities import PriorityPolicy
from ..sched.schedule import Schedule
from .batch import ScheduleBatch, SweepRequest, batch_energy_sweep
from .energy import EnergyBreakdown, schedule_energy_sweep
from .lamps import _candidate_points, _select_best
from .limits import limit_mf, limit_sf
from .plans import PlanCache, PlannedSweep, plan_scope
from .platform import Platform, default_platform
from .results import Heuristic, InfeasibleScheduleError, ScheduleResult
from .stretch import stretch_point

__all__ = ["paper_suite", "paper_suite_batch"]

# Backwards-compatible alias: the planned-sweep record moved to
# repro.core.plans so the LAMPS searches can share it.
_PlannedSweep = PlannedSweep


def paper_suite(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform] = None,
    policy: Union[str, PriorityPolicy] = "edf",
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    strict: bool = False,
    audit: Optional[AuditLog] = None,
    obs: Optional[ObsLog] = None,
    plans: Optional[PlanCache] = None,
) -> Dict[Heuristic, ScheduleResult]:
    """All six approaches on one (graph, deadline) instance.

    Returns a dict in the paper's presentation order: S&S, LAMPS,
    S&S+PS, LAMPS+PS, LIMIT-SF, LIMIT-MF.

    ``strict``/``audit`` enable the invariant checks of
    :mod:`repro.audit` on every intermediate schedule and every
    schedule-bearing result; ``obs`` records phase spans and search
    counters into an :class:`~repro.obs.ObsLog`.  Neither affects the
    returned results.  ``plans`` shares a per-instance
    :class:`~repro.core.plans.PlanCache` with other searches on the
    same instance (ignored under strict/audit — see
    :func:`~repro.core.plans.plan_scope`).
    """
    o = live(obs)
    with o.span("suite.paper_suite", category="suite",
                graph=graph.name, tasks=graph.n):
        return _paper_suite(graph, deadline_cycles, platform=platform,
                            policy=policy,
                            deadline_overrides=deadline_overrides,
                            strict=strict, audit=audit, obs=obs, o=o,
                            plans=plans)


@dataclass
class _SuitePlan:
    """Everything ``_finish_suite`` needs besides the sweep energies.

    ``sweeps`` is ordered exactly as the historical serial suite
    evaluated them (SNS, SNS+PS, then plain/PS pairs per feasible
    phase-2 processor count), so evaluating them in order — serially or
    batched — reproduces the historical floating-point story verbatim.
    ``phase2`` holds ``(plain index, ps index, schedule)`` triples in
    ascending processor-count order.
    """

    graph: TaskGraph
    deadline_cycles: float
    deadline_seconds: float
    deadlines: object  # per-task deadline array (np.ndarray)
    platform: Platform
    deadline_overrides: Optional[Mapping[Hashable, float]]
    log: Optional[AuditLog]
    s_full: Schedule
    plans: Optional[PlanCache] = None
    sweeps: List[PlannedSweep] = field(default_factory=list)
    sns: int = -1
    sns_ps: int = -1
    phase2: List[Tuple[int, int, Schedule]] = field(default_factory=list)


def _plan_suite(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform],
    policy: Union[str, PriorityPolicy],
    deadline_overrides: Optional[Mapping[Hashable, float]],
    strict: bool,
    audit: Optional[AuditLog],
    obs: Optional[ObsLog],
    o: Union[ObsLog, NullObs],
    plans: Optional[PlanCache] = None,
) -> _SuitePlan:
    """Run the suite's control flow; emit the sweeps it needs.

    Builds every schedule, runs the feasibility checks, LAMPS phase 1
    and the phase-2 walk, and raises the exact
    :class:`~repro.core.results.InfeasibleScheduleError` the historical
    suite raised, in the same order — none of which needs an energy
    value.  Energy evaluation is deferred to the returned plan's
    ``sweeps``.

    All schedule builds, deadline vectors and required-frequency
    ratios go through one per-instance
    :class:`~repro.core.plans.PlanCache`, so the S&S family and LAMPS
    share every overlapping configuration (the full-spread build *is*
    the phase-1 upper-bound probe, and width aliasing collapses every
    probe at or above the graph's width onto it).
    """
    platform = platform or default_platform()
    log = audit if audit is not None else (AuditLog() if strict else None)
    plans = plan_scope(plans, log)
    d = plans.deadline_vector(graph, deadline_cycles,
                              overrides=deadline_overrides)
    deadline_seconds = platform.seconds(deadline_cycles)

    def sched(n: int) -> Schedule:
        return plans.schedule(graph, n, d, policy=policy, obs=obs,
                              log=log, build=list_schedule)

    # ---- S&S family: one schedule on |V| processors ----------------------
    with o.span("suite.sns_family", category="suite", graph=graph.name):
        s_full = sched(graph.n)
        plan = _SuitePlan(
            graph=graph, deadline_cycles=deadline_cycles,
            deadline_seconds=deadline_seconds, deadlines=d,
            platform=platform, deadline_overrides=deadline_overrides,
            log=log, s_full=s_full, plans=plans)

        def add(s: Schedule, points: Sequence[OperatingPoint],
                sleep: Optional[SleepModel]) -> int:
            plan.sweeps.append(PlannedSweep(s, tuple(points), sleep))
            return len(plan.sweeps) - 1

        f_req = plans.ratio(s_full, d) * platform.fmax
        if f_req > platform.fmax * (1.0 + 1e-9):
            raise InfeasibleScheduleError(
                f"{graph.name or 'graph'}: infeasible even at full speed")
        point = stretch_point(platform.ladder, f_req)
        o.count("core.operating_points_evaluated")
        if log is not None:
            log.operating_points_evaluated += 1
        plan.sns = add(s_full, [point], None)
        plan.sns_ps = add(
            s_full,
            _candidate_points(s_full, f_req, platform, deadline_seconds,
                              platform.sleep, log, o),
            platform.sleep)

    # ---- LAMPS family: shared processor-count sweep ----------------------
    with o.span("suite.lamps_phase1", category="suite",
                graph=graph.name):
        n_lwb = max(1,
                    math.ceil(float(graph.weights_array.sum()) / deadline_cycles))
        lo, hi = n_lwb, graph.n
        while lo < hi:
            mid = (lo + hi) // 2
            o.count("lamps.binary_search_iterations")
            if plans.ratio(sched(mid), d) <= 1.0 + 1e-9:
                hi = mid
            else:
                lo = mid + 1
        n_min = lo
        # Feasibility can be non-monotone under scheduling anomalies,
        # which breaks the binary search's assumption; advance linearly
        # until feasible (graph.n is feasible, so this terminates) —
        # see repro.core.lamps.lamps_search for the same guard.
        while (n_min < graph.n
               and plans.ratio(sched(n_min), d) > 1.0 + 1e-9):
            n_min += 1
            o.count("lamps.anomaly_retries")
            if log is not None:
                log.anomaly_retries += 1

    with o.span("suite.lamps_phase2", category="suite",
                graph=graph.name, n_min=n_min):
        prev_makespan = math.inf
        for n in range(n_min, graph.n + 1):
            s = sched(n)
            fr = plans.ratio(s, d) * platform.fmax
            if fr <= platform.fmax * (1.0 + 1e-9):
                plain_i = add(
                    s, _candidate_points(s, fr, platform, deadline_seconds,
                                         None, log, o), None)
                ps_i = add(
                    s, _candidate_points(s, fr, platform, deadline_seconds,
                                         platform.sleep, log, o),
                    platform.sleep)
                plan.phase2.append((plain_i, ps_i, s))
                if s.makespan >= prev_makespan - 1e-9:
                    break  # plateau on a feasible count ends the sweep
            else:
                o.count("lamps.anomaly_retries")
                if log is not None:
                    log.anomaly_retries += 1
            # Same anomaly rule as lamps_search: track every makespan,
            # and never let an infeasible (anomalous) count end the
            # sweep.
            prev_makespan = s.makespan
    return plan


def _finish_suite(
    plan: _SuitePlan,
    energies: Sequence[List[EnergyBreakdown]],
    o: Union[ObsLog, NullObs],
) -> Dict[Heuristic, ScheduleResult]:
    """Turn a plan's sweep energies into the six suite results.

    ``energies[i]`` must be the breakdown list of ``plan.sweeps[i]`` —
    from :func:`~repro.core.energy.schedule_energy_sweep` or the
    batched equivalent, which agree bitwise.  Selection replays the
    historical tie-breaking exactly: ``min`` keeps the first minimal
    ladder point, cross-count comparison keeps the earlier processor
    count on ties, and the fully spread +PS candidate only displaces a
    strictly worse phase-2 winner.
    """
    graph = plan.graph
    platform = plan.platform
    log = plan.log

    def result(heuristic: Heuristic, energy: EnergyBreakdown,
               point: OperatingPoint, s: Schedule) -> ScheduleResult:
        return ScheduleResult(
            heuristic=heuristic, graph_name=graph.name, energy=energy,
            point=point, n_processors=s.employed_processors,
            deadline_cycles=float(plan.deadline_cycles),
            deadline_seconds=plan.deadline_seconds, schedule=s)

    def best(i: int) -> Tuple[EnergyBreakdown, OperatingPoint]:
        return _select_best(list(energies[i]), list(plan.sweeps[i].points))

    out: Dict[Heuristic, ScheduleResult] = {}
    e_sns, p_sns = best(plan.sns)
    out[Heuristic.SNS] = result(Heuristic.SNS, e_sns, p_sns, plan.s_full)
    e_ps, p_ps = best(plan.sns_ps)
    out[Heuristic.SNS_PS] = result(Heuristic.SNS_PS, e_ps, p_ps,
                                   plan.s_full)

    best_plain: Optional[tuple] = None
    best_ps: Optional[tuple] = None
    for plain_i, ps_i, s in plan.phase2:
        e, p = best(plain_i)
        if best_plain is None or e.total < best_plain[0].total:
            best_plain = (e, p, s)
        e, p = best(ps_i)
        if best_ps is None or e.total < best_ps[0].total:
            best_ps = (e, p, s)
    # The fully spread schedule is a valid +PS candidate (Fig. 8's
    # Nmax); it can beat packed configurations because long gaps sleep
    # cheaply.
    if best_ps is None or e_ps.total < best_ps[0].total:
        best_ps = (e_ps, p_ps, plan.s_full)
    assert best_plain is not None and best_ps is not None
    out[Heuristic.LAMPS] = result(Heuristic.LAMPS, *best_plain)
    out[Heuristic.LAMPS_PS] = result(Heuristic.LAMPS_PS, *best_ps)

    # ---- Bounds -----------------------------------------------------------
    with o.span("suite.limits", category="suite", graph=graph.name):
        out[Heuristic.LIMIT_SF] = limit_sf(
            graph, plan.deadline_cycles, platform=platform,
            deadline_overrides=plan.deadline_overrides, plans=plan.plans)
        out[Heuristic.LIMIT_MF] = limit_mf(
            graph, plan.deadline_cycles, platform=platform,
            deadline_overrides=plan.deadline_overrides, plans=plan.plans)
    if log is not None:
        for h, res in out.items():
            audit_result(
                res, plan.deadlines, platform, log,
                sleep=platform.sleep
                if h in (Heuristic.SNS_PS, Heuristic.LAMPS_PS) else None)
    # Re-key into presentation order.
    order = (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
             Heuristic.LAMPS_PS, Heuristic.LIMIT_SF, Heuristic.LIMIT_MF)
    return {h: out[h] for h in order}


def _paper_suite(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform],
    policy: Union[str, PriorityPolicy],
    deadline_overrides: Optional[Mapping[Hashable, float]],
    strict: bool,
    audit: Optional[AuditLog],
    obs: Optional[ObsLog],
    o: Union[ObsLog, NullObs],
    plans: Optional[PlanCache] = None,
) -> Dict[Heuristic, ScheduleResult]:
    plan = _plan_suite(graph, deadline_cycles, platform=platform,
                       policy=policy,
                       deadline_overrides=deadline_overrides,
                       strict=strict, audit=audit, obs=obs, o=o,
                       plans=plans)
    energies = [
        schedule_energy_sweep(ps.schedule, list(ps.points),
                              plan.deadline_seconds, sleep=ps.sleep)
        for ps in plan.sweeps]
    return _finish_suite(plan, energies, o)


def _annotate_instance_failure(exc: BaseException, index: int,
                               instance: Tuple[TaskGraph, float]) -> None:
    """Tag ``exc`` with the chunk-local failing instance, once.

    The pool layer's :func:`repro.exec.pool._identify_failure` respects
    an existing ``instance_index``, so annotating here — before the
    exception crosses the chunk boundary — preserves per-instance
    attribution even though the pool only sees whole chunks.  Callers
    that know the chunk's global offset rebase the index in flight.
    """
    if getattr(exc, "instance_index", None) is not None:
        return
    try:
        item_repr = repr(instance)
    except Exception:  # a broken repr must not mask the real error
        item_repr = f"<unreprable {type(instance).__name__}>"
    if len(item_repr) > 500:
        item_repr = item_repr[:497] + "..."
    try:
        exc.instance_index = index  # type: ignore[attr-defined]
        exc.instance_repr = item_repr  # type: ignore[attr-defined]
    except Exception:  # exceptions with __slots__ cannot carry attrs
        pass


def paper_suite_batch(
    instances: Sequence[Tuple[TaskGraph, float]],
    *,
    platform: Optional[Platform] = None,
    policy: Union[str, PriorityPolicy] = "edf",
) -> List[Dict[Heuristic, ScheduleResult]]:
    """:func:`paper_suite` on a chunk of instances, one broadcast sweep.

    Plans every instance sequentially (so any
    :class:`~repro.core.results.InfeasibleScheduleError` surfaces for
    the same instance, in the same order, as a serial loop), stacks all
    distinct planned schedules into one
    :class:`~repro.core.batch.ScheduleBatch`, evaluates every planned
    ladder in a single :func:`~repro.core.batch.batch_energy_sweep`
    call, and finishes each instance from its slice of the results.
    Bitwise-identical to ``[paper_suite(g, d, ...) for g, d in
    instances]`` — the differential suites in
    ``tests/core/test_batch_sweep.py`` and ``tests/exec/`` hold both
    paths to byte equality.

    Audit/obs knobs are deliberately absent: strict and profiling
    campaigns use the serial path, whose span nesting reflects real
    per-instance timing.

    Returns:
        One heuristic→result dict per instance, in input order.
    """
    o = live(None)
    plans: List[_SuitePlan] = []
    for i, (graph, deadline) in enumerate(instances):
        try:
            plans.append(_plan_suite(
                graph, deadline, platform=platform, policy=policy,
                deadline_overrides=None, strict=False, audit=None,
                obs=None, o=o))
        except BaseException as exc:
            _annotate_instance_failure(exc, i, (graph, deadline))
            raise
    if not plans:
        return []

    schedules: List[Schedule] = []
    index: Dict[int, int] = {}
    requests: List[SweepRequest] = []
    for plan in plans:
        for ps in plan.sweeps:
            key = id(ps.schedule)
            if key not in index:
                index[key] = len(schedules)
                schedules.append(ps.schedule)
            requests.append(SweepRequest(
                schedule_index=index[key], points=ps.points,
                deadline_seconds=plan.deadline_seconds, sleep=ps.sleep))
    batch = ScheduleBatch.from_schedules(schedules)
    try:
        energies = batch_energy_sweep(batch, requests)
    except ValueError:
        # Exceptions must surface with serial per-instance attribution
        # (the pool annotates them with the failing instance index), so
        # re-run the sweeps serially; the first offender re-raises the
        # identical error from its own instance's evaluation.
        energies = None
    out: List[Dict[Heuristic, ScheduleResult]] = []
    cursor = 0
    for i, plan in enumerate(plans):
        k = len(plan.sweeps)
        if energies is None:
            try:
                per_plan = [
                    schedule_energy_sweep(ps.schedule, list(ps.points),
                                          plan.deadline_seconds,
                                          sleep=ps.sleep)
                    for ps in plan.sweeps]
            except BaseException as exc:
                _annotate_instance_failure(exc, i, instances[i])
                raise
        else:
            per_plan = energies[cursor:cursor + k]
        cursor += k
        out.append(_finish_suite(plan, per_plan, o))
    return out
