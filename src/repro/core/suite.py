"""Fast evaluation of the full paper lineup on one instance.

:func:`paper_suite` produces the same results as calling
:func:`repro.core.api.schedule` six times, but shares the expensive
intermediates: S&S and S&S+PS use one schedule, and LAMPS and LAMPS+PS
share the whole per-processor-count schedule cache.  The experiment
harness calls this in its inner loop (thousands of instances), so the
sharing matters — profiling shows list scheduling dominates the runtime,
exactly as the paper's complexity analysis (``T_LAMPS ~ #schedules *
T_ls``) predicts.

Every ladder search here goes through
:func:`repro.core.lamps._best_operating_point`, which evaluates the
whole feasible ladder in one vectorized
:func:`~repro.core.energy.schedule_energy_sweep` call over the
array-native schedule kernel (see DESIGN.md, "Why one sweep is exact").
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional, Union

from ..audit.invariants import audit_intermediate_schedule, audit_result
from ..audit.report import AuditLog
from ..graphs.dag import TaskGraph
from ..obs import NullObs, ObsLog, live
from ..power.dvs import OperatingPoint
from ..sched.deadlines import task_deadlines
from ..sched.list_scheduler import list_schedule
from ..sched.priorities import PriorityPolicy
from ..sched.schedule import Schedule
from .energy import EnergyBreakdown, schedule_energy_sweep
from .lamps import _best_operating_point
from .limits import limit_mf, limit_sf
from .platform import Platform, default_platform
from .results import Heuristic, InfeasibleScheduleError, ScheduleResult
from .stretch import required_frequency, stretch_point

__all__ = ["paper_suite"]


def paper_suite(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform] = None,
    policy: Union[str, PriorityPolicy] = "edf",
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    strict: bool = False,
    audit: Optional[AuditLog] = None,
    obs: Optional[ObsLog] = None,
) -> Dict[Heuristic, ScheduleResult]:
    """All six approaches on one (graph, deadline) instance.

    Returns a dict in the paper's presentation order: S&S, LAMPS,
    S&S+PS, LAMPS+PS, LIMIT-SF, LIMIT-MF.

    ``strict``/``audit`` enable the invariant checks of
    :mod:`repro.audit` on every intermediate schedule and every
    schedule-bearing result; ``obs`` records phase spans and search
    counters into an :class:`~repro.obs.ObsLog`.  Neither affects the
    returned results.
    """
    o = live(obs)
    with o.span("suite.paper_suite", category="suite",
                graph=graph.name, tasks=graph.n):
        return _paper_suite(graph, deadline_cycles, platform=platform,
                            policy=policy,
                            deadline_overrides=deadline_overrides,
                            strict=strict, audit=audit, obs=obs, o=o)


def _paper_suite(
    graph: TaskGraph,
    deadline_cycles: float,
    *,
    platform: Optional[Platform],
    policy: Union[str, PriorityPolicy],
    deadline_overrides: Optional[Mapping[Hashable, float]],
    strict: bool,
    audit: Optional[AuditLog],
    obs: Optional[ObsLog],
    o: Union[ObsLog, NullObs],
) -> Dict[Heuristic, ScheduleResult]:
    platform = platform or default_platform()
    d = task_deadlines(graph, deadline_cycles, overrides=deadline_overrides)
    deadline_seconds = platform.seconds(deadline_cycles)
    log = audit if audit is not None else (AuditLog() if strict else None)

    cache: Dict[int, Schedule] = {}

    def sched(n: int) -> Schedule:
        if n not in cache:
            cache[n] = list_schedule(graph, n, d, policy=policy, obs=obs)
            if log is not None:
                log.schedules_built += 1
                audit_intermediate_schedule(
                    cache[n], log, f"{graph.name or 'graph'}[n={n}]")
        return cache[n]

    def result(heuristic: Heuristic, energy: EnergyBreakdown,
               point: OperatingPoint, s: Schedule) -> ScheduleResult:
        return ScheduleResult(
            heuristic=heuristic, graph_name=graph.name, energy=energy,
            point=point, n_processors=s.employed_processors,
            deadline_cycles=float(deadline_cycles),
            deadline_seconds=deadline_seconds, schedule=s)

    out: Dict[Heuristic, ScheduleResult] = {}

    # ---- S&S family: one schedule on |V| processors ----------------------
    with o.span("suite.sns_family", category="suite", graph=graph.name):
        s_full = sched(graph.n)
        f_req = required_frequency(s_full, d, platform.fmax)
        if f_req > platform.fmax * (1.0 + 1e-9):
            raise InfeasibleScheduleError(
                f"{graph.name or 'graph'}: infeasible even at full speed")
        point = stretch_point(platform.ladder, f_req)
        o.count("core.operating_points_evaluated")
        if log is not None:
            log.operating_points_evaluated += 1
        out[Heuristic.SNS] = result(
            Heuristic.SNS,
            schedule_energy_sweep(s_full, [point],
                                  deadline_seconds)[0],
            point, s_full)
        e_ps, p_ps = _best_operating_point(
            s_full, f_req, platform, deadline_seconds, platform.sleep,
            log, o)
        out[Heuristic.SNS_PS] = result(Heuristic.SNS_PS, e_ps, p_ps,
                                       s_full)

    # ---- LAMPS family: shared processor-count sweep ----------------------
    with o.span("suite.lamps_phase1", category="suite",
                graph=graph.name):
        n_lwb = max(1,
                    math.ceil(float(graph.weights_array.sum()) / deadline_cycles))
        lo, hi = n_lwb, graph.n
        while lo < hi:
            mid = (lo + hi) // 2
            o.count("lamps.binary_search_iterations")
            if sched(mid).required_reference_frequency(d) <= 1.0 + 1e-9:
                hi = mid
            else:
                lo = mid + 1
        n_min = lo
        # Feasibility can be non-monotone under scheduling anomalies,
        # which breaks the binary search's assumption; advance linearly
        # until feasible (graph.n is feasible, so this terminates) —
        # see repro.core.lamps.lamps_search for the same guard.
        while (n_min < graph.n
               and sched(n_min).required_reference_frequency(d)
               > 1.0 + 1e-9):
            n_min += 1
            o.count("lamps.anomaly_retries")
            if log is not None:
                log.anomaly_retries += 1

    with o.span("suite.lamps_phase2", category="suite",
                graph=graph.name, n_min=n_min):
        best_plain: Optional[tuple] = None
        best_ps: Optional[tuple] = None
        prev_makespan = math.inf
        for n in range(n_min, graph.n + 1):
            s = sched(n)
            fr = required_frequency(s, d, platform.fmax)
            if fr <= platform.fmax * (1.0 + 1e-9):
                e, p = _best_operating_point(s, fr, platform,
                                             deadline_seconds, None,
                                             log, o)
                if best_plain is None or e.total < best_plain[0].total:
                    best_plain = (e, p, s)
                e, p = _best_operating_point(s, fr, platform,
                                             deadline_seconds,
                                             platform.sleep, log, o)
                if best_ps is None or e.total < best_ps[0].total:
                    best_ps = (e, p, s)
                if s.makespan >= prev_makespan - 1e-9:
                    break  # plateau on a feasible count ends the sweep
            else:
                o.count("lamps.anomaly_retries")
                if log is not None:
                    log.anomaly_retries += 1
            # Same anomaly rule as lamps_search: track every makespan,
            # and never let an infeasible (anomalous) count end the
            # sweep.
            prev_makespan = s.makespan
        # The fully spread schedule is a valid +PS candidate (Fig. 8's
        # Nmax); it can beat packed configurations because long gaps
        # sleep cheaply.
        if best_ps is None or e_ps.total < best_ps[0].total:
            best_ps = (e_ps, p_ps, s_full)
        assert best_plain is not None and best_ps is not None
        out[Heuristic.LAMPS] = result(Heuristic.LAMPS, *best_plain)
        out[Heuristic.LAMPS_PS] = result(Heuristic.LAMPS_PS, *best_ps)

    # ---- Bounds -----------------------------------------------------------
    with o.span("suite.limits", category="suite", graph=graph.name):
        out[Heuristic.LIMIT_SF] = limit_sf(
            graph, deadline_cycles, platform=platform,
            deadline_overrides=deadline_overrides)
        out[Heuristic.LIMIT_MF] = limit_mf(
            graph, deadline_cycles, platform=platform,
            deadline_overrides=deadline_overrides)
    if log is not None:
        for h, res in out.items():
            audit_result(
                res, d, platform, log,
                sleep=platform.sleep
                if h in (Heuristic.SNS_PS, Heuristic.LAMPS_PS) else None)
    # Re-key into presentation order.
    order = (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
             Heuristic.LAMPS_PS, Heuristic.LIMIT_SF, Heuristic.LIMIT_MF)
    return {h: out[h] for h in order}
