"""Parallel experiment execution: process-pool fan-out + result cache.

The experiment harness evaluates thousands of (graph, deadline)
instances whose cost is dominated by list scheduling.  This package
makes repeated campaigns cheap without touching the numerics:

- :mod:`repro.exec.cache` — a content-addressed on-disk cache keyed by
  a stable digest of the instance (graph structure + weights, deadline,
  platform parameters, priority policy, schema version).
- :mod:`repro.exec.pool` — :func:`run_instances`, a chunked
  ``ProcessPoolExecutor`` fan-out with per-instance timing, a progress
  callback and an in-process fallback for ``jobs=1``; and
  :func:`run_instances_shm`, the same protocol with worker results
  returned through coordinator-reserved
  ``multiprocessing.shared_memory`` segments (:mod:`repro.exec.shm`)
  instead of pickles.
- :mod:`repro.exec.runner` — :func:`evaluate_suite_instances`, the
  cache-aware :func:`repro.core.suite.paper_suite` fan-out the
  experiment modules call.

Parallelism and caching are *bit-for-bit invisible* in the results:
``tests/exec`` proves that serial, parallel and warm-cache campaigns
produce byte-identical JSON payloads.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    EvictionSweep,
    ResultCache,
    instance_digest,
    restore_results,
    shard_lock,
    summarize_results,
)
from .pool import InstanceResult, run_instances, run_instances_shm
from .runner import ExecOptions, evaluate_suite_instances
from .shm import ShmHandle

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "EvictionSweep",
    "shard_lock",
    "ResultCache",
    "instance_digest",
    "summarize_results",
    "restore_results",
    "InstanceResult",
    "run_instances",
    "run_instances_shm",
    "ShmHandle",
    "ExecOptions",
    "evaluate_suite_instances",
]
