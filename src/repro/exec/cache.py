"""Content-addressed on-disk cache for experiment results.

An *instance* is everything that determines a :func:`paper_suite`
outcome: the graph's structure and weights, the deadline, the platform
parameters, and the priority policy.  :func:`instance_digest` folds all
of it (plus :data:`CACHE_SCHEMA_VERSION`) into a SHA-256 key, so equal
inputs hit the same entry across processes and machines while any
change in the model parameters transparently misses.

What is cached: the :class:`~repro.core.results.ScheduleResult`
*summaries* — heuristic, energy breakdown, operating point, processor
count, deadlines, feasibility flag.  What is **not** cached: the
concrete :class:`~repro.sched.schedule.Schedule` (task placements), so
restored results carry ``schedule=None``.  Floats survive the JSON
round-trip exactly (shortest-repr encoding), which is what makes warm
and cold campaigns byte-identical.

Writes are atomic (temp file + ``os.replace`` in the same directory);
a truncated, corrupt or schema-stale entry is treated as a miss and
removed, never an error.

The store is safe under concurrent multi-process writers — the
discipline a long-running :mod:`repro.serve` service needs.  Mutating
operations (replacing an entry, dropping a corrupt one, evicting)
serialize on a per-shard advisory lock (``flock`` on the shard
*directory* fd, so no extra files appear under the root), and a corrupt
entry is re-validated under that lock before it is unlinked — a blind
unlink could destroy a valid entry a concurrent ``put`` just replaced
the corrupt bytes with.  With ``max_bytes`` set the cache is also
size-bounded: ``put`` prunes least-recently-used entries (access times
are refreshed on hit) and sweeps aged ``*.tmp`` orphans left by writers
killed mid-``put``.  ``max_bytes=None`` (the default) changes nothing —
campaign runs produce byte-identical trees with or without this module's
service features.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, \
    Tuple, Union

try:
    import fcntl
    _HAVE_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    _HAVE_FLOCK = False

from ..core.platform import Platform
from ..core.results import Heuristic, ScheduleResult
from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from ..power.dvs import OperatingPoint

__all__ = [
    "CACHE_SCHEMA_VERSION", "CacheStats", "EvictionSweep", "ResultCache",
    "instance_digest", "shard_lock", "summarize_results",
    "restore_results",
]

#: Bump when the cached payload layout or the energy model semantics
#: change; the version participates in the digest, so old entries are
#: silently orphaned rather than misread.
#:
#: History: 2 — Phase-1 anomaly guard + always-advancing makespan
#: plateau in the LAMPS sweeps can (rarely) change which configuration
#: wins, so results cached under the old search are stale.
CACHE_SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# Instance digests
# ----------------------------------------------------------------------
def _graph_fingerprint(graph: TaskGraph) -> dict:
    """Structure + weights of ``graph`` over dense node indices.

    Node *labels* do not influence scheduling (the schedulers operate on
    dense indices), but the name is included so a cached result is never
    replayed under a different benchmark label.
    """
    return {
        "name": graph.name,
        "weights": graph.weights_array.tolist(),
        "edges": [[u, v] for u, succs in enumerate(graph.succ_indices)
                  for v in succs],
    }


def _platform_fingerprint(platform: Platform) -> dict:
    """Everything of the platform that reaches the energy numbers."""
    ladder = platform.ladder
    return {
        "technology": dataclasses.asdict(ladder.tech),
        "vdd_step": ladder.vdd_step,
        "points": [[p.frequency, p.vdd, p.vbs] for p in ladder],
        "sleep": dataclasses.asdict(platform.sleep),
    }


def instance_digest(
    graph: TaskGraph,
    deadline: float,
    platform: Platform,
    policy: str,
    *,
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    schema: Optional[int] = None,
) -> str:
    """Stable SHA-256 key of one (graph, deadline, platform, policy).

    The digest is computed over a canonical JSON rendering (sorted keys,
    no hash-seed dependence), so it is stable across process restarts
    and ``PYTHONHASHSEED`` values.  Only string policies are digestible;
    a callable policy has no stable identity and must bypass the cache.
    """
    if not isinstance(policy, str):
        raise TypeError(
            f"only named policies are cacheable, got {policy!r}")
    fingerprint = {
        "schema": CACHE_SCHEMA_VERSION if schema is None else schema,
        "graph": _graph_fingerprint(graph),
        "deadline": float(deadline),
        "platform": _platform_fingerprint(platform),
        "policy": policy,
        "deadline_overrides": None if deadline_overrides is None else
        sorted([graph.index_of(k), float(v)]
               for k, v in deadline_overrides.items()),
    }
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Result (de)serialisation
# ----------------------------------------------------------------------
def _summarize_result(r: ScheduleResult) -> dict:
    return {
        "heuristic": r.heuristic.value,
        "graph_name": r.graph_name,
        "energy": {
            "busy": r.energy.busy,
            "idle": r.energy.idle,
            "sleep": r.energy.sleep,
            "overhead": r.energy.overhead,
            "n_shutdowns": r.energy.n_shutdowns,
        },
        "point": None if r.point is None else {
            "frequency": r.point.frequency,
            "vdd": r.point.vdd,
            "active_power": r.point.active_power,
            "idle_power": r.point.idle_power,
            "energy_per_cycle": r.point.energy_per_cycle,
            "vbs": r.point.vbs,
        },
        "n_processors": r.n_processors,
        "deadline_cycles": r.deadline_cycles,
        "deadline_seconds": r.deadline_seconds,
        "meets_deadline": r.meets_deadline,
    }


def summarize_results(results: Mapping[Heuristic, ScheduleResult]
                      ) -> List[dict]:
    """JSON-able summaries of a :func:`paper_suite` outcome, in order.

    The concrete schedules are dropped — see the module docstring.
    """
    return [_summarize_result(r) for r in results.values()]


def restore_results(payload: List[dict]) -> Dict[Heuristic, ScheduleResult]:
    """Inverse of :func:`summarize_results` (with ``schedule=None``)."""
    from ..core.energy import EnergyBreakdown

    out: Dict[Heuristic, ScheduleResult] = {}
    for d in payload:
        h = Heuristic(d["heuristic"])
        point = d["point"]
        out[h] = ScheduleResult(
            heuristic=h,
            graph_name=d["graph_name"],
            energy=EnergyBreakdown(**d["energy"]),
            point=None if point is None else OperatingPoint(**point),
            n_processors=d["n_processors"],
            deadline_cycles=d["deadline_cycles"],
            deadline_seconds=d["deadline_seconds"],
            schedule=None,
            meets_deadline=d["meets_deadline"],
        )
    return out


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
@contextlib.contextmanager
def shard_lock(shard_dir: Union[str, Path]) -> Iterator[None]:
    """Advisory exclusive lock on one cache shard directory.

    Locks the directory's own fd (``flock``), so the lock leaves no
    file behind under the cache root and vanishes with the process —
    a crashed writer can never wedge the shard.  Advisory: plain reads
    skip it (``os.replace`` keeps them atomic); every *mutating* path —
    replacing an entry, dropping a corrupt one, evicting — takes it, so
    mutations on one shard serialize across processes.  On platforms
    without ``fcntl`` the lock degrades to a no-op, which is the
    historical (single-writer) behaviour.
    """
    if not _HAVE_FLOCK:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fd = os.open(shard_dir, os.O_RDONLY)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        os.close(fd)  # closing the fd releases the flock


@dataclass
class EvictionSweep:
    """What one :meth:`ResultCache.evict` pass removed and kept."""

    entries_removed: int = 0
    bytes_removed: int = 0
    tmp_removed: int = 0
    bytes_kept: int = 0


@dataclass
class CacheStats:
    """Hit/miss and traffic counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    evictions: int = 0
    tmp_swept: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed JSON store under ``root``.

    Entries are sharded by the first two hex digits of the key.  ``get``
    never raises on bad entries: unreadable, truncated, corrupt or
    schema-stale files count as misses and are unlinked so the caller
    simply recomputes.  ``put`` is atomic — readers see either the old
    entry or the complete new one, and a crash leaves no partial file
    under a final entry name.

    With ``max_bytes`` the store is size-bounded: once the tree exceeds
    the budget, ``put`` triggers :meth:`evict`, which prunes entries in
    least-recently-used order (hits refresh the entry's access time)
    and sweeps ``*.tmp`` orphans older than ``tmp_ttl_seconds`` — the
    leftovers of writers SIGKILLed between ``mkstemp`` and
    ``os.replace``.  ``max_bytes=None`` performs no eviction, no sweep
    and no extra syscalls.

    An optional :class:`~repro.obs.ObsLog` records hit/miss counters
    and ``cache.get`` / ``cache.put`` latency histograms; it never
    affects what is stored or returned.
    """

    def __init__(self, root: Union[str, Path],
                 obs: Optional[ObsLog] = None, *,
                 max_bytes: Optional[int] = None,
                 tmp_ttl_seconds: float = 3600.0) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        self.obs = obs
        self.max_bytes = max_bytes
        self.tmp_ttl_seconds = tmp_ttl_seconds
        #: Running estimate of the tree size, measured lazily on the
        #: first bounded put and advanced by write sizes; an eviction
        #: pass resets it to the exact surviving total.
        self._approx_bytes: Optional[int] = None

    def path_for(self, key: str) -> Path:
        """Entry path for digest ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[dict]]:
        """Cached payload for ``key``, or ``None`` on any kind of miss."""
        t0 = time.perf_counter()
        payload = self._get(key)
        o = live(self.obs)
        o.observe("cache.get", time.perf_counter() - t0)
        o.count("cache.hits" if payload is not None else "cache.misses")
        return payload

    def _read_entry(self, path: Path) -> Optional[bytes]:
        """Raw entry bytes, or ``None`` when the file is absent.

        Bytes, not text: a garbage entry may not be valid UTF-8, and a
        ``read_text`` decode error would escape the corrupt-entry
        handling (``UnicodeDecodeError`` is not an ``OSError``) and
        crash the caller instead of counting a miss.  Decoding is
        ``json.loads``'s job, inside :meth:`_decode_entry`'s guard.
        """
        try:
            return path.read_bytes()
        except OSError:
            return None

    @staticmethod
    def _decode_entry(blob: bytes) -> Optional[List[dict]]:
        """Validated payload of one entry's bytes; ``None`` if corrupt."""
        try:
            entry = json.loads(blob)
            if entry["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError("stale cache schema")
            payload = entry["results"]
            if not isinstance(payload, list):
                raise ValueError("malformed cache payload")
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None
        return payload  # type: ignore[no-any-return]

    def _get(self, key: str) -> Optional[List[dict]]:
        path = self.path_for(key)
        blob = self._read_entry(path)
        payload = None if blob is None else self._decode_entry(blob)
        if blob is not None and payload is None:
            payload, blob = self._drop_corrupt(path)
        if payload is None or blob is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        if self.max_bytes is not None:
            # Refresh the entry's timestamps so LRU eviction sees the
            # hit; only when bounded — unbounded caches stay untouched.
            with contextlib.suppress(OSError):
                os.utime(path)
        return payload

    def _drop_corrupt(self, path: Path
                      ) -> Tuple[Optional[List[dict]], Optional[bytes]]:
        """Remove a corrupt entry — re-validated under the shard lock.

        Between this process reading corrupt bytes and unlinking them, a
        concurrent ``put`` may have ``os.replace``\\ d a *valid* entry at
        the same path; blindly unlinking would permanently destroy that
        fresh write.  So: take the shard lock, re-read, and only unlink
        what is still corrupt.  Returns ``(payload, blob)`` when the
        re-read found the entry healthy (the race happened — serve it as
        a hit), else ``(None, None)``.
        """
        try:
            with shard_lock(path.parent):
                blob = self._read_entry(path)
                if blob is not None:
                    payload = self._decode_entry(blob)
                    if payload is not None:
                        return payload, blob
                    with contextlib.suppress(OSError):
                        path.unlink()
        except OSError:  # shard directory itself vanished: a plain miss
            pass
        return None, None

    def put(self, key: str, payload: List[dict]) -> None:
        """Atomically store ``payload`` (a :func:`summarize_results` list)."""
        t0 = time.perf_counter()
        self._put(key, payload)
        o = live(self.obs)
        o.observe("cache.put", time.perf_counter() - t0)
        o.count("cache.writes")

    def _put(self, key: str, payload: List[dict]) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "results": payload},
            sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            with shard_lock(path.parent):
                os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stats.bytes_written += len(text)
        if self.max_bytes is not None:
            self._note_write(len(text))

    # ------------------------------------------------------------------
    # Size-bounded eviction (only ever active with max_bytes set)
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Exact current size of all entry files under the root."""
        total = 0
        for _path, st in self._scan_entries():
            total += st.st_size
        return total

    def usage(self) -> Tuple[int, int]:
        """Current ``(entry_count, total_bytes)`` in one tree walk.

        The ``/metrics`` gauge pair — one :meth:`_scan_entries` pass
        serves both numbers, so a scrape costs a single directory walk.
        """
        entries = self._scan_entries()
        return len(entries), sum(st.st_size for _path, st in entries)

    def _scan_entries(self) -> List[Tuple[Path, os.stat_result]]:
        """Stat every entry file, in sorted order; vanished ones skipped."""
        out: List[Tuple[Path, os.stat_result]] = []
        if not self.root.is_dir():
            return out
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    out.append((path, path.stat()))
                except OSError:  # evicted/replaced concurrently
                    continue
        return out

    def _note_write(self, nbytes: int) -> None:
        """Advance the size estimate; evict when it crosses the budget."""
        if self._approx_bytes is None:
            self._approx_bytes = self.total_bytes()
        else:
            self._approx_bytes += nbytes
        assert self.max_bytes is not None
        if self._approx_bytes > self.max_bytes:
            self.evict()

    def evict(self) -> EvictionSweep:
        """One maintenance pass: prune to ``max_bytes``, sweep orphans.

        Entries leave in least-recently-used order (access time, with
        the path as a deterministic tie-break) until the tree fits the
        budget; every unlink happens under the shard lock and only
        after re-checking that the file was not concurrently replaced
        by a fresher write.  ``*.tmp`` files older than
        ``tmp_ttl_seconds`` — orphans of writers that died between
        ``mkstemp`` and ``os.replace``, whose ``finally`` never ran —
        are removed in the same pass (a *live* writer's tmp is always
        younger than the TTL).  Safe to call on an unbounded cache: it
        then only sweeps orphans.
        """
        sweep = EvictionSweep()
        # Wall-clock ages the tmp orphans and never feeds results,
        # reports or cache keys.
        now = time.time()  # repro: noqa[DET002]
        entries: List[Tuple[float, int, float, Path]] = []
        total = 0
        if self.root.is_dir():
            for shard in sorted(self.root.iterdir()):
                if not shard.is_dir():
                    continue
                self._sweep_tmp(shard, now, sweep)
                for path in sorted(shard.glob("*.json")):
                    try:
                        st = path.stat()
                    except OSError:
                        continue
                    entries.append((st.st_atime, st.st_size,
                                    st.st_mtime, path))
                    total += st.st_size
        if self.max_bytes is not None and total > self.max_bytes:
            entries.sort(key=lambda e: (e[0], str(e[3])))
            for atime, size, mtime, path in entries:
                if total <= self.max_bytes:
                    break
                with contextlib.suppress(OSError), \
                        shard_lock(path.parent):
                    st = path.stat()
                    if (st.st_mtime, st.st_size) != (mtime, size):
                        continue  # concurrently refreshed — keep it
                    path.unlink()
                    total -= size
                    sweep.entries_removed += 1
                    sweep.bytes_removed += size
        sweep.bytes_kept = total
        self._approx_bytes = total
        self.stats.evictions += sweep.entries_removed
        self.stats.tmp_swept += sweep.tmp_removed
        o = live(self.obs)
        o.count("cache.evictions", sweep.entries_removed)
        o.count("cache.tmp_swept", sweep.tmp_removed)
        return sweep

    def _sweep_tmp(self, shard: Path, now: float,
                   sweep: EvictionSweep) -> None:
        """Unlink aged ``*.tmp`` orphans in one shard, under its lock."""
        tmps = []
        for path in sorted(shard.glob("*.tmp")):
            try:
                if now - path.stat().st_mtime >= self.tmp_ttl_seconds:
                    tmps.append(path)
            except OSError:
                continue
        if not tmps:
            return
        with contextlib.suppress(OSError), shard_lock(shard):
            for path in tmps:
                try:
                    if now - path.stat().st_mtime < self.tmp_ttl_seconds:
                        continue  # a live writer's fresh tmp
                    path.unlink()
                except OSError:
                    continue
                sweep.tmp_removed += 1
