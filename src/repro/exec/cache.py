"""Content-addressed on-disk cache for experiment results.

An *instance* is everything that determines a :func:`paper_suite`
outcome: the graph's structure and weights, the deadline, the platform
parameters, and the priority policy.  :func:`instance_digest` folds all
of it (plus :data:`CACHE_SCHEMA_VERSION`) into a SHA-256 key, so equal
inputs hit the same entry across processes and machines while any
change in the model parameters transparently misses.

What is cached: the :class:`~repro.core.results.ScheduleResult`
*summaries* — heuristic, energy breakdown, operating point, processor
count, deadlines, feasibility flag.  What is **not** cached: the
concrete :class:`~repro.sched.schedule.Schedule` (task placements), so
restored results carry ``schedule=None``.  Floats survive the JSON
round-trip exactly (shortest-repr encoding), which is what makes warm
and cold campaigns byte-identical.

Writes are atomic (temp file + ``os.replace`` in the same directory);
a truncated, corrupt or schema-stale entry is treated as a miss and
removed, never an error.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Union

from ..core.platform import Platform
from ..core.results import Heuristic, ScheduleResult
from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from ..power.dvs import OperatingPoint

__all__ = [
    "CACHE_SCHEMA_VERSION", "CacheStats", "ResultCache",
    "instance_digest", "summarize_results", "restore_results",
]

#: Bump when the cached payload layout or the energy model semantics
#: change; the version participates in the digest, so old entries are
#: silently orphaned rather than misread.
#:
#: History: 2 — Phase-1 anomaly guard + always-advancing makespan
#: plateau in the LAMPS sweeps can (rarely) change which configuration
#: wins, so results cached under the old search are stale.
CACHE_SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# Instance digests
# ----------------------------------------------------------------------
def _graph_fingerprint(graph: TaskGraph) -> dict:
    """Structure + weights of ``graph`` over dense node indices.

    Node *labels* do not influence scheduling (the schedulers operate on
    dense indices), but the name is included so a cached result is never
    replayed under a different benchmark label.
    """
    return {
        "name": graph.name,
        "weights": graph.weights_array.tolist(),
        "edges": [[u, v] for u, succs in enumerate(graph.succ_indices)
                  for v in succs],
    }


def _platform_fingerprint(platform: Platform) -> dict:
    """Everything of the platform that reaches the energy numbers."""
    ladder = platform.ladder
    return {
        "technology": dataclasses.asdict(ladder.tech),
        "vdd_step": ladder.vdd_step,
        "points": [[p.frequency, p.vdd, p.vbs] for p in ladder],
        "sleep": dataclasses.asdict(platform.sleep),
    }


def instance_digest(
    graph: TaskGraph,
    deadline: float,
    platform: Platform,
    policy: str,
    *,
    deadline_overrides: Optional[Mapping[Hashable, float]] = None,
    schema: Optional[int] = None,
) -> str:
    """Stable SHA-256 key of one (graph, deadline, platform, policy).

    The digest is computed over a canonical JSON rendering (sorted keys,
    no hash-seed dependence), so it is stable across process restarts
    and ``PYTHONHASHSEED`` values.  Only string policies are digestible;
    a callable policy has no stable identity and must bypass the cache.
    """
    if not isinstance(policy, str):
        raise TypeError(
            f"only named policies are cacheable, got {policy!r}")
    fingerprint = {
        "schema": CACHE_SCHEMA_VERSION if schema is None else schema,
        "graph": _graph_fingerprint(graph),
        "deadline": float(deadline),
        "platform": _platform_fingerprint(platform),
        "policy": policy,
        "deadline_overrides": None if deadline_overrides is None else
        sorted([graph.index_of(k), float(v)]
               for k, v in deadline_overrides.items()),
    }
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Result (de)serialisation
# ----------------------------------------------------------------------
def _summarize_result(r: ScheduleResult) -> dict:
    return {
        "heuristic": r.heuristic.value,
        "graph_name": r.graph_name,
        "energy": {
            "busy": r.energy.busy,
            "idle": r.energy.idle,
            "sleep": r.energy.sleep,
            "overhead": r.energy.overhead,
            "n_shutdowns": r.energy.n_shutdowns,
        },
        "point": None if r.point is None else {
            "frequency": r.point.frequency,
            "vdd": r.point.vdd,
            "active_power": r.point.active_power,
            "idle_power": r.point.idle_power,
            "energy_per_cycle": r.point.energy_per_cycle,
            "vbs": r.point.vbs,
        },
        "n_processors": r.n_processors,
        "deadline_cycles": r.deadline_cycles,
        "deadline_seconds": r.deadline_seconds,
        "meets_deadline": r.meets_deadline,
    }


def summarize_results(results: Mapping[Heuristic, ScheduleResult]
                      ) -> List[dict]:
    """JSON-able summaries of a :func:`paper_suite` outcome, in order.

    The concrete schedules are dropped — see the module docstring.
    """
    return [_summarize_result(r) for r in results.values()]


def restore_results(payload: List[dict]) -> Dict[Heuristic, ScheduleResult]:
    """Inverse of :func:`summarize_results` (with ``schedule=None``)."""
    from ..core.energy import EnergyBreakdown

    out: Dict[Heuristic, ScheduleResult] = {}
    for d in payload:
        h = Heuristic(d["heuristic"])
        point = d["point"]
        out[h] = ScheduleResult(
            heuristic=h,
            graph_name=d["graph_name"],
            energy=EnergyBreakdown(**d["energy"]),
            point=None if point is None else OperatingPoint(**point),
            n_processors=d["n_processors"],
            deadline_cycles=d["deadline_cycles"],
            deadline_seconds=d["deadline_seconds"],
            schedule=None,
            meets_deadline=d["meets_deadline"],
        )
    return out


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss and traffic counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed JSON store under ``root``.

    Entries are sharded by the first two hex digits of the key.  ``get``
    never raises on bad entries: unreadable, truncated, corrupt or
    schema-stale files count as misses and are unlinked so the caller
    simply recomputes.  ``put`` is atomic — readers see either the old
    entry or the complete new one, and a crash leaves no partial file
    under a final entry name.

    An optional :class:`~repro.obs.ObsLog` records hit/miss counters
    and ``cache.get`` / ``cache.put`` latency histograms; it never
    affects what is stored or returned.
    """

    def __init__(self, root: Union[str, Path],
                 obs: Optional[ObsLog] = None) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        self.obs = obs

    def path_for(self, key: str) -> Path:
        """Entry path for digest ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[dict]]:
        """Cached payload for ``key``, or ``None`` on any kind of miss."""
        t0 = time.perf_counter()
        payload = self._get(key)
        o = live(self.obs)
        o.observe("cache.get", time.perf_counter() - t0)
        o.count("cache.hits" if payload is not None else "cache.misses")
        return payload

    def _get(self, key: str) -> Optional[List[dict]]:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError("stale cache schema")
            payload = entry["results"]
            if not isinstance(payload, list):
                raise ValueError("malformed cache payload")
        except (ValueError, KeyError, TypeError):
            with contextlib.suppress(OSError):
                path.unlink()
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(text)
        return payload

    def put(self, key: str, payload: List[dict]) -> None:
        """Atomically store ``payload`` (a :func:`summarize_results` list)."""
        t0 = time.perf_counter()
        self._put(key, payload)
        o = live(self.obs)
        o.observe("cache.put", time.perf_counter() - t0)
        o.count("cache.writes")

    def _put(self, key: str, payload: List[dict]) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "results": payload},
            sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stats.bytes_written += len(text)
