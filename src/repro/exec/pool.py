"""Chunked process-pool fan-out over experiment instances.

:func:`run_instances` applies a picklable function to every item of a
work list, either in-process (``jobs=1`` — zero overhead, exceptions
surface with their natural tracebacks) or across a
``ProcessPoolExecutor``.  Items are distributed in contiguous chunks to
amortise pickling, each application is timed in the worker, and results
always come back in *input order* regardless of completion order, so
callers never see scheduling nondeterminism.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["InstanceResult", "run_instances"]

ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class InstanceResult:
    """One work item's outcome.

    Attributes:
        index: position of the item in the input sequence.
        value: what the worker function returned.
        seconds: wall-clock time of the single ``fn(item)`` call,
            measured inside the worker process.
    """

    index: int
    value: Any
    seconds: float


def _run_chunk(fn: Callable[[Any], Any], start: int,
               items: Sequence[Any]) -> List[InstanceResult]:
    """Worker-side body: apply ``fn`` to a contiguous chunk, timed."""
    out: List[InstanceResult] = []
    for offset, item in enumerate(items):
        t0 = time.perf_counter()
        value = fn(item)
        out.append(InstanceResult(start + offset, value,
                                  time.perf_counter() - t0))
    return out


def run_instances(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[InstanceResult]:
    """Apply ``fn`` to every item, possibly across worker processes.

    Args:
        fn: a picklable (module-level) single-argument callable.
        items: the work list; each element is passed to ``fn`` as-is.
        jobs: worker processes; ``1`` runs in-process with no pool.
        chunksize: items per pool task (default: ~4 chunks per worker).
        progress: called as ``progress(done, total)`` after each item
            (serial) or each completed chunk (parallel); ``done`` is
            strictly increasing and ends at ``total``.

    Returns:
        One :class:`InstanceResult` per item, in input order.

    Raises:
        Whatever ``fn`` raises — a worker exception aborts the run
        (fail-fast; pending chunks are cancelled) and propagates.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    total = len(items)
    if total == 0:
        return []

    if jobs == 1:
        results = []
        for i, item in enumerate(items):
            t0 = time.perf_counter()
            value = fn(item)
            results.append(InstanceResult(i, value,
                                          time.perf_counter() - t0))
            if progress is not None:
                progress(i + 1, total)
        return results

    if chunksize is None:
        chunksize = max(1, math.ceil(total / (jobs * 4)))
    chunks: List[Tuple[int, Sequence[Any]]] = [
        (start, items[start:start + chunksize])
        for start in range(0, total, chunksize)
    ]

    out: List[Optional[InstanceResult]] = [None] * total
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        futures = {pool.submit(_run_chunk, fn, start, chunk): len(chunk)
                   for start, chunk in chunks}
        done = 0
        try:
            for future in as_completed(futures):
                for result in future.result():
                    out[result.index] = result
                done += futures[future]
                if progress is not None:
                    progress(done, total)
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    assert all(r is not None for r in out)
    return out  # type: ignore[return-value]
