"""Chunked process-pool fan-out over experiment instances.

:func:`run_instances` applies a picklable function to every item of a
work list, either in-process (``jobs=1`` — zero overhead, exceptions
surface with their natural tracebacks) or across a
``ProcessPoolExecutor``.  Items are distributed in contiguous chunks to
amortise pickling, each application is timed in the worker, and results
always come back in *input order* regardless of completion order, so
callers never see scheduling nondeterminism.

Failures identify their item: any exception raised by ``fn`` is
annotated in flight with the index and ``repr`` of the failing instance
(``instance_index`` / ``instance_repr`` attributes plus an exception
note on Python >= 3.11) and still propagates with its original type.

When an :class:`~repro.obs.ObsLog` is passed, each worker records
per-chunk and per-instance spans into its own log and ships it back
inside the chunk's last :class:`InstanceResult`; the coordinating
process merges them, so a ``--jobs 8`` run yields one trace with a
lane per worker pid.

Callers can attach per-item span attributes via ``tags`` (one optional
dict per item) — the serve layer uses this to stamp each worker-side
``exec.instance`` span with the ``request_ids`` it is computing for,
so a service trace correlates pool work back to HTTP requests.  Tags
ride only in span args: they never reach ``fn`` and cannot change
results.
"""

from __future__ import annotations

import dataclasses
import math
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import ObsLog, live
from .shm import publish_array, reserve_names, take_array, unlink_segment

__all__ = ["InstanceResult", "run_instances", "run_instances_shm"]

ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class InstanceResult:
    """One work item's outcome.

    Attributes:
        index: position of the item in the input sequence.
        value: what the worker function returned.
        seconds: wall-clock time of the single ``fn(item)`` call,
            measured inside the worker process.
        obs: a worker-side :meth:`repro.obs.ObsLog.to_dict` payload
            carrying the chunk's spans (attached to the last result of
            each chunk under profiling, ``None`` otherwise).
    """

    index: int
    value: Any
    seconds: float
    obs: Optional[dict] = None


def _identify_failure(exc: BaseException, index: int, item: Any) -> None:
    """Annotate an in-flight worker exception with its failing item.

    The original exception type (and message) is preserved — callers
    keep catching what ``fn`` raises — but gains ``instance_index`` /
    ``instance_repr`` attributes and, on Python >= 3.11, a traceback
    note.  Both survive pickling across the pool boundary (they live in
    the exception's ``__dict__``).

    An exception that already carries ``instance_index`` keeps it: when
    an item is itself a *chunk* of instances, the worker annotates the
    precise failing instance before the pool sees the error, and the
    chunk-level index must not clobber that finer attribution.
    """
    if getattr(exc, "instance_index", None) is not None:
        return
    try:
        item_repr = repr(item)
    except Exception:  # repr() of a broken item must not mask the error
        item_repr = f"<unreprable {type(item).__name__}>"
    if len(item_repr) > 500:
        item_repr = item_repr[:497] + "..."
    try:
        exc.instance_index = index  # type: ignore[attr-defined]
        exc.instance_repr = item_repr  # type: ignore[attr-defined]
    except Exception:  # exceptions with __slots__ cannot carry attrs
        return
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(f"while evaluating instance {index}: {item_repr}")


#: Per-item span attributes: one optional small dict per work item.
ItemTags = Optional[Sequence[Optional[Dict[str, Any]]]]


def _check_tags(tags: ItemTags, total: int) -> None:
    if tags is not None and len(tags) != total:
        raise ValueError(f"tags length {len(tags)} != items {total}")


def _instance_attrs(index: int, tags: ItemTags,
                    offset: int) -> Dict[str, Any]:
    attrs: Dict[str, Any] = {"index": index}
    if tags is not None and tags[offset]:
        attrs.update(tags[offset])  # type: ignore[arg-type]
    return attrs


def _run_chunk(fn: Callable[[Any], Any], start: int,
               items: Sequence[Any],
               profile: bool = False,
               tags: ItemTags = None) -> List[InstanceResult]:
    """Worker-side body: apply ``fn`` to a contiguous chunk, timed."""
    log = ObsLog() if profile else None
    o = live(log)
    out: List[InstanceResult] = []
    with o.span("exec.chunk", category="exec",
                start=start, size=len(items)):
        for offset, item in enumerate(items):
            t0 = time.perf_counter()
            try:
                with o.span("exec.instance", category="exec",
                            **_instance_attrs(start + offset, tags,
                                              offset)):
                    value = fn(item)
            except BaseException as exc:
                _identify_failure(exc, start + offset, item)
                raise
            out.append(InstanceResult(start + offset, value,
                                      time.perf_counter() - t0))
    if log is not None and out:
        out[-1] = dataclasses.replace(out[-1], obs=log.to_dict())
    return out


def run_instances(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[ObsLog] = None,
    tags: ItemTags = None,
) -> List[InstanceResult]:
    """Apply ``fn`` to every item, possibly across worker processes.

    Args:
        fn: a picklable (module-level) single-argument callable.
        items: the work list; each element is passed to ``fn`` as-is.
        jobs: worker processes; ``1`` runs in-process with no pool.
        chunksize: items per pool task (default: ~4 chunks per worker).
        progress: called as ``progress(done, total)`` after each item
            (serial) or each completed chunk (parallel); ``done`` is
            strictly increasing and ends at ``total``.
        obs: optional :class:`~repro.obs.ObsLog`; records the fan-out
            span here plus per-chunk/per-instance worker spans (merged
            in as chunks complete).  Never changes results.
        tags: optional per-item span attributes (one small dict or
            ``None`` per item, same length as ``items``), merged into
            each item's ``exec.instance`` span args — request
            correlation for the serve layer.  Ignored when ``obs`` is
            ``None``; never passed to ``fn``.

    Returns:
        One :class:`InstanceResult` per item, in input order.

    Raises:
        Whatever ``fn`` raises — a worker exception aborts the run
        (fail-fast; pending chunks are cancelled) and propagates,
        annotated with the failing item's index and repr (see
        :func:`_identify_failure`).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    total = len(items)
    if total == 0:
        return []
    _check_tags(tags, total)
    o = live(obs)

    if jobs == 1:
        results = []
        with o.span("exec.run_instances", category="exec",
                    jobs=1, items=total):
            for i, item in enumerate(items):
                t0 = time.perf_counter()
                try:
                    with o.span("exec.instance", category="exec",
                                **_instance_attrs(i, tags, i)):
                        value = fn(item)
                except BaseException as exc:
                    _identify_failure(exc, i, item)
                    raise
                results.append(InstanceResult(i, value,
                                              time.perf_counter() - t0))
                if progress is not None:
                    progress(i + 1, total)
        o.count("exec.instances_run", total)
        return results

    if chunksize is None:
        chunksize = max(1, math.ceil(total / (jobs * 4)))
    chunks: List[Tuple[int, Sequence[Any]]] = [
        (start, items[start:start + chunksize])
        for start in range(0, total, chunksize)
    ]

    out: List[Optional[InstanceResult]] = [None] * total
    profile = obs is not None
    with o.span("exec.run_instances", category="exec",
                jobs=jobs, items=total, chunks=len(chunks)):
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(chunks))) as pool:
            futures = {pool.submit(
                _run_chunk, fn, start, chunk, profile,
                tags[start:start + len(chunk)] if tags is not None
                else None): len(chunk)
                       for start, chunk in chunks}
            done = 0
            try:
                for future in as_completed(futures):
                    for result in future.result():
                        if obs is not None and result.obs is not None:
                            obs.merge_dict(result.obs)
                        out[result.index] = result
                    done += futures[future]
                    if progress is not None:
                        progress(done, total)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
    o.count("exec.instances_run", total)
    o.count("exec.chunks_run", len(chunks))
    assert all(r is not None for r in out)
    return out  # type: ignore[return-value]


def _run_chunk_shm(fn: Callable[[Any], Any], start: int,
                   items: Sequence[Any], names: Sequence[str],
                   profile: bool = False,
                   tags: ItemTags = None) -> List[InstanceResult]:
    """Worker-side body of the shm transport: publish, return handles.

    ``fn`` must return an ndarray per item; each is published under the
    coordinator-reserved segment name for its slot, so the coordinator
    can sweep exactly these names whether or not this worker survives.
    """
    log = ObsLog() if profile else None
    o = live(log)
    out: List[InstanceResult] = []
    with o.span("exec.chunk", category="exec",
                start=start, size=len(items)):
        for offset, item in enumerate(items):
            t0 = time.perf_counter()
            try:
                with o.span("exec.instance", category="exec",
                            **_instance_attrs(start + offset, tags,
                                              offset)):
                    value = fn(item)
                handle = publish_array(np.ascontiguousarray(value),
                                       name=names[offset])
            except BaseException as exc:
                _identify_failure(exc, start + offset, item)
                raise
            out.append(InstanceResult(start + offset, handle,
                                      time.perf_counter() - t0))
    if log is not None and out:
        out[-1] = dataclasses.replace(out[-1], obs=log.to_dict())
    return out


def run_instances_shm(
    fn: Callable[[Any], "np.ndarray"],
    items: Sequence[Any],
    *,
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[ObsLog] = None,
    tags: ItemTags = None,
) -> List[InstanceResult]:
    """:func:`run_instances` for array-returning ``fn``, via shm blocks.

    Workers publish each result ndarray into a shared-memory segment
    and send back only the :class:`~repro.exec.shm.ShmHandle`; the
    coordinator materializes every array (byte-exact — the round-trip
    is a pair of memcpys, no pickle) and guarantees segment cleanup:
    segment names are reserved up front and swept in a ``finally``, so
    normal completion, a worker exception, and a killed worker all
    leave ``/dev/shm`` empty.

    With ``jobs=1`` there is no process boundary to cross, so ``fn``
    runs in-process and its arrays are returned directly — the serial
    path stays zero-overhead and trivially identical.

    Returns:
        One :class:`InstanceResult` per item in input order, ``value``
        being the materialized ndarray.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    total = len(items)
    if total == 0:
        return []
    _check_tags(tags, total)
    if jobs == 1:
        return run_instances(fn, items, jobs=1, progress=progress,
                             obs=obs, tags=tags)
    o = live(obs)

    if chunksize is None:
        chunksize = max(1, math.ceil(total / (jobs * 4)))
    names = reserve_names(total)
    chunks: List[Tuple[int, Sequence[Any]]] = [
        (start, items[start:start + chunksize])
        for start in range(0, total, chunksize)
    ]

    out: List[Optional[InstanceResult]] = [None] * total
    profile = obs is not None
    with o.span("exec.run_instances", category="exec",
                jobs=jobs, items=total, chunks=len(chunks), shm=True):
        try:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(chunks))) as pool:
                futures = {
                    pool.submit(_run_chunk_shm, fn, start, chunk,
                                names[start:start + len(chunk)],
                                profile,
                                tags[start:start + len(chunk)]
                                if tags is not None else None): len(chunk)
                    for start, chunk in chunks}
                done = 0
                try:
                    for future in as_completed(futures):
                        for result in future.result():
                            if obs is not None and result.obs is not None:
                                obs.merge_dict(result.obs)
                            value = take_array(result.value)
                            out[result.index] = dataclasses.replace(
                                result, value=value, obs=None)
                        done += futures[future]
                        if progress is not None:
                            progress(done, total)
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise
        finally:
            # The crash guarantee: whatever a worker published but the
            # loop above never consumed — because that worker raised,
            # was killed, or a sibling failed first — is removed here.
            for name in names:
                unlink_segment(name)
    o.count("exec.instances_run", total)
    o.count("exec.chunks_run", len(chunks))
    assert all(r is not None for r in out)
    return out  # type: ignore[return-value]
