"""Cache-aware parallel evaluation of paper-suite instances.

:func:`evaluate_suite_instances` is the bridge between the experiment
modules and the :mod:`cache <repro.exec.cache>`/:mod:`pool
<repro.exec.pool>` layers: look every instance up, fan the misses out
over the pool, store fresh summaries, and hand back restored
:class:`~repro.core.results.ScheduleResult` dicts in input order.

Misses travel in contiguous *chunks* by default: each chunk is one
:func:`repro.core.suite.paper_suite_batch` broadcast in the worker, and
its summaries come back as a dense ``(chunk, 6, 16)`` float64 block —
over :func:`repro.exec.pool.run_instances_shm` shared memory when
parallel.  Strict and profile campaigns (and ``batch=False``) use the
historical per-instance :func:`run_instances` path instead.  All modes
— serial, batched, parallel, shm, warm cache — pass through the same
summarize/restore round-trip and are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..audit.report import AuditLog
from ..core.platform import Platform, default_platform
from ..core.results import Heuristic, ScheduleResult
from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from .cache import ResultCache, instance_digest, restore_results, \
    summarize_results
from .pool import run_instances, run_instances_shm

__all__ = ["ExecOptions", "evaluate_suite_instances"]

#: One experiment instance: (scenario-scaled graph, deadline in cycles).
Instance = Tuple[TaskGraph, float]


@dataclass
class ExecOptions:
    """How an experiment campaign executes (not *what* it computes).

    Attributes:
        jobs: worker processes for the instance fan-out (1 = serial,
            in-process).
        cache_dir: root of the on-disk result cache; ``None`` disables
            caching entirely.
        use_cache: master switch — ``False`` ignores ``cache_dir``
            (the CLI's ``--no-cache``).
        progress: optional ``(done, total)`` callback forwarded to
            :func:`repro.exec.pool.run_instances`.
        strict: run every fresh instance under the
            :mod:`repro.audit` invariant checks.  A violation raises
            :class:`~repro.audit.report.AuditViolationError` in the
            worker; counters from all workers are merged into
            :meth:`open_audit`'s log.  Strict mode never changes the
            results or what is written to the cache.
        profile: record spans/counters/latencies into
            :meth:`open_obs`'s :class:`~repro.obs.ObsLog` — worker-side
            logs are merged in, so a ``--jobs 8`` campaign yields one
            coherent multi-process trace.  Like ``strict``, profiling
            never changes the results or the cache bytes.
        batch: evaluate cache misses in contiguous chunks through
            :func:`repro.core.suite.paper_suite_batch` — one broadcast
            ladder sweep per chunk instead of one
            :func:`~repro.core.suite.paper_suite` call per instance.
            Results (and cache bytes) are bitwise-identical either way;
            strict and profile campaigns fall back to the per-instance
            path automatically, because their per-instance audit
            counters and span nesting only exist there.
        shm: with ``jobs > 1``, ship chunk results back through
            :func:`repro.exec.pool.run_instances_shm` shared-memory
            segments instead of the pickle result queue.  Transport
            only — bytes are identical.  Ignored when serial or when
            the per-instance path is in effect.
        batch_chunk: instances per batched chunk (the unit of pool
            dispatch and of one :class:`~repro.core.batch.ScheduleBatch`
            broadcast).
        cache_max_bytes: size bound of the on-disk cache; when set, the
            cache evicts least-recently-used entries (and sweeps
            orphaned temp files) as it grows past the budget — the
            long-running-service mode.  ``None`` (the default) keeps
            the historical unbounded behaviour, byte-for-byte.
        live_obs: an externally-owned :class:`~repro.obs.ObsLog` (the
            serve app's, typically retention-bounded) that evaluation
            spans are recorded into *without* switching the execution
            path: unlike ``profile`` — which forces the per-instance
            path so suite-internal span nesting exists — ``live_obs``
            leaves batching/shm exactly as configured and captures the
            pool-level ``exec.chunk`` / ``exec.instance`` worker spans.
            ``None`` (campaigns) records nothing extra.
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    use_cache: bool = True
    progress: Optional[object] = None
    strict: bool = False
    profile: bool = False
    batch: bool = True
    shm: bool = True
    batch_chunk: int = 32
    cache_max_bytes: Optional[int] = None
    live_obs: Optional[ObsLog] = field(
        default=None, repr=False, compare=False)
    _cache: Optional[ResultCache] = field(
        default=None, init=False, repr=False, compare=False)
    _audit: Optional[AuditLog] = field(
        default=None, init=False, repr=False, compare=False)
    _obs: Optional[ObsLog] = field(
        default=None, init=False, repr=False, compare=False)
    #: Worker-measured wall seconds of every *fresh* (non-cached)
    #: instance across the campaign — the runner-summary satellite.
    instance_seconds: List[float] = field(
        default_factory=list, init=False, repr=False, compare=False)

    def open_cache(self) -> Optional[ResultCache]:
        """The shared :class:`ResultCache`, or ``None`` when disabled."""
        if not self.use_cache or self.cache_dir is None:
            return None
        if self._cache is None:
            self._cache = ResultCache(self.cache_dir,
                                      obs=self.open_obs() or self.live_obs,
                                      max_bytes=self.cache_max_bytes)
        return self._cache

    def open_audit(self) -> Optional[AuditLog]:
        """The campaign-wide :class:`AuditLog` (``None`` unless strict)."""
        if not self.strict:
            return None
        if self._audit is None:
            self._audit = AuditLog(strict=True)
        return self._audit

    def open_obs(self) -> Optional[ObsLog]:
        """The campaign-wide :class:`ObsLog` (``None`` unless profiling)."""
        if not self.profile:
            return None
        if self._obs is None:
            self._obs = ObsLog()
        return self._obs

    def timing_summary(self) -> Optional[str]:
        """One-line wall-time summary of the fresh instances, or ``None``.

        Surfaces the per-instance ``InstanceResult.seconds`` the pool
        already measures: e.g. ``instances: 36 fresh, 12.41 s total,
        0.345 s mean, 1.203 s max``.
        """
        times = self.instance_seconds
        if not times:
            return None
        total = sum(times)
        return (f"instances: {len(times)} fresh, {total:.2f} s total, "
                f"{total / len(times):.3f} s mean, {max(times):.3f} s max")


def _suite_worker(
        item: "Tuple[TaskGraph, float, Optional[Platform], str, bool, bool]",
) -> object:
    """Evaluate one instance; returns JSON-able summaries (picklable).

    In strict and/or profile mode the return value is wrapped as
    ``{"results": ..., "audit": counters, "obs": payload}`` (absent
    keys omitted) so the runner can merge worker-side audit counters
    and obs spans; the cacheable payload (the summaries) is identical
    either way — neither mode may change what lands on disk.
    """
    from ..core.plans import PlanCache
    from ..core.suite import paper_suite

    graph, deadline, platform, policy, strict, profile = item
    if not strict and not profile:
        # Per-instance plan cache: dies with this call, so graphs and
        # schedules are not pinned beyond the instance's evaluation.
        return summarize_results(
            paper_suite(graph, deadline, platform=platform, policy=policy,
                        plans=PlanCache()))
    log = AuditLog(strict=True) if strict else None
    obs = ObsLog() if profile else None
    summaries = summarize_results(
        paper_suite(graph, deadline, platform=platform, policy=policy,
                    audit=log, obs=obs))
    wrapped = {"results": summaries}
    if log is not None:
        wrapped["audit"] = log.counters()
    if obs is not None:
        wrapped["obs"] = obs.to_dict()
    return wrapped


# ----------------------------------------------------------------------
# Batched chunk evaluation
# ----------------------------------------------------------------------
#: Fixed row order of the (6, 16) per-instance summary array — the
#: paper's presentation order, which is also the iteration order of
#: :func:`~repro.exec.cache.summarize_results`.
_ROW_ORDER = (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
              Heuristic.LAMPS_PS, Heuristic.LIMIT_SF, Heuristic.LIMIT_MF)
#: Columns: busy, idle, sleep, overhead, n_shutdowns, has_point,
#: frequency, vdd, active_power, idle_power, energy_per_cycle, vbs,
#: n_processors, deadline_cycles, deadline_seconds, meets_deadline.
_N_COLS = 16


def _encode_summaries(summaries: List[dict]) -> "np.ndarray":
    """One instance's summary dicts as a dense (6, 16) float64 array.

    The array transport (:func:`repro.exec.pool.run_instances_shm`)
    carries homogeneous float64 blocks; this packs the exact
    :func:`~repro.exec.cache.summarize_results` payload into one.  Every
    value survives bit-exactly: the floats are float64 already, and the
    integer/boolean fields (shutdown counts, processor counts, the
    feasibility flag) are far below 2**53.
    """
    assert len(summaries) == len(_ROW_ORDER)
    arr = np.zeros((len(_ROW_ORDER), _N_COLS))
    for h, row, d in zip(_ROW_ORDER, arr, summaries):
        assert d["heuristic"] == h.value
        e = d["energy"]
        row[0:5] = (e["busy"], e["idle"], e["sleep"], e["overhead"],
                    e["n_shutdowns"])
        p = d["point"]
        if p is not None:
            row[5] = 1.0
            row[6:12] = (p["frequency"], p["vdd"], p["active_power"],
                         p["idle_power"], p["energy_per_cycle"], p["vbs"])
        # n_processors is None for the LIMIT bounds — NaN is its
        # sentinel (a real count is always a small non-NaN integer).
        row[12:16] = (np.nan if d["n_processors"] is None
                      else d["n_processors"],
                      d["deadline_cycles"], d["deadline_seconds"],
                      1.0 if d["meets_deadline"] else 0.0)
    return arr


def _decode_summaries(arr: "np.ndarray", graph_name: Optional[str]
                      ) -> List[dict]:
    """Inverse of :func:`_encode_summaries`.

    Rebuilds the exact :func:`~repro.exec.cache.summarize_results`
    dicts — including Python types: ``n_shutdowns`` and
    ``n_processors`` back to ``int``, ``meets_deadline`` back to
    ``bool`` — so the JSON the cache writes is byte-identical to the
    per-instance path's (``2`` and ``2.0`` are different JSON bytes).
    ``graph_name`` is reattached from the coordinator's own instance
    list; it never rides in the array.
    """
    out = []
    for h, row in zip(_ROW_ORDER, arr):
        point = None if row[5] == 0.0 else {
            "frequency": float(row[6]),
            "vdd": float(row[7]),
            "active_power": float(row[8]),
            "idle_power": float(row[9]),
            "energy_per_cycle": float(row[10]),
            "vbs": float(row[11]),
        }
        out.append({
            "heuristic": h.value,
            "graph_name": graph_name,
            "energy": {
                "busy": float(row[0]),
                "idle": float(row[1]),
                "sleep": float(row[2]),
                "overhead": float(row[3]),
                "n_shutdowns": int(row[4]),
            },
            "point": point,
            "n_processors": None if np.isnan(row[12]) else int(row[12]),
            "deadline_cycles": float(row[13]),
            "deadline_seconds": float(row[14]),
            "meets_deadline": bool(row[15]),
        })
    return out


def _suite_chunk_worker(
        item: "Tuple[int, Tuple[Instance, ...], Optional[Platform], str]",
) -> "np.ndarray":
    """Evaluate a contiguous chunk of instances in one batched sweep.

    Returns a ``(len(chunk), 6, 16)`` float64 array of encoded
    summaries — an ndarray so the shm transport applies.  ``start`` is
    the chunk's offset in the pending work list: a failing instance is
    annotated chunk-locally by :func:`paper_suite_batch` and rebased
    here to the global pending index, exactly what the per-instance
    path would have reported.
    """
    from ..core.suite import paper_suite_batch

    start, chunk, platform, policy = item
    try:
        results = paper_suite_batch(list(chunk), platform=platform,
                                    policy=policy)
    except BaseException as exc:
        local = getattr(exc, "instance_index", None)
        if local is not None:
            exc.instance_index = start + local  # type: ignore[attr-defined]
        raise
    if not results:
        # A zero-instance chunk (the server's empty-dispatch path, or a
        # fully-warm batch) must still round-trip the transport:
        # np.stack refuses an empty list, but a (0, 6, 16) block
        # publishes and takes fine.
        return np.zeros((0, len(_ROW_ORDER), _N_COLS))
    return np.stack([_encode_summaries(summarize_results(r))
                     for r in results])


def evaluate_suite_instances(
    instances: Sequence[Instance],
    *,
    platform: Optional[Platform] = None,
    policy: str = "edf",
    options: Optional[ExecOptions] = None,
    request_ids: Optional[Sequence[Optional[Sequence[str]]]] = None,
) -> List[Dict[Heuristic, ScheduleResult]]:
    """Run :func:`paper_suite` on every instance, cached and in parallel.

    Args:
        instances: ``(graph, deadline_cycles)`` pairs; graphs must
            already be scenario-scaled.
        platform: shared platform (default: the paper's 70 nm one).
        policy: list-scheduling priority; only named (string) policies
            are cacheable — callables silently bypass the cache.
        options: execution knobs; default is serial and uncached,
            which reproduces the historical behaviour exactly.
        request_ids: optional request correlation, one entry per
            instance: the originating serve-layer request ids (several
            when dedupe coalesced identical requests).  They become
            span attributes on the worker-side ``exec.chunk`` /
            ``exec.instance`` spans when an obs log is live
            (``profile`` or ``options.live_obs``); they never affect
            evaluation or the cache.

    Returns:
        One heuristic→result dict per instance, in input order.  The
        results carry ``schedule=None`` (summaries only — see
        :mod:`repro.exec.cache`).
    """
    platform = platform or default_platform()
    options = options or ExecOptions()
    if (request_ids is not None
            and len(request_ids) != len(instances)):
        raise ValueError(
            f"request_ids length {len(request_ids)} != instances "
            f"{len(instances)}")
    cache = options.open_cache() if isinstance(policy, str) else None
    audit = options.open_audit()
    obs = options.open_obs()
    # The profile log switches the execution path (per-instance, so
    # suite-internal nesting exists); the serve app's live_obs must
    # not — it only *receives* the spans the configured path records.
    pool_obs = obs if obs is not None else options.live_obs
    o = live(pool_obs)

    results: List[Optional[Dict[Heuristic, ScheduleResult]]] = \
        [None] * len(instances)
    keys: List[Optional[str]] = [None] * len(instances)
    pending: List[int] = []
    with o.span("exec.cache_lookup", category="exec",
                instances=len(instances), cached=cache is not None):
        for i, (graph, deadline) in enumerate(instances):
            if cache is not None:
                keys[i] = instance_digest(graph, deadline, platform,
                                          policy)
                payload = cache.get(keys[i])
                if payload is not None:
                    results[i] = restore_results(payload)
                    if audit is not None:
                        # Summaries carry no schedule, so there is
                        # nothing to re-validate — count the restore
                        # instead.
                        audit.cache_hits += 1
                    continue
            pending.append(i)

    use_batch = options.batch and audit is None and obs is None
    if not use_batch:
        # Per-instance path: the default for strict/profile campaigns
        # (their audit counters and span nesting are per-instance) and
        # the --no-batch escape hatch.  Byte-identical to the batched
        # path below.
        work = [(instances[i][0], instances[i][1], platform, policy,
                 audit is not None, obs is not None)
                for i in pending]
        tags: Optional[List[Optional[Dict[str, Any]]]] = None
        if request_ids is not None:
            tags = [{"request_ids": list(request_ids[i] or ())}
                    if request_ids[i] else None for i in pending]
        wrapped = audit is not None or obs is not None
        for item in run_instances(_suite_worker, work, jobs=options.jobs,
                                  progress=options.progress, obs=pool_obs,
                                  tags=tags):
            i = pending[item.index]
            payload = item.value
            if wrapped:
                if audit is not None:
                    audit.merge(payload["audit"])
                if obs is not None and "obs" in payload:
                    obs.merge_dict(payload["obs"])
                payload = payload["results"]
            options.instance_seconds.append(item.seconds)
            if cache is not None:
                cache.put(keys[i], payload)
            results[i] = restore_results(payload)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # Batched path: contiguous chunks of pending instances, each
    # evaluated by one paper_suite_batch broadcast in a worker, results
    # shipped back as dense float64 blocks (shared memory when
    # parallel) and decoded here into the exact summary payloads.
    chunksize = max(1, options.batch_chunk)
    total = len(pending)
    chunk_items: List[Tuple[int, Tuple[Instance, ...],
                            Optional[Platform], str]] = [
        (start,
         tuple(instances[i] for i in pending[start:start + chunksize]),
         platform, policy)
        for start in range(0, total, chunksize)
    ]

    progress = options.progress
    chunk_progress = None
    if progress is not None:
        def chunk_progress(done: int, _total_chunks: int) -> None:
            # The pool counts completed chunk-items; report instances.
            progress(min(done * chunksize, total), total)

    chunk_tags: Optional[List[Optional[Dict[str, Any]]]] = None
    if request_ids is not None:
        chunk_tags = []
        for start in range(0, total, chunksize):
            rids: List[str] = []
            for i in pending[start:start + chunksize]:
                if request_ids[i]:
                    rids.extend(request_ids[i])
            chunk_tags.append({"request_ids": rids} if rids else None)

    fan_out = run_instances_shm if options.shm else run_instances
    for item in fan_out(_suite_chunk_worker, chunk_items,
                        jobs=options.jobs, chunksize=1,
                        progress=chunk_progress, obs=pool_obs,
                        tags=chunk_tags):
        start = chunk_items[item.index][0]
        block = item.value
        k = block.shape[0]
        mean_seconds = item.seconds / k
        for local in range(k):
            i = pending[start + local]
            payload = _decode_summaries(block[local],
                                        instances[i][0].name)
            options.instance_seconds.append(mean_seconds)
            if cache is not None:
                cache.put(keys[i], payload)
            results[i] = restore_results(payload)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
