"""Cache-aware parallel evaluation of paper-suite instances.

:func:`evaluate_suite_instances` is the bridge between the experiment
modules and the :mod:`cache <repro.exec.cache>`/:mod:`pool
<repro.exec.pool>` layers: look every instance up, fan the misses out
over :func:`run_instances`, store fresh summaries, and hand back
restored :class:`~repro.core.results.ScheduleResult` dicts in input
order.  Both cached and fresh results pass through the same
summarize/restore round-trip, so the three execution modes (serial,
parallel, warm cache) are observably identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.platform import Platform, default_platform
from ..core.results import Heuristic, ScheduleResult
from ..graphs.dag import TaskGraph
from .cache import ResultCache, instance_digest, restore_results, \
    summarize_results
from .pool import run_instances

__all__ = ["ExecOptions", "evaluate_suite_instances"]

#: One experiment instance: (scenario-scaled graph, deadline in cycles).
Instance = Tuple[TaskGraph, float]


@dataclass
class ExecOptions:
    """How an experiment campaign executes (not *what* it computes).

    Attributes:
        jobs: worker processes for the instance fan-out (1 = serial,
            in-process).
        cache_dir: root of the on-disk result cache; ``None`` disables
            caching entirely.
        use_cache: master switch — ``False`` ignores ``cache_dir``
            (the CLI's ``--no-cache``).
        progress: optional ``(done, total)`` callback forwarded to
            :func:`repro.exec.pool.run_instances`.
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    use_cache: bool = True
    progress: Optional[object] = None
    _cache: Optional[ResultCache] = field(
        default=None, init=False, repr=False, compare=False)

    def open_cache(self) -> Optional[ResultCache]:
        """The shared :class:`ResultCache`, or ``None`` when disabled."""
        if not self.use_cache or self.cache_dir is None:
            return None
        if self._cache is None:
            self._cache = ResultCache(self.cache_dir)
        return self._cache


def _suite_worker(item) -> List[dict]:
    """Evaluate one instance; returns JSON-able summaries (picklable)."""
    from ..core.suite import paper_suite

    graph, deadline, platform, policy = item
    return summarize_results(
        paper_suite(graph, deadline, platform=platform, policy=policy))


def evaluate_suite_instances(
    instances: Sequence[Instance],
    *,
    platform: Optional[Platform] = None,
    policy: str = "edf",
    options: Optional[ExecOptions] = None,
) -> List[Dict[Heuristic, ScheduleResult]]:
    """Run :func:`paper_suite` on every instance, cached and in parallel.

    Args:
        instances: ``(graph, deadline_cycles)`` pairs; graphs must
            already be scenario-scaled.
        platform: shared platform (default: the paper's 70 nm one).
        policy: list-scheduling priority; only named (string) policies
            are cacheable — callables silently bypass the cache.
        options: execution knobs; default is serial and uncached,
            which reproduces the historical behaviour exactly.

    Returns:
        One heuristic→result dict per instance, in input order.  The
        results carry ``schedule=None`` (summaries only — see
        :mod:`repro.exec.cache`).
    """
    platform = platform or default_platform()
    options = options or ExecOptions()
    cache = options.open_cache() if isinstance(policy, str) else None

    results: List[Optional[Dict[Heuristic, ScheduleResult]]] = \
        [None] * len(instances)
    keys: List[Optional[str]] = [None] * len(instances)
    pending: List[int] = []
    for i, (graph, deadline) in enumerate(instances):
        if cache is not None:
            keys[i] = instance_digest(graph, deadline, platform, policy)
            payload = cache.get(keys[i])
            if payload is not None:
                results[i] = restore_results(payload)
                continue
        pending.append(i)

    work = [(instances[i][0], instances[i][1], platform, policy)
            for i in pending]
    for item in run_instances(_suite_worker, work, jobs=options.jobs,
                              progress=options.progress):
        i = pending[item.index]
        if cache is not None:
            cache.put(keys[i], item.value)
        results[i] = restore_results(item.value)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
