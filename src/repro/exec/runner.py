"""Cache-aware parallel evaluation of paper-suite instances.

:func:`evaluate_suite_instances` is the bridge between the experiment
modules and the :mod:`cache <repro.exec.cache>`/:mod:`pool
<repro.exec.pool>` layers: look every instance up, fan the misses out
over :func:`run_instances`, store fresh summaries, and hand back
restored :class:`~repro.core.results.ScheduleResult` dicts in input
order.  Both cached and fresh results pass through the same
summarize/restore round-trip, so the three execution modes (serial,
parallel, warm cache) are observably identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..audit.report import AuditLog
from ..core.platform import Platform, default_platform
from ..core.results import Heuristic, ScheduleResult
from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from .cache import ResultCache, instance_digest, restore_results, \
    summarize_results
from .pool import run_instances

__all__ = ["ExecOptions", "evaluate_suite_instances"]

#: One experiment instance: (scenario-scaled graph, deadline in cycles).
Instance = Tuple[TaskGraph, float]


@dataclass
class ExecOptions:
    """How an experiment campaign executes (not *what* it computes).

    Attributes:
        jobs: worker processes for the instance fan-out (1 = serial,
            in-process).
        cache_dir: root of the on-disk result cache; ``None`` disables
            caching entirely.
        use_cache: master switch — ``False`` ignores ``cache_dir``
            (the CLI's ``--no-cache``).
        progress: optional ``(done, total)`` callback forwarded to
            :func:`repro.exec.pool.run_instances`.
        strict: run every fresh instance under the
            :mod:`repro.audit` invariant checks.  A violation raises
            :class:`~repro.audit.report.AuditViolationError` in the
            worker; counters from all workers are merged into
            :meth:`open_audit`'s log.  Strict mode never changes the
            results or what is written to the cache.
        profile: record spans/counters/latencies into
            :meth:`open_obs`'s :class:`~repro.obs.ObsLog` — worker-side
            logs are merged in, so a ``--jobs 8`` campaign yields one
            coherent multi-process trace.  Like ``strict``, profiling
            never changes the results or the cache bytes.
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    use_cache: bool = True
    progress: Optional[object] = None
    strict: bool = False
    profile: bool = False
    _cache: Optional[ResultCache] = field(
        default=None, init=False, repr=False, compare=False)
    _audit: Optional[AuditLog] = field(
        default=None, init=False, repr=False, compare=False)
    _obs: Optional[ObsLog] = field(
        default=None, init=False, repr=False, compare=False)
    #: Worker-measured wall seconds of every *fresh* (non-cached)
    #: instance across the campaign — the runner-summary satellite.
    instance_seconds: List[float] = field(
        default_factory=list, init=False, repr=False, compare=False)

    def open_cache(self) -> Optional[ResultCache]:
        """The shared :class:`ResultCache`, or ``None`` when disabled."""
        if not self.use_cache or self.cache_dir is None:
            return None
        if self._cache is None:
            self._cache = ResultCache(self.cache_dir, obs=self.open_obs())
        return self._cache

    def open_audit(self) -> Optional[AuditLog]:
        """The campaign-wide :class:`AuditLog` (``None`` unless strict)."""
        if not self.strict:
            return None
        if self._audit is None:
            self._audit = AuditLog(strict=True)
        return self._audit

    def open_obs(self) -> Optional[ObsLog]:
        """The campaign-wide :class:`ObsLog` (``None`` unless profiling)."""
        if not self.profile:
            return None
        if self._obs is None:
            self._obs = ObsLog()
        return self._obs

    def timing_summary(self) -> Optional[str]:
        """One-line wall-time summary of the fresh instances, or ``None``.

        Surfaces the per-instance ``InstanceResult.seconds`` the pool
        already measures: e.g. ``instances: 36 fresh, 12.41 s total,
        0.345 s mean, 1.203 s max``.
        """
        times = self.instance_seconds
        if not times:
            return None
        total = sum(times)
        return (f"instances: {len(times)} fresh, {total:.2f} s total, "
                f"{total / len(times):.3f} s mean, {max(times):.3f} s max")


def _suite_worker(
        item: "Tuple[TaskGraph, float, Optional[Platform], str, bool, bool]",
) -> object:
    """Evaluate one instance; returns JSON-able summaries (picklable).

    In strict and/or profile mode the return value is wrapped as
    ``{"results": ..., "audit": counters, "obs": payload}`` (absent
    keys omitted) so the runner can merge worker-side audit counters
    and obs spans; the cacheable payload (the summaries) is identical
    either way — neither mode may change what lands on disk.
    """
    from ..core.suite import paper_suite

    graph, deadline, platform, policy, strict, profile = item
    if not strict and not profile:
        return summarize_results(
            paper_suite(graph, deadline, platform=platform, policy=policy))
    log = AuditLog(strict=True) if strict else None
    obs = ObsLog() if profile else None
    summaries = summarize_results(
        paper_suite(graph, deadline, platform=platform, policy=policy,
                    audit=log, obs=obs))
    wrapped = {"results": summaries}
    if log is not None:
        wrapped["audit"] = log.counters()
    if obs is not None:
        wrapped["obs"] = obs.to_dict()
    return wrapped


def evaluate_suite_instances(
    instances: Sequence[Instance],
    *,
    platform: Optional[Platform] = None,
    policy: str = "edf",
    options: Optional[ExecOptions] = None,
) -> List[Dict[Heuristic, ScheduleResult]]:
    """Run :func:`paper_suite` on every instance, cached and in parallel.

    Args:
        instances: ``(graph, deadline_cycles)`` pairs; graphs must
            already be scenario-scaled.
        platform: shared platform (default: the paper's 70 nm one).
        policy: list-scheduling priority; only named (string) policies
            are cacheable — callables silently bypass the cache.
        options: execution knobs; default is serial and uncached,
            which reproduces the historical behaviour exactly.

    Returns:
        One heuristic→result dict per instance, in input order.  The
        results carry ``schedule=None`` (summaries only — see
        :mod:`repro.exec.cache`).
    """
    platform = platform or default_platform()
    options = options or ExecOptions()
    cache = options.open_cache() if isinstance(policy, str) else None
    audit = options.open_audit()
    obs = options.open_obs()
    o = live(obs)

    results: List[Optional[Dict[Heuristic, ScheduleResult]]] = \
        [None] * len(instances)
    keys: List[Optional[str]] = [None] * len(instances)
    pending: List[int] = []
    with o.span("exec.cache_lookup", category="exec",
                instances=len(instances), cached=cache is not None):
        for i, (graph, deadline) in enumerate(instances):
            if cache is not None:
                keys[i] = instance_digest(graph, deadline, platform,
                                          policy)
                payload = cache.get(keys[i])
                if payload is not None:
                    results[i] = restore_results(payload)
                    if audit is not None:
                        # Summaries carry no schedule, so there is
                        # nothing to re-validate — count the restore
                        # instead.
                        audit.cache_hits += 1
                    continue
            pending.append(i)

    work = [(instances[i][0], instances[i][1], platform, policy,
             audit is not None, obs is not None)
            for i in pending]
    wrapped = audit is not None or obs is not None
    for item in run_instances(_suite_worker, work, jobs=options.jobs,
                              progress=options.progress, obs=obs):
        i = pending[item.index]
        payload = item.value
        if wrapped:
            if audit is not None:
                audit.merge(payload["audit"])
            if obs is not None and "obs" in payload:
                obs.merge_dict(payload["obs"])
            payload = payload["results"]
        options.instance_seconds.append(item.seconds)
        if cache is not None:
            cache.put(keys[i], payload)
        results[i] = restore_results(payload)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
