"""Zero-copy numpy transport over ``multiprocessing.shared_memory``.

The pool's chunk workers historically returned their payloads by
pickling them through the ``ProcessPoolExecutor`` result queue.  For
array payloads that is two full copies plus pickle framing; this module
lets a worker *publish* an ndarray into a named shared-memory segment
and return only a tiny :class:`ShmHandle`, which the coordinating
process *takes* — copy out, close, unlink — on receipt.

Lifecycle discipline (asserted by ``tests/exec/test_shm_lifecycle.py``):

* every segment is unlinked exactly once, by the coordinating process —
  on the happy path inside :func:`take_array`, otherwise by the
  caller's cleanup sweep over its *reserved* names;
* the coordinator reserves segment names up front
  (:func:`reserve_names`) and passes them to workers, so even a
  SIGKILLed worker leaves nothing behind: the sweep
  (:func:`unlink_segment` per reserved name) runs in a ``finally`` and
  removes whatever the worker managed to create;
* name reservations use ``os.getpid`` plus ``secrets`` tokens — they
  never feed results, reports, or cache keys, so determinism rules do
  not apply to them.

Worker-side ``publish_array`` closes its mapping immediately after the
copy; with the default fork start method both processes talk to the
same ``resource_tracker``, so the worker's create-registration is
cancelled by the coordinator's unlink and no leak warnings are emitted.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["ShmHandle", "publish_array", "take_array", "reserve_names",
           "unlink_segment", "segment_exists"]


@dataclass(frozen=True)
class ShmHandle:
    """A published array: segment name plus the ndarray metadata.

    Attributes:
        name: shared-memory segment name (no leading slash).
        shape: array shape.
        dtype: numpy dtype string, e.g. ``"float64"``.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


def reserve_names(count: int, *, tag: str = "c") -> List[str]:
    """``count`` fresh segment names the caller owns and must sweep.

    Names are short enough for every platform's shm name limit and
    collision-safe across processes (pid + 8 random hex chars); the
    caller passes them to workers and, in a ``finally``, calls
    :func:`unlink_segment` on each — that pair is what guarantees
    cleanup after a worker crash.
    """
    # Start the resource tracker *now*, before any worker forks: the
    # children then inherit the live tracker, so their create
    # registrations land in the same cache this process's unlinks
    # clear.  If the first shm use happened inside a forked worker
    # instead, each worker would lazily spawn its own tracker, whose
    # registrations nobody cancels — spurious "leaked shared_memory
    # objects" warnings at shutdown.
    resource_tracker.ensure_running()
    token = secrets.token_hex(4)
    return [f"rp{os.getpid():x}{tag}{token}i{i:x}" for i in range(count)]


def publish_array(arr: np.ndarray, *, name: Optional[str] = None
                  ) -> ShmHandle:
    """Copy ``arr`` into a shared segment; return its handle.

    Worker side of the transport.  The mapping is closed before
    returning — the worker keeps no reference — and the segment lives
    until the coordinator takes or sweeps it.  ``name=None`` creates an
    anonymous (kernel-named) segment for callers managing their own
    cleanup.

    Zero-size arrays (an empty campaign chunk, a fully-warm batch) are
    legal: the OS refuses 0-byte segments, so the segment is padded to
    one byte while the handle records the true shape — the pad never
    reaches :func:`take_array`'s reconstruction, which trusts the
    handle's metadata, not the segment size.
    """
    seg = shared_memory.SharedMemory(
        create=True, size=max(1, arr.nbytes), name=name)
    try:
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
    except BaseException:
        # A failed copy must not strand a kernel-named segment: close
        # the mapping AND unlink the name before re-raising.
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        raise
    seg.close()
    return ShmHandle(name=seg.name, shape=tuple(arr.shape),
                     dtype=str(arr.dtype))


def take_array(handle: ShmHandle) -> np.ndarray:
    """Materialize a published array and release its segment.

    Coordinator side: attach, copy out, close, unlink.  After this the
    segment is gone; taking a handle twice raises ``FileNotFoundError``
    like any stale name.
    """
    seg = shared_memory.SharedMemory(name=handle.name)
    try:
        if 0 in handle.shape:
            # The segment is a 1-byte pad (see publish_array); rebuild
            # the empty array from the handle metadata alone rather
            # than viewing a buffer the array doesn't actually use.
            out = np.empty(handle.shape, dtype=np.dtype(handle.dtype))
        else:
            view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                              buffer=seg.buf)
            out = view.copy()
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # swept concurrently — already gone
            pass
    return out


def unlink_segment(name: str) -> bool:
    """Best-effort removal of a (possibly absent) segment.

    The cleanup sweep: returns ``True`` if a segment existed and was
    unlinked, ``False`` if there was nothing to remove.  Never raises
    for missing names, so sweeping every reserved name is always safe.
    """
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:
        return False
    return True


def segment_exists(name: str) -> bool:
    """Whether a segment with ``name`` currently exists (test helper)."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True
