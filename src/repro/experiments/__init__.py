"""Experiment harness: one module per table/figure of the paper.

Run everything from the command line::

    python -m repro.experiments            # quick pass
    python -m repro.experiments --full     # paper-scale group sizes
    python -m repro.experiments fig10 table3

or call the ``run()`` function of an individual experiment module.
"""

from . import (
    ext_abb,
    ext_comm,
    ext_hetero,
    ext_multifreq,
    ext_runtime,
    ext_technology,
    fig02_power_curves,
    fig03_breakeven,
    fig04_07_example,
    fig06_energy_vs_n,
    fig10_11_relative_energy,
    fig12_13_parallelism,
    headline,
    scorecard,
    table2_benchmarks,
    table3_mpeg,
)
from .registry import (
    COARSE,
    DEADLINE_FACTORS,
    FINE,
    GROUP_SIZES,
    Scenario,
    benchmark_suite,
)
from .reporting import Report

__all__ = [
    "Report", "Scenario", "COARSE", "FINE",
    "DEADLINE_FACTORS", "GROUP_SIZES", "benchmark_suite",
    "fig02_power_curves", "fig03_breakeven", "fig04_07_example",
    "fig06_energy_vs_n", "fig10_11_relative_energy",
    "fig12_13_parallelism", "table2_benchmarks", "table3_mpeg",
    "headline", "ext_multifreq", "ext_abb", "ext_runtime", "ext_comm",
    "ext_technology", "ext_hetero", "scorecard",
]
