"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.experiments                # everything, quick sizes
    python -m repro.experiments fig2 table3    # a subset
    python -m repro.experiments --full         # larger benchmark groups
    python -m repro.experiments --full --jobs 8 --cache-dir ~/.cache/repro
    python -m repro.experiments --out report.txt
    python -m repro.experiments fig10 --jobs 4 --profile=trace.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from ..exec import ExecOptions
from ..obs import format_log_stats, live, write_chrome_trace, \
    write_metrics_jsonl
from . import (
    ext_abb,
    ext_comm,
    ext_hetero,
    ext_multifreq,
    ext_runtime,
    ext_technology,
    fig02_power_curves,
    fig03_breakeven,
    fig04_07_example,
    fig06_energy_vs_n,
    fig10_11_relative_energy,
    fig12_13_parallelism,
    headline,
    scorecard,
    table2_benchmarks,
    table3_mpeg,
)
from .registry import COARSE, FINE
from .reporting import cache_stats_line

__all__ = ["main"]


def _experiments(full: bool, exec_options: ExecOptions
                 ) -> Dict[str, Callable[[], object]]:
    gpg = 20 if full else 5
    sizes_small = None if full else (50, 100, 500, 1000, 2000)
    ex = exec_options
    return {
        "fig2": lambda: fig02_power_curves.run(),
        "fig3": lambda: fig03_breakeven.run(),
        "fig4": lambda: fig04_07_example.run(),
        "fig6": lambda: fig06_energy_vs_n.run(),
        "table2": lambda: table2_benchmarks.run(graphs_per_group=gpg,
                                                exec_options=ex),
        "fig10": lambda: fig10_11_relative_energy.run(
            scenario=COARSE, graphs_per_group=gpg, sizes=sizes_small,
            exec_options=ex),
        "fig11": lambda: fig10_11_relative_energy.run(
            scenario=FINE, graphs_per_group=gpg, sizes=sizes_small,
            exec_options=ex),
        "fig12": lambda: fig12_13_parallelism.run(
            scenario=COARSE, graphs_per_size=20 if full else 10,
            exec_options=ex),
        "fig13": lambda: fig12_13_parallelism.run(
            scenario=FINE, graphs_per_size=20 if full else 10,
            exec_options=ex),
        "table3": lambda: table3_mpeg.run(exec_options=ex),
        "headline": lambda: headline.run(
            graphs_per_group=8 if full else 4),
        "ext-multifreq": lambda: ext_multifreq.run(
            graphs_per_group=6 if full else 3),
        "ext-abb": lambda: ext_abb.run(
            graphs_per_group=6 if full else 3),
        "ext-runtime": lambda: ext_runtime.run(
            graphs_per_group=6 if full else 3),
        "ext-comm": lambda: ext_comm.run(
            graphs_per_group=6 if full else 3),
        "ext-technology": lambda: ext_technology.run(
            graphs_per_group=6 if full else 3),
        "ext-hetero": lambda: ext_hetero.run(
            graphs_per_group=6 if full else 3),
        "scorecard": lambda: scorecard.run(),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all); "
                             "e.g. fig2 fig10 table3")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale benchmark groups (slower)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the instance fan-out "
                             "(default: 1, serial)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        default=os.environ.get("REPRO_CACHE_DIR"),
                        help="content-addressed result cache directory "
                             "(default: $REPRO_CACHE_DIR, else no cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore any configured cache directory")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="N",
                        help="bound the cache directory to N bytes: "
                             "least-recently-used entries are evicted "
                             "and orphaned temp files swept as it "
                             "grows (default: unbounded)")
    parser.add_argument("--no-batch", action="store_true",
                        help="evaluate instances one at a time instead "
                             "of in chunked broadcast sweeps (results "
                             "are byte-identical either way; --strict "
                             "and --profile imply this)")
    parser.add_argument("--no-shm", action="store_true",
                        help="ship worker results through the pickle "
                             "queue instead of shared-memory segments "
                             "(transport only; relevant with --jobs>1)")
    parser.add_argument("--strict", action="store_true",
                        help="run the repro.audit invariant checks on "
                             "every fresh instance (identical results, "
                             "fails loudly on any violation)")
    parser.add_argument("--profile", nargs="?", const="repro-trace.json",
                        default=None, metavar="PATH",
                        help="record spans/counters across the "
                             "scheduler, search loops and exec fan-out; "
                             "writes a Chrome-trace/Perfetto JSON to "
                             "PATH (default: repro-trace.json) plus a "
                             "<PATH>.metrics.jsonl dump, and prints a "
                             "self-time table to stderr.  Results are "
                             "byte-identical with and without it.")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the report to FILE")
    parser.add_argument("--json-dir", metavar="DIR",
                        help="also write per-experiment JSON data files")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    exec_options = ExecOptions(jobs=args.jobs, cache_dir=args.cache_dir,
                               use_cache=not args.no_cache,
                               strict=args.strict,
                               profile=args.profile is not None,
                               batch=not args.no_batch,
                               shm=not args.no_shm,
                               cache_max_bytes=args.cache_max_bytes)
    registry = _experiments(args.full, exec_options)
    chosen = args.experiments or list(registry)
    unknown = [e for e in chosen if e not in registry]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; "
                     f"choose from {list(registry)}")

    if args.json_dir:
        from pathlib import Path

        Path(args.json_dir).mkdir(parents=True, exist_ok=True)

    obs = exec_options.open_obs()
    o = live(obs)
    blocks = []
    for exp_id in chosen:
        t0 = time.time()
        with o.span(f"experiment:{exp_id}", category="experiment"):
            report = registry[exp_id]()
        elapsed = time.time() - t0
        blocks.append(str(report) + f"[{exp_id} completed in {elapsed:.1f}s]\n")
        print(blocks[-1])
        if args.json_dir:
            from pathlib import Path

            report.save_json(Path(args.json_dir) / f"{exp_id}.json")
    cache = exec_options.open_cache()
    if cache is not None and cache.stats.lookups:
        # stderr, so --out/stdout report text is identical with and
        # without caching (the JSON data already is, by construction).
        print(cache_stats_line(cache.stats), file=sys.stderr)
    timing = exec_options.timing_summary()
    if timing is not None:
        # stderr alongside the cache-stats line: the per-instance wall
        # times the pool measures, finally reported.
        print(timing, file=sys.stderr)
    audit = exec_options.open_audit()
    if audit is not None:
        # stderr for the same reason: strict mode must not perturb the
        # report text.
        print(audit.summary_line(), file=sys.stderr)
    if obs is not None:
        # Profiling output is stderr + side files only — the report
        # text and JSON stay byte-identical under --profile.
        trace_path = write_chrome_trace(obs, args.profile)
        metrics_path = write_metrics_jsonl(
            obs, trace_path.with_name(trace_path.name + ".metrics.jsonl"))
        print(format_log_stats(obs), file=sys.stderr)
        print(obs.summary_line(), file=sys.stderr)
        print(f"trace written to {trace_path} (open in "
              f"https://ui.perfetto.dev); metrics in {metrics_path}",
              file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n".join(blocks))
        print(f"report written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
