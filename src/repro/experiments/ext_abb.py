"""Extension experiment: combined DVS + adaptive body biasing.

The paper's related work (Section 2) points at DVS+ABB as the next
lever: re-optimising the body bias at each supply step trades leakage
against speed.  This experiment swaps the fixed-bias ladder for
:class:`repro.power.bodybias.ABBLadder` and reruns LAMPS+PS, keeping
the *wall-clock* deadline identical across platforms (the ladders have
different maximum frequencies, so cycle-denominated deadlines must be
converted per platform).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.lamps import lamps_search
from ..core.platform import Platform, default_platform
from ..graphs.analysis import critical_path_length
from ..graphs.generators import stg_group
from ..power.bodybias import ABBLadder
from ..power.shutdown import SleepModel
from ..util.tables import render_table
from .reporting import Report

__all__ = ["run"]


def run(*, sizes: Sequence[int] = (50, 100),
        graphs_per_group: int = 4,
        deadline_factors: Sequence[float] = (1.5, 4.0),
        scale: float = 3.1e6, seed: int = 2006,
        base_platform: Optional[Platform] = None) -> Report:
    fixed = base_platform or default_platform()
    abb = Platform(ladder=ABBLadder(fixed.technology),
                   sleep=fixed.sleep if isinstance(fixed.sleep, SleepModel)
                   else SleepModel())

    rows = []
    savings = {f: [] for f in deadline_factors}
    infeasible = 0
    for n in sizes:
        for unit_graph in stg_group(n, graphs_per_group, seed=seed):
            g = unit_graph.scaled(scale)
            cpl = critical_path_length(g)
            for factor in deadline_factors:
                deadline_fixed = factor * cpl
                seconds = fixed.seconds(deadline_fixed)
                # Same wall-clock deadline on the ABB platform.
                deadline_abb = abb.reference_cycles(seconds)
                r_fixed = lamps_search(g, deadline_fixed,
                                       platform=fixed, shutdown=True)
                try:
                    r_abb = lamps_search(g, deadline_abb,
                                         platform=abb, shutdown=True)
                except Exception:
                    infeasible += 1
                    rows.append((g.name, factor,
                                 f"{r_fixed.total_energy:.4f}",
                                 "infeasible", "-", "-"))
                    continue
                saving = 1.0 - r_abb.total_energy / r_fixed.total_energy
                savings[factor].append(saving)
                rows.append((g.name, factor,
                             f"{r_fixed.total_energy:.4f}",
                             f"{r_abb.total_energy:.4f}",
                             f"{r_abb.point.vbs:+.2f}",
                             f"{100 * saving:.1f}%"))
    table = render_table(
        ["graph", "deadline xCPL", "fixed bias [J]", "DVS+ABB [J]",
         "chosen Vbs", "saving"],
        rows, title="LAMPS+PS: fixed Vbs = -0.7 V vs adaptive body bias")
    means = {f: float(np.mean(v)) if v else float("nan")
             for f, v in savings.items()}
    summary = "; ".join(f"{f} x CPL: mean saving "
                        f"{100 * m:.1f}%" for f, m in means.items())
    if infeasible:
        summary += (f"  ({infeasible} instances infeasible on the ABB "
                    f"ladder: its peak frequency is lower)")
    return Report(
        experiment="ext-abb",
        title="Extension: combined DVS + adaptive body biasing",
        text=f"{table}\n\n{summary}",
        data={"mean_savings": means, "infeasible": infeasible,
              "abb_fmax": abb.fmax, "fixed_fmax": fixed.fmax},
    )
