"""Extension experiment: communication-aware leakage-aware scheduling.

The paper assumes free shared-memory communication (Section 3.1) and
cites communication-aware scheduling as adjacent work.  This experiment
adds uniform per-edge transfer costs at a swept communication-to-
computation ratio (CCR) and reruns a communication-aware LAMPS+PS:
transfer delays penalise spreading, compounding the leakage argument
for using fewer processors.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..comm.heuristics import comm_lamps
from ..comm.model import uniform_ccr
from ..core.platform import Platform, default_platform
from ..graphs.analysis import critical_path_length
from ..graphs.generators import stg_group
from ..util.tables import render_table
from .reporting import Report

__all__ = ["run"]


def run(*, platform: Optional[Platform] = None,
        sizes: Sequence[int] = (50, 100), graphs_per_group: int = 4,
        ccrs: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
        deadline_factor: float = 2.0, scale: float = 3.1e6,
        seed: int = 2006) -> Report:
    platform = platform or default_platform()
    pool = [g.scaled(scale)
            for n in sizes for g in stg_group(n, graphs_per_group,
                                              seed=seed)]
    rows = []
    mean_n = {}
    mean_e = {}
    for ccr in ccrs:
        ns, es = [], []
        for g in pool:
            deadline = deadline_factor * critical_path_length(g)
            cg = uniform_ccr(g, ccr, seed)
            r = comm_lamps(cg, deadline, platform=platform,
                           shutdown=True)
            ns.append(r.n_processors)
            es.append(r.total_energy)
        mean_n[ccr] = float(np.mean(ns))
        mean_e[ccr] = float(np.mean(es))
        rows.append((ccr, f"{mean_n[ccr]:.2f}", f"{mean_e[ccr]:.4f}",
                     f"{100 * (mean_e[ccr] / mean_e[ccrs[0]] - 1):+.1f}%"))
    table = render_table(
        ["CCR", "mean processors", "mean energy [J]", "vs CCR=0"],
        rows,
        title=f"Communication-aware LAMPS+PS "
              f"(deadline {deadline_factor} x CPL, "
              f"{len(pool)} graphs)")
    summary = (
        "Transfer costs shrink the energy-optimal processor count "
        f"(mean {mean_n[ccrs[0]]:.2f} at CCR=0 -> "
        f"{mean_n[ccrs[-1]]:.2f} at CCR={ccrs[-1]:g}) and raise the "
        "energy floor — communication and leakage both argue against "
        "over-provisioning.")
    return Report(
        experiment="ext-comm",
        title="Extension: communication-aware scheduling",
        text=f"{table}\n\n{summary}",
        data={"mean_processors": mean_n, "mean_energy": mean_e},
    )
