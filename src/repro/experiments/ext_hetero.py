"""Extension experiment: heterogeneous (big.LITTLE) scheduling.

The paper's motivating hardware (the Cell processor) mixes core types;
its scheduling model is homogeneous.  This experiment runs the
configuration-sweeping heterogeneous LAMPS on a 4-big + 4-little
system (little cores: half speed at 30% power, i.e. 0.6x energy per
unit work) against the homogeneous big-core LAMPS+PS, across the
deadline range: tight deadlines force big cores; as slack grows the
work migrates to the efficient little cores and the heterogeneity
dividend appears on top of the paper's DVS/PS/processor-count levers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.lamps import lamps_search
from ..core.platform import Platform, default_platform
from ..graphs.analysis import critical_path_length
from ..graphs.generators import stg_group
from ..hetero.heuristics import hetero_lamps
from ..hetero.model import BIG_LITTLE
from ..util.tables import render_table
from .reporting import Report

__all__ = ["run"]


def run(*, platform: Optional[Platform] = None,
        sizes: Sequence[int] = (50,), graphs_per_group: int = 4,
        deadline_factors: Sequence[float] = (1.2, 2.0, 4.0, 8.0),
        scale: float = 3.1e6, seed: int = 2006) -> Report:
    platform = platform or default_platform()
    pool = [g.scaled(scale)
            for n in sizes for g in stg_group(n, graphs_per_group,
                                              seed=seed)]
    rows = []
    savings = {}
    little_share = {}
    for factor in deadline_factors:
        rel = []
        shares = []
        for g in pool:
            deadline = factor * critical_path_length(g)
            homo = lamps_search(g, deadline, platform=platform,
                                shutdown=True)
            het = hetero_lamps(g, deadline, BIG_LITTLE,
                               platform=platform, shutdown=True)
            rel.append(het.total_energy / homo.total_energy)
            total = sum(het.counts.values())
            shares.append(het.counts.get("little", 0) / total
                          if total else 0.0)
        savings[factor] = 1.0 - float(np.mean(rel))
        little_share[factor] = float(np.mean(shares))
        rows.append((factor, f"{100 * savings[factor]:.1f}%",
                     f"{100 * little_share[factor]:.0f}%"))
    table = render_table(
        ["deadline xCPL", "hetero saving vs big-only LAMPS+PS",
         "little-core share of employed cores"],
        rows,
        title=f"4 big + 4 little cores (little: 2x cycles at 0.3x "
              f"power), {len(pool)} graphs")
    summary = (
        "Slack migrates work to the efficient little cores: saving "
        f"{100 * savings[deadline_factors[0]]:.0f}% at "
        f"{deadline_factors[0]} x CPL -> "
        f"{100 * savings[deadline_factors[-1]]:.0f}% at "
        f"{deadline_factors[-1]} x CPL.")
    return Report(
        experiment="ext-hetero",
        title="Extension: heterogeneous (big.LITTLE) scheduling",
        text=f"{table}\n\n{summary}",
        data={"savings": savings, "little_share": little_share},
    )
