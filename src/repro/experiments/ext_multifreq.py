"""Extension experiment: how much do multiple frequencies really buy?

Section 6 of the paper: "the actual benefit from having multiple
frequencies will probably be much less" than the LIMIT-MF bound
suggests, because LIMIT-MF ignores the deadline and idle energy.  This
experiment runs the per-processor frequency heuristic
(:func:`repro.core.multifreq.per_processor_stretch`) next to LAMPS+PS
and both bounds, quantifying the realised fraction of the headroom.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.limits import limit_mf
from ..core.lamps import lamps_search
from ..core.multifreq import per_processor_stretch
from ..core.platform import Platform, default_platform
from ..graphs.analysis import critical_path_length
from ..graphs.generators import stg_group
from ..util.tables import render_table
from .reporting import Report

__all__ = ["run"]


def run(*, platform: Optional[Platform] = None,
        sizes: Sequence[int] = (50, 100),
        graphs_per_group: int = 4,
        deadline_factors: Sequence[float] = (1.5, 2.0),
        scale: float = 3.1e6, seed: int = 2006) -> Report:
    platform = platform or default_platform()
    rows = []
    realised = []
    gains = []
    island_gains = []
    for n in sizes:
        for unit_graph in stg_group(n, graphs_per_group, seed=seed):
            g = unit_graph.scaled(scale)
            for factor in deadline_factors:
                deadline = factor * critical_path_length(g)
                base = lamps_search(g, deadline, platform=platform,
                                    shutdown=True)
                multi = per_processor_stretch(
                    g, deadline, platform=platform,
                    base_schedule=(base.schedule, base.point))
                # Clustered DVS: two voltage/frequency islands (the
                # practical middle ground between the paper's single
                # domain and fully per-processor rails).
                n_procs = base.schedule.n_processors
                two = per_processor_stretch(
                    g, deadline, platform=platform,
                    base_schedule=(base.schedule, base.point),
                    islands={p: p % 2 for p in range(n_procs)})
                mf = limit_mf(g, deadline, platform=platform)
                gain = 1.0 - multi.total_energy / base.total_energy
                headroom = 1.0 - mf.total_energy / base.total_energy
                frac = gain / headroom if headroom > 1e-9 else float("nan")
                gains.append(gain)
                island_gains.append(
                    1.0 - two.total_energy / base.total_energy)
                if np.isfinite(frac):
                    realised.append(frac)
                rows.append((g.name, factor,
                             f"{base.total_energy:.4f}",
                             f"{two.total_energy:.4f}",
                             f"{multi.total_energy:.4f}",
                             multi.distinct_frequencies,
                             f"{100 * gain:.2f}%",
                             f"{100 * headroom:.2f}%"))
    table = render_table(
        ["graph", "deadline xCPL", "LAMPS+PS [J]", "2 islands [J]",
         "per-proc [J]", "freqs used", "realised gain",
         "LIMIT-MF headroom"],
        rows,
        title="Per-processor frequencies vs the single-frequency best")
    summary = (
        f"mean realised gain: {100 * np.mean(gains):.2f}% "
        f"(max {100 * np.max(gains):.2f}%); two islands collect "
        f"{100 * np.mean(island_gains):.2f}%; mean fraction of the "
        f"LIMIT-MF headroom collected: "
        f"{100 * np.mean(realised):.1f}%" if realised else "n/a")
    return Report(
        experiment="ext-multifreq",
        title="Extension: per-processor frequency assignment",
        text=f"{table}\n\n{summary}\n\nThe paper's conjecture (Section 6)"
             " holds when the realised gain stays far below the "
             "headroom.",
        data={"mean_gain": float(np.mean(gains)),
              "max_gain": float(np.max(gains)),
              "mean_island_gain": float(np.mean(island_gains)),
              "mean_realised_fraction":
                  float(np.mean(realised)) if realised else None,
              "rows": rows},
    )
