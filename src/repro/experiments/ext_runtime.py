"""Extension experiment: static plans under actual execution times.

The schedules are built from worst-case execution times (Section 3.1);
real runs finish early.  This experiment replays LAMPS+PS plans in the
discrete-event simulator with actual times drawn below the worst case
and compares three online behaviours:

* no reclamation (run the plan as-is, sleep through the extra slack);
* greedy slack reclamation (Zhu et al., the S&S ancestry);
* leakage-aware reclamation (greedy, floored at the critical speed —
  the paper's critical-frequency insight applied online).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.lamps import lamps_search
from ..core.platform import Platform, default_platform
from ..graphs.analysis import critical_path_length
from ..graphs.generators import stg_group
from ..graphs.transforms import weight_jitter
from ..runtime.simulator import simulate
from ..runtime.slack_reclaim import (
    greedy_reclaim_policy,
    leakage_aware_reclaim_policy,
)
from ..sched.deadlines import task_deadlines
from ..util.tables import render_table
from .reporting import Report

__all__ = ["run"]


def run(*, platform: Optional[Platform] = None,
        sizes: Sequence[int] = (50, 100), graphs_per_group: int = 4,
        deadline_factor: float = 2.0, jitter: float = 0.5,
        scale: float = 3.1e6, seed: int = 2006) -> Report:
    platform = platform or default_platform()
    rows = []
    ratios = {"none": [], "greedy": [], "leakage-aware": []}
    misses = 0
    for n in sizes:
        for unit_graph in stg_group(n, graphs_per_group, seed=seed):
            g = unit_graph.scaled(scale)
            deadline = deadline_factor * critical_path_length(g)
            plan = lamps_search(g, deadline, platform=platform,
                                shutdown=True)
            d = task_deadlines(g, deadline)
            actual_graph = weight_jitter(g, jitter, seed)
            actual = {v: actual_graph.weight(v) for v in g.node_ids}
            sims = {
                "none": simulate(plan.schedule, plan.point, d,
                                 actual_cycles=actual,
                                 platform=platform),
                "greedy": simulate(
                    plan.schedule, plan.point, d, actual_cycles=actual,
                    platform=platform,
                    policy=greedy_reclaim_policy(plan.point,
                                                 platform.ladder)),
                "leakage-aware": simulate(
                    plan.schedule, plan.point, d, actual_cycles=actual,
                    platform=platform,
                    policy=leakage_aware_reclaim_policy(
                        plan.point, platform.ladder)),
            }
            for name, sim in sims.items():
                ratios[name].append(sim.total_energy / plan.total_energy)
                misses += len(sim.deadline_misses)
            rows.append((
                g.name, f"{plan.total_energy:.4f}",
                *(f"{sims[k].total_energy:.4f}"
                  for k in ("none", "greedy", "leakage-aware"))))
    table = render_table(
        ["graph", "planned (WCET) [J]", "actual, no reclaim [J]",
         "greedy reclaim [J]", "leakage-aware [J]"],
        rows,
        title=f"Actual times at {int(100 * (1 - jitter))}-100% of WCET, "
              f"deadline {deadline_factor} x CPL")
    means = {k: float(np.mean(v)) for k, v in ratios.items()}
    summary = ("mean energy relative to the WCET plan: "
               + ", ".join(f"{k} {100 * m:.1f}%"
                           for k, m in means.items())
               + f"; deadline misses across all runs: {misses}")
    return Report(
        experiment="ext-runtime",
        title="Extension: execution with actual times and online "
              "slack reclamation",
        text=f"{table}\n\n{summary}",
        data={"mean_ratios": means, "deadline_misses": misses},
    )
