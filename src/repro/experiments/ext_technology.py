"""Extension experiment: scaling leakage into future technology nodes.

The paper's motivation (Section 1): leakage current grows ~5x per
technology generation, so static power will come to dominate and
DVS-only scheduling (S&S) will age badly.  This experiment makes the
premise quantitative by scaling the leaking gate count ``Lg`` across
two orders of magnitude around the 70 nm baseline and measuring how the
S&S -> LAMPS+PS gap evolves:

* with negligible leakage, S&S is already near-optimal (the regime it
  was designed for);
* at the paper's node the gap is substantial;
* with 10x leakage, processor count and shutdown dominate the outcome.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.platform import Platform
from ..core.results import Heuristic
from ..core.suite import paper_suite
from ..graphs.analysis import critical_path_length
from ..graphs.generators import stg_group
from ..power.dvs import DVSLadder
from ..power.shutdown import SleepModel
from ..power.technology import TECH_70NM
from ..util.tables import render_table
from .reporting import Report

__all__ = ["run"]


def run(*, sizes: Sequence[int] = (50, 100), graphs_per_group: int = 4,
        leakage_scales: Sequence[float] = (0.1, 0.3, 1.0, 3.0, 10.0),
        deadline_factor: float = 2.0, scale: float = 3.1e6,
        seed: int = 2006,
        base_platform: Optional[Platform] = None) -> Report:
    pool = [g.scaled(scale)
            for n in sizes for g in stg_group(n, graphs_per_group,
                                              seed=seed)]
    rows = []
    savings = {}
    static_fraction = {}
    for k in leakage_scales:
        tech = TECH_70NM.with_overrides(l_g=TECH_70NM.l_g * k)
        plat = Platform(ladder=DVSLadder(tech), sleep=SleepModel())
        # Share of static power in the total at full speed.
        m = plat.model
        static_fraction[k] = float(m.static_power(1.0)
                                   / m.active_power(1.0))
        rel = []
        procs = []
        for g in pool:
            deadline = deadline_factor * critical_path_length(g)
            res = paper_suite(g, deadline, platform=plat)
            rel.append(res[Heuristic.LAMPS_PS].total_energy
                       / res[Heuristic.SNS].total_energy)
            procs.append(res[Heuristic.LAMPS_PS].n_processors)
        savings[k] = 1.0 - float(np.mean(rel))
        rows.append((f"{k:g}x",
                     f"{100 * static_fraction[k]:.1f}%",
                     f"{100 * savings[k]:.1f}%",
                     f"{float(np.mean(procs)):.2f}"))
    table = render_table(
        ["leakage (Lg)", "static share of P at fmax",
         "mean LAMPS+PS saving vs S&S", "mean processors"],
        rows,
        title=f"Technology scaling (deadline {deadline_factor} x CPL, "
              f"{len(pool)} graphs)")
    summary = (
        "The paper's premise quantified: as leakage scales up, the "
        "saving of leakage-aware scheduling over DVS-only S&S grows "
        f"from {100 * savings[leakage_scales[0]]:.0f}% to "
        f"{100 * savings[leakage_scales[-1]]:.0f}%.")
    return Report(
        experiment="ext-technology",
        title="Extension: leakage scaling across technology nodes",
        text=f"{table}\n\n{summary}",
        data={"savings": savings, "static_fraction": static_fraction},
    )
