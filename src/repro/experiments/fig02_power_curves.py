"""Fig. 2 — power and energy per cycle versus normalized frequency.

Reproduces both panels: the power decomposition (P_AC, P_DC, P_on) and
the energy-per-cycle curve whose minimum defines the critical frequency
(0.38 continuous; 0.41 at the discrete 0.7 V point).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.platform import Platform, default_platform
from ..power.dvs import continuous_critical_frequency
from ..util.tables import render_series
from .reporting import Report

__all__ = ["run"]


def run(*, platform: Optional[Platform] = None, samples: int = 41) -> Report:
    """Sweep the voltage range and tabulate power/energy curves.

    Args:
        samples: number of points on the continuous curve (the discrete
            ladder points are reported separately).
    """
    platform = platform or default_platform()
    model = platform.model
    tech = platform.technology
    fmax = model.max_frequency

    vdd = np.linspace(tech.min_vdd + 1e-4, tech.vdd0, samples)
    f_norm = np.asarray(model.normalized_frequency(vdd))
    pac = np.asarray(model.dynamic_power(vdd))
    pdc = np.asarray(model.static_power(vdd))
    ptot = np.asarray(model.active_power(vdd))
    epc = np.asarray(model.energy_per_cycle(vdd)) * 1e9  # nJ/cycle

    continuous = render_series(
        "f/fmax", [round(x, 4) for x in f_norm],
        {
            "Pac[W]": pac.round(4).tolist(),
            "Pdc[W]": pdc.round(4).tolist(),
            "Pon[W]": [tech.p_on] * samples,
            "Ptotal[W]": ptot.round(4).tolist(),
            "E/cycle[nJ]": epc.round(5).tolist(),
        },
        title="Fig. 2 (continuous voltage range)")

    ladder = platform.ladder
    discrete = render_series(
        "f/fmax", [round(ladder.normalized(p), 4) for p in ladder],
        {
            "Vdd[V]": [round(p.vdd, 2) for p in ladder],
            "Ptotal[W]": [round(p.active_power, 4) for p in ladder],
            "Pidle[W]": [round(p.idle_power, 4) for p in ladder],
            "E/cycle[nJ]": [round(p.energy_per_cycle * 1e9, 5) for p in ladder],
        },
        title="Discrete DVS ladder (0.05 V steps)")

    f_crit_cont = continuous_critical_frequency(tech) / fmax
    crit = ladder.critical_point()
    summary = (
        f"fmax = {fmax/1e9:.3f} GHz at Vdd = {tech.vdd0:g} V "
        f"(paper: 3.1 GHz)\n"
        f"critical frequency (continuous) = {f_crit_cont:.3f} * fmax "
        f"(paper: 0.38)\n"
        f"critical point (discrete)       = {ladder.normalized(crit):.3f} "
        f"* fmax at Vdd = {crit.vdd:g} V (paper: 0.41 at 0.7 V)")

    return Report(
        experiment="fig2",
        title="Fig. 2: power and energy per cycle vs normalized frequency",
        text=f"{summary}\n\n{discrete}\n\n{continuous}",
        data={
            "fmax_hz": fmax,
            "f_crit_continuous_norm": f_crit_cont,
            "f_crit_discrete_norm": ladder.normalized(crit),
            "f_crit_discrete_vdd": crit.vdd,
            "f_norm": f_norm.tolist(),
            "p_total": ptot.tolist(),
            "energy_per_cycle": (epc * 1e-9).tolist(),
        },
    )
