"""Fig. 3 — minimum idle cycles for beneficial shutdown vs frequency.

The paper's anchor: at half the maximum frequency a gap must exceed
about 1.7 million cycles before deep sleep pays for its 483 µJ wake-up.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.platform import Platform, default_platform
from ..util.tables import render_series
from .reporting import Report

__all__ = ["run"]


def run(*, platform: Optional[Platform] = None, samples: int = 20) -> Report:
    platform = platform or default_platform()
    model = platform.model
    sleep = platform.sleep
    tech = platform.technology
    fmax = model.max_frequency

    # Continuous curve.
    vdd = np.linspace(tech.min_vdd + 5e-3, tech.vdd0, samples)
    f = np.asarray(model.frequency(vdd))
    idle = np.asarray(model.idle_power(vdd))
    t_be = np.asarray(sleep.breakeven_time(idle))
    cycles = t_be * f

    continuous = render_series(
        "f/fmax", (f / fmax).round(4).tolist(),
        {"breakeven[Mcycles]": (cycles / 1e6).round(4).tolist(),
         "breakeven[ms]": (t_be * 1e3).round(4).tolist()},
        title="Fig. 3 (continuous)")

    ladder = platform.ladder
    be_ladder = [sleep.breakeven_cycles(p) for p in ladder]
    discrete = render_series(
        "f/fmax", [round(ladder.normalized(p), 4) for p in ladder],
        {"Vdd[V]": [round(p.vdd, 2) for p in ladder],
         "breakeven[Mcycles]": [round(b / 1e6, 4) for b in be_ladder]},
        title="Discrete DVS ladder")

    # The paper's spot check at half speed.
    v_half = model.vdd_for_frequency(0.5 * fmax)
    half_cycles = float(sleep.breakeven_time(model.idle_power(v_half))) \
        * 0.5 * fmax
    summary = (f"breakeven at f = 0.5 fmax: {half_cycles/1e6:.2f} Mcycles "
               f"(paper: ~1.7 Mcycles)")

    return Report(
        experiment="fig3",
        title="Fig. 3: minimum idle cycles for PS to be beneficial",
        text=f"{summary}\n\n{discrete}\n\n{continuous}",
        data={
            "breakeven_half_speed_cycles": half_cycles,
            "f_norm": (f / fmax).tolist(),
            "breakeven_cycles": cycles.tolist(),
            "ladder_breakeven_cycles": be_ladder,
        },
    )
