"""Figs. 4 and 7 — the worked 5-task example.

Reconstructs the illustration graph (T1=2, T2=6, T3=4, T4=4, T5=2;
T1 precedes T2 and T3; T5 joins T2 and T3; T4 is independent), shows the
EDF schedule, and contrasts S&S, LAMPS and S&S+PS on it exactly as the
figures do: S&S stretches all three processors, LAMPS packs onto two and
turns the third off.
"""

from __future__ import annotations

from typing import Optional

from ..core.platform import Platform, default_platform
from ..core.suite import paper_suite
from ..graphs.dag import TaskGraph
from ..sched.deadlines import task_deadlines
from ..sched.gantt import render_gantt
from ..sched.list_scheduler import list_schedule
from ..util.tables import render_table
from .reporting import Report

__all__ = ["example_graph", "run"]


def example_graph(*, unit_cycles: float = 3.1e6) -> TaskGraph:
    """The 5-task graph of Fig. 4a (weights scaled to ``unit_cycles``)."""
    weights = {"T1": 2, "T2": 6, "T3": 4, "T4": 4, "T5": 2}
    edges = [("T1", "T2"), ("T1", "T3"), ("T2", "T5"), ("T3", "T5")]
    return TaskGraph({k: v * unit_cycles for k, v in weights.items()},
                     edges, name="fig4-example")


def run(*, platform: Optional[Platform] = None,
        deadline_factor: float = 1.5) -> Report:
    platform = platform or default_platform()
    graph = example_graph()
    from ..graphs.analysis import critical_path_length

    deadline = deadline_factor * critical_path_length(graph)
    d = task_deadlines(graph, deadline)
    edf = list_schedule(graph, 3, d)
    gantt = render_gantt(edf, horizon_cycles=deadline)

    results = paper_suite(graph, deadline, platform=platform)
    rows = [
        (r.heuristic.value, r.total_energy, r.n_processors or "-",
         round(r.point.frequency / platform.fmax, 3) if r.point else "-")
        for r in results.values()
    ]
    table = render_table(
        ["approach", "energy [J]", "processors", "f/fmax"], rows,
        title=f"Energy on the example graph (deadline = "
              f"{deadline_factor} x CPL)")

    return Report(
        experiment="fig4",
        title="Figs. 4/7: worked example (EDF schedule + heuristics)",
        text=f"EDF schedule on 3 processors:\n{gantt}\n\n{table}",
        data={
            "makespan": edf.makespan,
            "deadline": deadline,
            "energies": {r.heuristic.value: r.total_energy
                         for r in results.values()},
            "processors": {r.heuristic.value: r.n_processors
                           for r in results.values()},
        },
    )
