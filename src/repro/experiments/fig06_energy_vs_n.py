"""Fig. 6 — energy versus number of employed processors.

Shows, for the three application graphs, the normalized total energy as
a function of the processor count given to the list scheduler, and flags
local minima — the reason LAMPS's second phase is a linear rather than
binary search (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.lamps import energy_vs_processors
from ..core.platform import Platform, default_platform
from ..graphs.analysis import critical_path_length
from ..graphs.applications import application_suite
from ..util.tables import render_series
from .reporting import Report
from .registry import COARSE, Scenario

__all__ = ["run", "local_minima"]


def local_minima(energies: List[Optional[float]]) -> List[int]:
    """Indices (0-based) of non-global local minima in a sequence.

    ``None`` entries (infeasible processor counts) break the sequence.
    """
    vals = [(i, e) for i, e in enumerate(energies) if e is not None]
    if len(vals) < 3:
        return []
    global_min = min(e for _, e in vals)
    minima = []
    for k in range(1, len(vals) - 1):
        i, e = vals[k]
        if e < vals[k - 1][1] and e < vals[k + 1][1] and e > global_min:
            minima.append(i)
    return minima


#: A random instance that demonstrably exhibits non-global local minima
#: (found by sweeping the generator; see the test suite) — the paper's
#: §4.2 justification for LAMPS's linear phase-2 search.
LOCAL_MINIMA_DEMO_SEED = 26


def run(*, platform: Optional[Platform] = None,
        deadline_factor: float = 2.0, scenario: Scenario = COARSE,
        max_processors: int = 20, seed: int = 2006) -> Report:
    platform = platform or default_platform()
    apps = application_suite(seed=seed)
    from ..graphs.generators import stg_random_graph

    demo = stg_random_graph(60, LOCAL_MINIMA_DEMO_SEED,
                            name="rand60-demo")
    graphs = dict(apps)
    graphs["rand60-demo"] = demo

    columns: Dict[str, List[float]] = {}
    data: Dict[str, dict] = {}
    n_axis = list(range(1, max_processors + 1))
    for name, unit_graph in graphs.items():
        graph = scenario.apply(unit_graph)
        deadline = deadline_factor * critical_path_length(graph)
        curve = energy_vs_processors(graph, deadline, platform=platform,
                                     max_processors=max_processors)
        energies = [e.total if e is not None else None for _, e in curve]
        feasible = [e for e in energies if e is not None]
        base = min(feasible) if feasible else 1.0
        columns[name] = [round(e / base, 4) if e is not None else float("nan")
                         for e in energies]
        data[name] = {
            "energies": energies,
            "local_minima_at": [n_axis[i] for i in local_minima(energies)],
        }

    series = render_series("N", n_axis, columns,
                           title=f"Relative energy vs processor count "
                                 f"(deadline = {deadline_factor} x CPL, "
                                 f"{scenario.name}-grain; nan = infeasible)")
    minima_lines = [
        f"{name}: non-global local minima at N = "
        f"{info['local_minima_at'] or 'none'}"
        for name, info in data.items()
    ]
    return Report(
        experiment="fig6",
        title="Fig. 6: energy vs number of processors (local minima)",
        text=series + "\n\n" + "\n".join(minima_lines),
        data=data,
    )
