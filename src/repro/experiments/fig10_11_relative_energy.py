"""Figs. 10 and 11 — relative energy consumption across the benchmark set.

For each benchmark (random STG-like groups and the application graphs),
each deadline factor (1.5x, 2x, 4x, 8x the CPL) and each granularity
scenario, runs the full heuristic lineup and reports energies relative
to the S&S baseline (= 100%), exactly the bars of Figs. 10 (coarse) and
11 (fine).  Group results are averaged over the group's graphs.

The campaign is flattened into one instance list and routed through
:func:`repro.exec.evaluate_suite_instances`, so ``--jobs``/``--cache-dir``
parallelise and memoise it without changing a single reported number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.platform import Platform, default_platform
from ..core.results import Heuristic
from ..core.suite import paper_suite
from ..exec import ExecOptions, evaluate_suite_instances
from ..graphs.analysis import critical_path_length
from ..graphs.dag import TaskGraph
from ..util.tables import render_table
from .registry import (
    COARSE, DEADLINE_FACTORS, Scenario, benchmark_suite,
)
from .reporting import Report

__all__ = ["run", "relative_energies"]

_ORDER = (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
          Heuristic.LAMPS_PS, Heuristic.LIMIT_SF, Heuristic.LIMIT_MF)


def relative_energies(graph: TaskGraph, deadline_factor: float, *,
                      platform: Optional[Platform] = None,
                      ) -> Dict[Heuristic, float]:
    """Energy of each approach relative to S&S on one instance."""
    platform = platform or default_platform()
    deadline = deadline_factor * critical_path_length(graph)
    results = paper_suite(graph, deadline, platform=platform)
    base = results[Heuristic.SNS].total_energy
    return {h: r.total_energy / base for h, r in results.items()}


def run(*, platform: Optional[Platform] = None,
        scenario: Scenario = COARSE,
        deadline_factors: Sequence[float] = DEADLINE_FACTORS,
        graphs_per_group: int = 5,
        sizes: Optional[Sequence[int]] = None,
        seed: int = 2006,
        include_applications: bool = True,
        exec_options: Optional[ExecOptions] = None) -> Report:
    """Reproduce Fig. 10 (``scenario=COARSE``) or Fig. 11 (``FINE``)."""
    platform = platform or default_platform()
    suite_kwargs = dict(graphs_per_group=graphs_per_group, seed=seed,
                        include_applications=include_applications)
    if sizes is not None:
        suite_kwargs["sizes"] = tuple(sizes)
    suite = benchmark_suite(**suite_kwargs)

    # Flatten the campaign: one instance per (factor, bench, graph), in
    # the same nesting order the aggregation below consumes.
    instances = []
    labels: List[tuple] = []
    for factor in deadline_factors:
        for bench, graphs in suite.items():
            for unit_graph in graphs:
                g = scenario.apply(unit_graph)
                instances.append((g, factor * critical_path_length(g)))
                labels.append((factor, bench))
    all_results = evaluate_suite_instances(
        instances, platform=platform, options=exec_options)

    sections: List[str] = []
    data: Dict[str, dict] = {}
    cursor = 0
    for factor in deadline_factors:
        rows = []
        per_bench: Dict[str, Dict[str, float]] = {}
        for bench, graphs in suite.items():
            rel = np.zeros(len(_ORDER))
            for _ in graphs:
                assert labels[cursor] == (factor, bench)
                results = all_results[cursor]
                cursor += 1
                base = results[Heuristic.SNS].total_energy
                rel += np.array([results[h].total_energy / base
                                 for h in _ORDER])
            rel /= len(graphs)
            per_bench[bench] = {h.value: float(x)
                                for h, x in zip(_ORDER, rel)}
            rows.append((bench, *(f"{100*x:.1f}%" for x in rel)))
        table = render_table(
            ["benchmark", *(h.value for h in _ORDER)], rows,
            title=f"Deadline = {factor} x CPL ({scenario.name}-grain), "
                  f"energy relative to S&S")
        sections.append(table)
        data[f"factor_{factor}"] = per_bench

    fig = "fig10" if scenario is COARSE or scenario.name == "coarse" \
        else "fig11"
    return Report(
        experiment=fig,
        title=f"Fig. {'10' if fig == 'fig10' else '11'}: relative energy, "
              f"{scenario.name}-grain tasks",
        text="\n\n".join(sections),
        data=data,
    )
