"""Figs. 12 and 13 — energy per unit work versus average parallelism.

Each point is one task graph (~1000–3000 nodes) scheduled with deadline
2x CPL; the y-axis is total energy divided by total work (J/cycle).  The
paper's observation: S&S (and, for fine grain, S&S+PS) blows up at low
parallelism because over-provisioned processors idle expensively, while
LAMPS(+PS) stays flat.

The per-graph evaluations are independent, so they run through
:func:`repro.exec.evaluate_suite_instances` — ``exec_options`` adds
process-pool fan-out and result caching with identical output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.platform import Platform, default_platform
from ..core.results import Heuristic
from ..exec import ExecOptions, evaluate_suite_instances
from ..graphs.analysis import average_parallelism, critical_path_length, \
    total_work
from ..util.tables import render_table
from .registry import COARSE, Scenario
from .reporting import Report

__all__ = ["run"]

_ORDER = (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
          Heuristic.LAMPS_PS, Heuristic.LIMIT_MF)


def run(*, platform: Optional[Platform] = None,
        scenario: Scenario = COARSE, deadline_factor: float = 2.0,
        node_counts: Sequence[int] = (1000, 2000),
        graphs_per_size: int = 12, seed: int = 2006,
        exec_options: Optional[ExecOptions] = None) -> Report:
    """Reproduce Fig. 12 (``COARSE``) or Fig. 13 (``FINE``)."""
    from ..graphs.generators import parallelism_sweep

    platform = platform or default_platform()
    instances = []
    for n_nodes in node_counts:
        graphs = parallelism_sweep(n_nodes=n_nodes, graphs=graphs_per_size,
                                   seed=seed)
        for unit_graph in graphs:
            g = scenario.apply(unit_graph)
            instances.append((g, deadline_factor * critical_path_length(g)))
    all_results = evaluate_suite_instances(
        instances, platform=platform, options=exec_options)

    rows: List[tuple] = []
    points: List[dict] = []
    for (g, _deadline), results in zip(instances, all_results):
        par = average_parallelism(g)
        work = total_work(g)
        e_per_work = {h.value: results[h].total_energy / work
                      for h in _ORDER}
        points.append({"graph": g.name, "parallelism": par,
                       "sns_processors":
                           results[Heuristic.SNS].n_processors,
                       "lamps_processors":
                           results[Heuristic.LAMPS].n_processors,
                       **e_per_work})
        rows.append((g.name, round(par, 2),
                     *(f"{e_per_work[h.value]:.4g}" for h in _ORDER)))
    rows.sort(key=lambda r: r[1])
    table = render_table(
        ["graph", "parallelism", *(h.value for h in _ORDER)], rows,
        title=f"Energy / total work [J/cycle] vs average parallelism "
              f"({scenario.name}-grain, deadline = {deadline_factor} x CPL)")
    from ..util.tables import render_scatter

    scatter = render_scatter(
        {h.value: [(p["parallelism"], p[h.value]) for p in points]
         for h in (Heuristic.SNS, Heuristic.LAMPS)},
        title="S&S vs LAMPS (each mark = one graph)",
        x_label="average parallelism", y_label="energy/work [J/cycle]")
    table = f"{table}\n\n{scatter}"

    fig = "fig12" if scenario.name == "coarse" else "fig13"
    return Report(
        experiment=fig,
        title=f"Fig. {'12' if fig == 'fig12' else '13'}: energy/work vs "
              f"parallelism, {scenario.name}-grain",
        text=table,
        data={"points": points},
    )
