"""The paper's headline claims, recomputed from the benchmark sweep.

Claims (abstract + Section 5.2):

* LAMPS+PS reduces energy vs S&S by up to 46 % at deadline 1.5x CPL and
  up to 73 % at 8x CPL (coarse grain; 40 %/71 % fine grain).
* LAMPS+PS improves on LAMPS by up to 12 % (1.5x) / 18 % (8x), coarse.
* With coarse-grain tasks LAMPS+PS attains more than 94 % of the
  possible (LIMIT-SF) energy reduction on every benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.platform import Platform, default_platform
from ..core.results import Heuristic
from ..core.suite import paper_suite
from ..graphs.analysis import critical_path_length
from ..util.tables import render_table
from .registry import COARSE, FINE, Scenario, benchmark_suite
from .reporting import Report

__all__ = ["run", "claims_for_scenario"]


def claims_for_scenario(scenario: Scenario, *,
                        platform: Optional[Platform] = None,
                        graphs_per_group: int = 4,
                        sizes: Sequence[int] = (50, 100, 500, 1000),
                        factors: Sequence[float] = (1.5, 8.0),
                        seed: int = 2006) -> Dict[str, dict]:
    """Max LAMPS+PS-vs-S&S savings and LIMIT-SF attainment per factor."""
    platform = platform or default_platform()
    suite = benchmark_suite(graphs_per_group=graphs_per_group,
                            sizes=tuple(sizes), seed=seed)
    out: Dict[str, dict] = {}
    for factor in factors:
        max_saving_ps = 0.0
        max_saving_over_lamps = 0.0
        attainments = []
        for graphs in suite.values():
            for unit_graph in graphs:
                g = scenario.apply(unit_graph)
                deadline = factor * critical_path_length(g)
                res = paper_suite(g, deadline, platform=platform)
                e_sns = res[Heuristic.SNS].total_energy
                e_lamps = res[Heuristic.LAMPS].total_energy
                e_lps = res[Heuristic.LAMPS_PS].total_energy
                e_sf = res[Heuristic.LIMIT_SF].total_energy
                max_saving_ps = max(max_saving_ps, 1.0 - e_lps / e_sns)
                max_saving_over_lamps = max(
                    max_saving_over_lamps, 1.0 - e_lps / e_lamps)
                possible = e_sns - e_sf
                if possible > 1e-12:
                    attainments.append((e_sns - e_lps) / possible)
        out[f"factor_{factor}"] = {
            "max_saving_vs_sns": max_saving_ps,
            "max_saving_vs_lamps": max_saving_over_lamps,
            "min_attainment_of_limit_sf": float(np.min(attainments))
            if attainments else float("nan"),
            "mean_attainment_of_limit_sf": float(np.mean(attainments))
            if attainments else float("nan"),
        }
    return out


def run(*, platform: Optional[Platform] = None, graphs_per_group: int = 4,
        sizes: Sequence[int] = (50, 100, 500, 1000),
        seed: int = 2006) -> Report:
    platform = platform or default_platform()
    rows = []
    data = {}
    paper = {
        ("coarse", "factor_1.5"): ("46%", ">=94%"),
        ("coarse", "factor_8.0"): ("73%", ">=94%"),
        ("fine", "factor_1.5"): ("40%", ""),
        ("fine", "factor_8.0"): ("71%", ""),
    }
    for scenario in (COARSE, FINE):
        claims = claims_for_scenario(
            scenario, platform=platform, graphs_per_group=graphs_per_group,
            sizes=sizes, seed=seed)
        data[scenario.name] = claims
        for key, c in claims.items():
            ref_saving, ref_attain = paper.get((scenario.name, key), ("", ""))
            rows.append((
                scenario.name, key.replace("factor_", "") + " x CPL",
                f"{100*c['max_saving_vs_sns']:.1f}%",
                ref_saving,
                f"{100*c['max_saving_vs_lamps']:.1f}%",
                f"{100*c['min_attainment_of_limit_sf']:.1f}%",
                ref_attain,
            ))
    table = render_table(
        ["scenario", "deadline", "max saving vs S&S", "paper",
         "max saving vs LAMPS", "min LIMIT-SF attainment", "paper"],
        rows, title="Headline claims (LAMPS+PS)")
    return Report(experiment="headline",
                  title="Headline claims recomputed", text=table, data=data)
