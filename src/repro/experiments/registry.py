"""Workload registry for the paper's evaluation (Section 5.1).

Defines the two task-granularity scenarios, the deadline factors, and
the benchmark suite: STG-like random groups (sizes matching the paper's
Figs. 10–11 x-axis) plus the three application graphs and MPEG-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..graphs.applications import application_suite
from ..graphs.dag import TaskGraph
from ..graphs.generators import stg_group

__all__ = [
    "Scenario", "COARSE", "FINE", "SCENARIOS",
    "DEADLINE_FACTORS", "GROUP_SIZES", "APPLICATION_NAMES",
    "benchmark_suite",
]


@dataclass(frozen=True, slots=True)
class Scenario:
    """A task-granularity scenario.

    The STG weights are unitless integers in [1, 300]; a scenario fixes
    how many cycles one weight unit represents (Section 5.1).
    """

    name: str
    cycles_per_unit: float

    def apply(self, graph: TaskGraph) -> TaskGraph:
        """Scale ``graph``'s weights into cycles for this scenario."""
        return graph.scaled(self.cycles_per_unit)


#: Coarse-grain: weight 1 == 3.1e6 cycles == 1 ms at full speed.
COARSE = Scenario("coarse", 3.1e6)
#: Fine-grain: weight 1 == 3.1e4 cycles == 10 µs at full speed.
FINE = Scenario("fine", 3.1e4)

SCENARIOS = {"coarse": COARSE, "fine": FINE}

#: The paper's deadline extension factors (multiples of the CPL).
DEADLINE_FACTORS: Sequence[float] = (1.5, 2.0, 4.0, 8.0)

#: Random-group sizes shown in Figs. 10–11.
GROUP_SIZES: Sequence[int] = (50, 100, 500, 1000, 2000, 2500, 5000)

APPLICATION_NAMES: Sequence[str] = ("fpppp", "robot", "sparse")


def benchmark_suite(*, graphs_per_group: int = 5, seed: int = 2006,
                    sizes: Sequence[int] = GROUP_SIZES,
                    include_applications: bool = True,
                    ) -> Dict[str, List[TaskGraph]]:
    """The evaluation workloads, keyed by benchmark label.

    Random groups are labelled by their node count (``"50"``, …); each
    maps to ``graphs_per_group`` graphs whose results are averaged, the
    way the paper averages each STG size class.  Application benchmarks
    map to single-graph lists.  Weights are in STG units — apply a
    :class:`Scenario` before scheduling.
    """
    if graphs_per_group < 1:
        raise ValueError("graphs_per_group must be >= 1")
    suite: Dict[str, List[TaskGraph]] = {
        str(n): stg_group(n, graphs_per_group, seed=seed) for n in sizes
    }
    if include_applications:
        for name, graph in application_suite(seed=seed).items():
            suite[name] = [graph]
    return suite
