"""Report container shared by all experiment modules."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Union

__all__ = ["Report", "cache_stats_line"]


def cache_stats_line(stats) -> str:
    """One-line summary of a :class:`repro.exec.CacheStats`.

    Printed by the CLI after a cached campaign, e.g.
    ``cache: 248/252 hits (98%), 4 misses, 310 kB read, 5 kB written``.
    """
    return (f"cache: {stats.hits}/{stats.lookups} hits "
            f"({100 * stats.hit_rate:.0f}%), {stats.misses} misses, "
            f"{stats.bytes_read} B read, {stats.bytes_written} B written")


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of experiment data to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


@dataclass
class Report:
    """Output of one experiment.

    Attributes:
        experiment: identifier matching the paper artifact ("fig10", …).
        title: human-readable description.
        text: the rendered table/series block (what the paper shows).
        data: machine-readable results for tests and downstream use.
    """

    experiment: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        bar = "=" * max(len(self.title), 20)
        return f"{bar}\n{self.title}\n{bar}\n{self.text}\n"

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise the machine-readable results (with metadata)."""
        return json.dumps(
            {"experiment": self.experiment, "title": self.title,
             "data": _jsonable(self.data)},
            indent=indent, sort_keys=True)

    def save_json(self, path: Union[str, Path]) -> None:
        """Write :meth:`to_json` to ``path``."""
        Path(path).write_text(self.to_json() + "\n")
