"""The reproduction scorecard: every fidelity anchor in one table.

Aggregates the quantitative checkpoints that tie this implementation to
the paper — power-model anchors, Table 2 statistics, Table 3 processor
counts and ratios, and the LIMIT-SF attainment claim — with a pass/fail
verdict per row.  ``python -m repro.experiments scorecard`` is the
one-command answer to "does this reproduction hold?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.platform import Platform, default_platform
from ..core.results import Heuristic
from ..core.suite import paper_suite
from ..graphs.analysis import critical_path_length, graph_stats
from ..graphs.applications import APPLICATION_STATS, application_suite
from ..graphs.mpeg import MPEG_DEADLINE_SECONDS, mpeg1_gop_graph
from ..power.dvs import continuous_critical_frequency
from ..util.tables import render_table
from .reporting import Report

__all__ = ["run"]


@dataclass
class Check:
    name: str
    paper: str
    measured: str
    ok: bool


def _anchor_checks(platform: Platform) -> List[Check]:
    model = platform.model
    lad = platform.ladder
    fmax = model.max_frequency
    crit = lad.critical_point()
    cont = continuous_critical_frequency(platform.technology) / fmax
    half_vdd = model.vdd_for_frequency(0.5 * fmax)
    be = float(platform.sleep.breakeven_time(
        model.idle_power(half_vdd))) * 0.5 * fmax
    return [
        Check("max frequency at 1.0 V", "3.1 GHz",
              f"{fmax / 1e9:.3f} GHz", abs(fmax / 3.1e9 - 1) < 0.02),
        Check("critical frequency (continuous)", "0.38 fmax",
              f"{cont:.3f} fmax", abs(cont - 0.38) < 0.01),
        Check("critical point (discrete)", "0.41 fmax at 0.7 V",
              f"{lad.normalized(crit):.3f} fmax at {crit.vdd:g} V",
              abs(lad.normalized(crit) - 0.41) < 0.01
              and abs(crit.vdd - 0.7) < 1e-9),
        Check("PS breakeven at 0.5 fmax", "~1.7 M cycles",
              f"{be / 1e6:.2f} M cycles", abs(be / 1.7e6 - 1) < 0.03),
    ]


def _table2_checks() -> List[Check]:
    out = []
    for name, graph in application_suite().items():
        n, m, cpl, work = APPLICATION_STATS[name]
        s = graph_stats(graph)
        ok = (s.n == n and s.m == m and int(s.cpl) == cpl
              and int(s.work) == work)
        out.append(Check(
            f"Table 2: {name} (n/m/CPL/work)",
            f"{n}/{m}/{cpl}/{work}",
            f"{s.n}/{s.m}/{int(s.cpl)}/{int(s.work)}", ok))
    return out


def _table3_checks(platform: Platform) -> List[Check]:
    graph = mpeg1_gop_graph()
    deadline = platform.reference_cycles(MPEG_DEADLINE_SECONDS)
    res = paper_suite(graph, deadline, platform=platform)
    base = res[Heuristic.SNS].total_energy
    checks = [
        Check("Table 3: LAMPS processors", "3",
              str(res[Heuristic.LAMPS].n_processors),
              res[Heuristic.LAMPS].n_processors == 3),
        Check("Table 3: LAMPS+PS processors", "6",
              str(res[Heuristic.LAMPS_PS].n_processors),
              res[Heuristic.LAMPS_PS].n_processors == 6),
    ]
    for h, paper_rel in ((Heuristic.LAMPS, 0.734),
                         (Heuristic.SNS_PS, 0.604),
                         (Heuristic.LAMPS_PS, 0.604),
                         (Heuristic.LIMIT_SF, 0.604)):
        rel = res[h].total_energy / base
        checks.append(Check(
            f"Table 3: {h.value} relative energy",
            f"{paper_rel:.3f}", f"{rel:.3f}",
            abs(rel - paper_rel) < 0.05))
    return checks


def _attainment_check(platform: Platform) -> Check:
    from ..graphs.generators import stg_group

    worst = 1.0
    for g in stg_group(50, 3, seed=2006):
        graph = g.scaled(3.1e6)
        deadline = 8 * critical_path_length(graph)
        res = paper_suite(graph, deadline, platform=platform)
        possible = res[Heuristic.SNS].total_energy \
            - res[Heuristic.LIMIT_SF].total_energy
        attained = res[Heuristic.SNS].total_energy \
            - res[Heuristic.LAMPS_PS].total_energy
        if possible > 1e-12:
            worst = min(worst, attained / possible)
    return Check("LIMIT-SF attainment, coarse 8xCPL (sample)",
                 ">94%", f"{100 * worst:.1f}%", worst > 0.94)


def run(*, platform: Optional[Platform] = None) -> Report:
    platform = platform or default_platform()
    checks: List[Check] = []
    checks.extend(_anchor_checks(platform))
    checks.extend(_table2_checks())
    checks.extend(_table3_checks(platform))
    checks.append(_attainment_check(platform))

    rows = [(c.name, c.paper, c.measured,
             "PASS" if c.ok else "FAIL") for c in checks]
    n_pass = sum(c.ok for c in checks)
    table = render_table(["check", "paper", "measured", "verdict"],
                         rows, title="Reproduction scorecard")
    return Report(
        experiment="scorecard",
        title=f"Reproduction scorecard — {n_pass}/{len(checks)} checks "
              f"pass",
        text=table,
        data={"passed": n_pass, "total": len(checks),
              "failed": [c.name for c in checks if not c.ok]},
    )
