"""Table 2 — benchmark characteristics.

Tabulates node/edge counts, critical path and total work for the
synthesised benchmark suite next to the paper's published figures, so
the fidelity of the workload substitution is auditable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..exec import ExecOptions, run_instances
from ..graphs.analysis import graph_stats
from ..graphs.applications import APPLICATION_STATS
from ..util.tables import render_table
from .registry import benchmark_suite
from .reporting import Report

__all__ = ["run"]

#: Paper's Table 2 ranges for the random groups:
#: nodes -> ((edges lo, hi), (cpl lo, hi), (work lo, hi))
PAPER_GROUP_RANGES = {
    50: ((66, 926), (24, 447), (204, 644)),
    100: ((138, 1898), (29, 569), (458, 1347)),
    300: ((412, 8991), (45, 1164), (1517, 3568)),
    500: ((698, 24497), (67, 1941), (2563, 5530)),
    1000: ((1378, 99164), (50, 3298), (5179, 11138)),
    2000: ((2797, 396760), (48, 6770), (10563, 21615)),
    5000: ((7132, 2491411), (62, 17386), (27009, 54010)),
}


def run(*, graphs_per_group: int = 10, seed: int = 2006,
        sizes: Optional[Sequence[int]] = None,
        exec_options: Optional[ExecOptions] = None) -> Report:
    suite = benchmark_suite(
        graphs_per_group=graphs_per_group, seed=seed,
        **({"sizes": tuple(sizes)} if sizes is not None else {}))
    # Stats of the whole suite are independent per graph — fan them out
    # (stats are cheap, so there is nothing worth caching here).
    jobs = exec_options.jobs if exec_options is not None else 1
    all_graphs = [g for graphs in suite.values() for g in graphs]
    all_stats = [r.value for r in
                 run_instances(graph_stats, all_graphs, jobs=jobs)]
    stats_by_bench = {}
    cursor = 0
    for bench, graphs in suite.items():
        stats_by_bench[bench] = all_stats[cursor:cursor + len(graphs)]
        cursor += len(graphs)
    rows = []
    data = {}
    for bench, graphs in suite.items():
        stats = stats_by_bench[bench]
        edges = [s.m for s in stats]
        cpls = [s.cpl for s in stats]
        works = [s.work for s in stats]
        if len(graphs) == 1:
            s = stats[0]
            paper = APPLICATION_STATS.get(bench)
            rows.append((bench, s.n, s.m, int(s.cpl), int(s.work),
                         f"paper: {paper}" if paper else ""))
            data[bench] = stats[0].as_dict()
        else:
            n = stats[0].n
            paper = PAPER_GROUP_RANGES.get(n)
            note = (f"paper ranges: m {paper[0]}, cpl {paper[1]}, "
                    f"work {paper[2]}") if paper else ""
            rows.append((bench, n,
                         f"{min(edges)}-{max(edges)}",
                         f"{int(min(cpls))}-{int(max(cpls))}",
                         f"{int(min(works))}-{int(max(works))}", note))
            data[bench] = {"edges": edges, "cpl": cpls, "work": works}
    table = render_table(
        ["benchmark", "nodes", "edges", "critical path", "total work",
         "reference"], rows,
        title="Table 2: benchmark characteristics (STG units)")
    return Report(experiment="table2",
                  title="Table 2: employed benchmarks", text=table,
                  data=data)
