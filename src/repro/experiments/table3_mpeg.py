"""Table 3 — the MPEG-1 encoding benchmark.

Schedules the 15-frame GOP graph (Fig. 9) with a 0.5 s real-time
deadline (30 frames/s) under every approach, reporting energy and the
number of employed processors alongside the paper's values.

Note on absolute scale: from the cycle counts printed in the paper's
Fig. 9 caption, the model yields LIMIT energies of ~1.09 J while
Table 3 prints 10.940 (a consistent ~10x unit discrepancy in the paper).
The *ratios* between approaches and the processor counts are the
reproducible quantities and match closely.
"""

from __future__ import annotations

from typing import Optional

from ..core.platform import Platform, default_platform
from ..core.results import Heuristic
from ..exec import ExecOptions, evaluate_suite_instances
from ..graphs.mpeg import MPEG_DEADLINE_SECONDS, mpeg1_gop_graph
from ..util.tables import render_table
from .reporting import Report

__all__ = ["run", "PAPER_TABLE3"]

#: Paper's Table 3: approach -> (energy, processors).
PAPER_TABLE3 = {
    Heuristic.SNS: (18.116, 7),
    Heuristic.LAMPS: (13.290, 3),
    Heuristic.SNS_PS: (10.949, 7),
    Heuristic.LAMPS_PS: (10.947, 6),
    Heuristic.LIMIT_SF: (10.940, None),
    Heuristic.LIMIT_MF: (10.940, None),
}


def run(*, platform: Optional[Platform] = None,
        deadline_seconds: float = MPEG_DEADLINE_SECONDS,
        exec_options: Optional[ExecOptions] = None) -> Report:
    platform = platform or default_platform()
    graph = mpeg1_gop_graph()
    deadline = platform.reference_cycles(deadline_seconds)
    # One instance — the pool is pointless but the cache is not.
    [results] = evaluate_suite_instances(
        [(graph, deadline)], platform=platform, options=exec_options)

    base = results[Heuristic.SNS].total_energy
    paper_base = PAPER_TABLE3[Heuristic.SNS][0]
    rows = []
    data = {}
    for h, r in results.items():
        paper_e, paper_n = PAPER_TABLE3[h]
        rows.append((
            h.value,
            f"{r.total_energy:.4f}",
            r.n_processors if r.n_processors is not None else "N/A",
            f"{r.total_energy/base:.3f}",
            f"{paper_e:.3f}",
            paper_n if paper_n is not None else "N/A",
            f"{paper_e/paper_base:.3f}",
        ))
        data[h.value] = {
            "energy": r.total_energy,
            "processors": r.n_processors,
            "relative": r.total_energy / base,
            "paper_relative": paper_e / paper_base,
        }
    table = render_table(
        ["approach", "energy [J]", "procs", "rel. to S&S",
         "paper energy", "paper procs", "paper rel."],
        rows,
        title=f"Table 3: MPEG-1 GOP, deadline {deadline_seconds} s")
    return Report(experiment="table3",
                  title="Table 3: MPEG-1 benchmark", text=table, data=data)
