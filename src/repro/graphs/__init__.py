"""Task-graph substrate: DAG model, analysis, STG I/O, generators, the
MPEG-1 application graph, and Kahn Process Network unrolling.
"""

from .analysis import (
    GraphStats,
    alap_times,
    asap_times,
    average_parallelism,
    bottom_levels,
    critical_path,
    critical_path_length,
    graph_stats,
    top_levels,
    total_work,
)
from .applications import (
    APPLICATION_STATS,
    application_graph,
    application_suite,
    synthesize_with_stats,
)
from .dag import CycleError, TaskGraph
from .datasets import bundled_names, load_all_bundled, load_bundled
from .generators import (
    chain,
    fork_join,
    independent_tasks,
    layered_dag,
    layrpred_dag,
    parallel_chains,
    parallelism_sweep,
    samepred_dag,
    sameprob_dag,
    stg_group,
    stg_random_graph,
)
from .kpn import Channel, ProcessNetwork, UnrolledKPN
from .periodic import (
    FrameBasedWorkload,
    PeriodicTask,
    frame_based_dag,
    hyperperiod,
)
from .metrics import (
    WorkloadProfile,
    max_width,
    profile,
    slack_distribution,
    width_profile,
    width_statistics,
)
from .mpeg import (
    B_FRAME_CYCLES,
    GOP_PATTERN,
    I_FRAME_CYCLES,
    MPEG_DEADLINE_SECONDS,
    P_FRAME_CYCLES,
    mpeg1_gop_graph,
)
from .stg import format_stg, load_stg, parse_stg, save_stg, strip_dummies
from .transforms import (
    linear_cluster,
    merge_graphs,
    transitive_reduction,
    weight_jitter,
)

__all__ = [
    "TaskGraph", "CycleError",
    "GraphStats", "graph_stats", "top_levels", "bottom_levels",
    "critical_path", "critical_path_length", "total_work",
    "average_parallelism", "asap_times", "alap_times",
    "APPLICATION_STATS", "application_graph", "application_suite",
    "synthesize_with_stats",
    "chain", "independent_tasks", "fork_join", "layered_dag",
    "sameprob_dag", "samepred_dag", "layrpred_dag",
    "stg_random_graph", "stg_group",
    "parallel_chains", "parallelism_sweep",
    "Channel", "ProcessNetwork", "UnrolledKPN",
    "mpeg1_gop_graph", "GOP_PATTERN", "MPEG_DEADLINE_SECONDS",
    "I_FRAME_CYCLES", "B_FRAME_CYCLES", "P_FRAME_CYCLES",
    "parse_stg", "load_stg", "format_stg", "save_stg", "strip_dummies",
    "linear_cluster", "transitive_reduction", "weight_jitter",
    "merge_graphs",
    "bundled_names", "load_bundled", "load_all_bundled",
    "width_profile", "max_width", "width_statistics",
    "slack_distribution", "WorkloadProfile", "profile",
    "PeriodicTask", "FrameBasedWorkload", "frame_based_dag",
    "hyperperiod",
]
