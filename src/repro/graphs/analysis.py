"""Structural analysis of task graphs.

Provides the quantities the paper's evaluation is organised around:
critical path length (CPL), total work, and the *average parallelism*
``work / CPL`` (Section 5.2, Figs. 12–13), plus the level/ALAP machinery
the scheduler and the EDF deadline assignment are built on.

All lengths are *node-weighted* path lengths including both endpoints,
matching the paper's convention (deadlines are multiples of the CPL, the
time the graph needs on infinitely many processors at full speed).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from .dag import TaskGraph

__all__ = [
    "top_levels",
    "bottom_levels",
    "critical_path_length",
    "critical_path",
    "total_work",
    "average_parallelism",
    "asap_times",
    "alap_times",
    "GraphStats",
    "graph_stats",
]


def top_levels(graph: TaskGraph) -> np.ndarray:
    """Longest weighted path *ending at* each node, inclusive of the node.

    Indexed by dense node index.  ``max(top_levels)`` equals the CPL.
    """
    tl = np.zeros(graph.n)
    w = graph.weights_array
    preds = graph.pred_indices
    for v in graph.topo_indices:
        best = 0.0
        for p in preds[v]:
            if tl[p] > best:
                best = tl[p]
        tl[v] = best + w[v]
    return tl


def bottom_levels(graph: TaskGraph) -> np.ndarray:
    """Longest weighted path *starting at* each node, inclusive of the node.

    The classic HLFET list-scheduling priority; also used for ALAP.
    """
    bl = np.zeros(graph.n)
    w = graph.weights_array
    succs = graph.succ_indices
    for v in reversed(graph.topo_indices):
        best = 0.0
        for s in succs[v]:
            if bl[s] > best:
                best = bl[s]
        bl[v] = best + w[v]
    return bl


def critical_path_length(graph: TaskGraph) -> float:
    """Length of the longest weighted path (cycles at full speed)."""
    return float(top_levels(graph).max())


def critical_path(graph: TaskGraph) -> Tuple[Hashable, ...]:
    """One longest weighted path, as a tuple of node ids source→sink."""
    tl = top_levels(graph)
    w = graph.weights_array
    preds = graph.pred_indices
    v = int(np.argmax(tl))
    path: List[int] = [v]
    while preds[v]:
        v = max(preds[v], key=lambda p: tl[p])
        path.append(v)
    return tuple(graph.id_of(i) for i in reversed(path))


def total_work(graph: TaskGraph) -> float:
    """Sum of all task weights (cycles at full speed)."""
    return float(graph.weights_array.sum())


def average_parallelism(graph: TaskGraph) -> float:
    """``total work / CPL`` — the paper's parallelism measure (§5.2).

    A chain scores 1; ``k`` independent equal chains score ``k``.
    """
    return total_work(graph) / critical_path_length(graph)


def asap_times(graph: TaskGraph) -> np.ndarray:
    """Earliest possible start time of each node (infinite processors)."""
    return top_levels(graph) - graph.weights_array


def alap_times(graph: TaskGraph, deadline: float) -> np.ndarray:
    """Latest start time of each node such that ``deadline`` is met.

    Indexed by dense node index; computed from bottom levels.

    Raises:
        ValueError: if the deadline is shorter than the CPL (then no
            assignment exists even on infinitely many processors).
    """
    bl = bottom_levels(graph)
    cpl = float(bl.max())
    if deadline < cpl:
        raise ValueError(
            f"deadline {deadline:g} is below the critical path length {cpl:g}")
    return deadline - bl


class GraphStats:
    """Summary statistics of a task graph (the columns of Table 2)."""

    __slots__ = ("name", "n", "m", "cpl", "work", "parallelism")

    def __init__(self, graph: TaskGraph) -> None:
        self.name = graph.name
        self.n = graph.n
        self.m = graph.m
        self.cpl = critical_path_length(graph)
        self.work = total_work(graph)
        self.parallelism = self.work / self.cpl

    def as_dict(self) -> Dict[str, float]:
        return {"name": self.name, "nodes": self.n, "edges": self.m,
                "critical_path": self.cpl, "total_work": self.work,
                "parallelism": self.parallelism}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GraphStats({self.name!r}, n={self.n}, m={self.m}, "
                f"cpl={self.cpl:g}, work={self.work:g})")


def graph_stats(graph: TaskGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    return GraphStats(graph)
