"""Synthetic stand-ins for the STG application graphs.

The STG set ships three graphs extracted from real programs — ``fpppp``
(a SPEC chemistry kernel), ``robot`` (Newton-Euler dynamics control) and
``sparse`` (a sparse matrix solver).  The files are not redistributable,
but the paper's Table 2 publishes exactly the statistics that drive the
scheduling trade-off: node count, edge count, critical path length and
total work (hence average parallelism).  :func:`synthesize_with_stats`
constructs a graph matching **all four exactly**, so the heuristics face
the same size/parallelism regime as in the paper.

Construction: a backbone chain realises the critical path exactly; the
remaining nodes carry the remaining work; extra edges are added only
where the longest path through them stays within the CPL, so the critical
path length is invariant by construction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .analysis import critical_path_length, total_work
from .dag import TaskGraph

__all__ = ["APPLICATION_STATS", "synthesize_with_stats", "application_graph",
           "application_suite"]

#: Table 2 statistics of the STG application graphs:
#: name -> (nodes, edges, critical path, total work).
APPLICATION_STATS: Dict[str, Tuple[int, int, int, int]] = {
    "fpppp": (334, 1196, 1062, 7113),
    "robot": (88, 130, 545, 2459),
    "sparse": (96, 128, 122, 1920),
}


def _partition(total: int, parts: int, rng: np.random.Generator,
               *, low: int = 1, high: int = 300) -> np.ndarray:
    """Random integer composition of ``total`` into ``parts`` in [low, high]."""
    if not parts * low <= total <= parts * high:
        raise ValueError(
            f"cannot split {total} into {parts} parts within [{low}, {high}]")
    values = np.full(parts, low, dtype=int)
    remaining = total - parts * low
    # Spread the surplus with random increments, respecting the cap.
    while remaining > 0:
        headroom = high - values
        open_idx = np.nonzero(headroom > 0)[0]
        picks = rng.choice(open_idx, size=min(remaining, open_idx.size),
                           replace=False)
        grant = np.minimum(headroom[picks],
                           rng.integers(1, max(2, remaining // picks.size + 1),
                                        size=picks.size))
        grant = np.minimum(grant, remaining - np.concatenate(
            [[0], np.cumsum(grant)[:-1]]))
        grant = np.maximum(grant, 0)
        values[picks] += grant
        remaining = total - int(values.sum())
    return values


def synthesize_with_stats(name: str, n: int, m: int, cpl: int, work: int, *,
                          seed: int = 2006, wmax: int = 300,
                          max_tries: int = 8) -> TaskGraph:
    """Build a DAG with exactly ``n`` nodes, ``m`` edges, CPL ``cpl`` and
    total work ``work``.

    Args:
        name: graph label.
        n, m, cpl, work: target statistics (integers, as in Table 2).
        seed: RNG seed; the same inputs always yield the same graph.
        wmax: maximum individual task weight (STG uses 300).
        max_tries: reseeded attempts before giving up on edge placement.

    Raises:
        ValueError: if the statistics are mutually infeasible (e.g. more
            work than ``n * wmax``) or edges cannot be placed within the
            CPL constraint.
    """
    if work < n or work > n * wmax:
        raise ValueError(f"work {work} infeasible for {n} nodes (wmax={wmax})")
    if cpl < 1 or cpl > work:
        raise ValueError(f"cpl {cpl} must be in [1, work]")
    last_err: Exception | None = None
    for attempt in range(max_tries):
        rng = np.random.default_rng(np.random.SeedSequence((seed, attempt)))
        try:
            graph = _synthesize_once(name, n, m, cpl, work, rng, wmax)
        except ValueError as exc:
            last_err = exc
            continue
        return graph
    raise ValueError(
        f"could not synthesize {name!r} with n={n}, m={m}, cpl={cpl}, "
        f"work={work}: {last_err}")


def _synthesize_once(name: str, n: int, m: int, cpl: int, work: int,
                     rng: np.random.Generator, wmax: int) -> TaskGraph:
    # --- backbone chain carrying the critical path -----------------------
    # Backbone of L nodes sums to cpl with weights in [1, wmax]:
    #   ceil(cpl / wmax) <= L <= min(n, cpl).
    # The n - L extras must sum to work - cpl with weights in [1, wmax]:
    #   n - L <= work - cpl  and  work - cpl <= (n - L) * wmax.
    extra_work = work - cpl
    min_len = max(int(np.ceil(cpl / wmax)), n - extra_work, 1)
    max_len = min(n, cpl)
    if extra_work > 0:
        # Need at least one extra node, and enough of them to absorb the
        # surplus work at <= wmax each.
        max_len = min(max_len, n - 1, int(np.floor(n - extra_work / wmax)))
    if min_len > max_len:
        raise ValueError("no feasible backbone length")
    # Prefer a short backbone (more structural freedom for the extras).
    length_hi = min(max_len, max(min_len, int(np.ceil(cpl / (wmax / 3)))))
    backbone_len = int(rng.integers(min_len, length_hi + 1))
    if m < backbone_len - 1:
        raise ValueError("fewer target edges than backbone needs")
    n_extra = n - backbone_len

    backbone_w = _partition(cpl, backbone_len, rng, high=wmax)
    extra_w = (_partition(extra_work, n_extra, rng, high=wmax)
               if n_extra else np.empty(0, dtype=int))

    # --- global order: backbone spread across positions ------------------
    # Nodes 0..n-1 in a fixed topological order; backbone occupies sorted
    # random positions; edges only go forward in this order.
    positions = np.sort(rng.choice(n, size=backbone_len, replace=False))
    weights = np.empty(n, dtype=float)
    is_backbone = np.zeros(n, dtype=bool)
    weights[positions] = backbone_w
    is_backbone[positions] = True
    weights[~is_backbone] = extra_w

    edges: set[Tuple[int, int]] = set()
    succ: List[List[int]] = [[] for _ in range(n)]
    pred: List[List[int]] = [[] for _ in range(n)]

    def add_edge(u: int, v: int) -> None:
        edges.add((u, v))
        succ[u].append(v)
        pred[v].append(u)

    for a, b in zip(positions[:-1], positions[1:]):
        add_edge(int(a), int(b))

    # Longest path ending at / starting from each node, updated as edges
    # are added.  An edge (u, v) keeps the CPL iff tl[u] + bl[v] <= cpl.
    # Position order IS a topological order (edges only go forward).
    tl = weights.copy()
    bl = weights.copy()
    for v in range(n):
        if pred[v]:
            tl[v] = weights[v] + max(tl[u] for u in pred[v])
    for v in range(n - 1, -1, -1):
        if succ[v]:
            bl[v] = weights[v] + max(bl[s] for s in succ[v])

    # --- wire extras into strands, then pad with random edges ------------
    # Pass 1 gives every extra node an incoming edge from a *nearby*
    # earlier node when the CPL allows it.  Without this pass all extras
    # would be sources, concentrating the graph's entire parallelism at
    # t = 0 — a shape no real application has (and one that makes the
    # S&S baseline look artificially bad).
    def try_add(u: int, v: int) -> bool:
        if u == v or (u, v) in edges or tl[u] + bl[v] > cpl:
            return False
        add_edge(u, v)
        _propagate_levels(u, v, tl, bl, weights, pred, succ)
        return True

    for v in range(1, n):
        if len(edges) >= m:
            break
        if pred[v] or is_backbone[v]:
            continue
        # Prefer close predecessors (geometric-ish window) to build depth.
        for _ in range(20):
            span = max(1, int(rng.geometric(0.15)))
            u = max(0, v - span)
            if try_add(u, v):
                break

    needed = m - len(edges)
    budget = 40 * max(needed, 0) + 1000
    while needed > 0 and budget > 0:
        budget -= 1
        u = int(rng.integers(n - 1))
        v = int(rng.integers(u + 1, n))
        if try_add(u, v):
            needed -= 1
    if needed > 0:
        raise ValueError(f"edge budget exhausted with {needed} edges missing")

    graph = TaskGraph({i: weights[i] for i in range(n)}, sorted(edges),
                      name=name)
    # Paranoia: the construction must hit all four stats exactly.
    assert graph.n == n and graph.m == m
    assert int(round(total_work(graph))) == work
    assert int(round(critical_path_length(graph))) == cpl
    return graph


def _propagate_levels(u: int, v: int, tl: np.ndarray, bl: np.ndarray,
                      weights: np.ndarray,
                      pred: List[List[int]], succ: List[List[int]]) -> None:
    """Propagate level increases caused by adding edge ``(u, v)``."""
    frontier = [v]
    while frontier:
        x = frontier.pop()
        new = weights[x] + max((tl[p] for p in pred[x]), default=0.0)
        if new > tl[x]:
            tl[x] = new
            frontier.extend(succ[x])
    frontier = [u]
    while frontier:
        x = frontier.pop()
        new = weights[x] + max((bl[s] for s in succ[x]), default=0.0)
        if new > bl[x]:
            bl[x] = new
            frontier.extend(pred[x])


def application_graph(name: str, *, seed: int = 2006) -> TaskGraph:
    """The synthetic stand-in for one STG application graph.

    Args:
        name: one of ``"fpppp"``, ``"robot"``, ``"sparse"``.
    """
    try:
        n, m, cpl, work = APPLICATION_STATS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from "
            f"{sorted(APPLICATION_STATS)}") from None
    return synthesize_with_stats(name, n, m, cpl, work, seed=seed)


def application_suite(*, seed: int = 2006) -> Dict[str, TaskGraph]:
    """All three application graphs, keyed by name."""
    return {name: application_graph(name, seed=seed)
            for name in APPLICATION_STATS}
