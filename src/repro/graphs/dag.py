"""Weighted directed acyclic task graphs.

A :class:`TaskGraph` is the application model of the paper (Section 3.1):
nodes are tasks, edges are dependences, node weights are execution times
in *cycles*.  Instances are immutable; transformations return new graphs.

Node identifiers may be any hashable (ints, strings).  Internally every
node also has a dense index ``0..n-1`` in insertion order, and the
schedulers operate on index-based numpy/tuple structures for speed — the
guides' advice: keep the hot loops on flat arrays, not dict lookups.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, \
    Tuple

import numpy as np

__all__ = ["TaskGraph", "CycleError"]

NodeId = Hashable


class CycleError(ValueError):
    """Raised when an edge set contains a directed cycle."""


class TaskGraph:
    """An immutable weighted DAG of tasks.

    Args:
        weights: mapping from node id to execution weight (cycles). Weights
            must be non-negative; zero is allowed (dummy STG entry/exit
            nodes) but at least one node must have positive weight.
        edges: iterable of ``(u, v)`` dependence pairs, meaning *u must
            finish before v starts*.  Duplicate edges are collapsed.
        name: optional label used in reports.

    Raises:
        KeyError: if an edge references an unknown node.
        CycleError: if the edges are not acyclic.
        ValueError: on negative weights or an empty graph.
    """

    __slots__ = (
        "name", "_ids", "_index", "_weights", "_preds", "_succs",
        "_topo", "_n_edges", "_in_degrees", "_weights_list", "_succ_csr",
    )

    def __init__(self, weights: Mapping[NodeId, float],
                 edges: Iterable[Tuple[NodeId, NodeId]] = (),
                 *, name: str = "") -> None:
        if not weights:
            raise ValueError("a task graph needs at least one task")
        self.name = name
        self._ids: Tuple[NodeId, ...] = tuple(weights)
        self._index: Dict[NodeId, int] = {v: i for i, v in enumerate(self._ids)}
        if len(self._index) != len(self._ids):
            raise ValueError("duplicate node ids")
        w = np.asarray([float(weights[v]) for v in self._ids])
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("task weights must be finite and non-negative")
        self._weights = w
        self._weights.setflags(write=False)

        n = len(self._ids)
        pred_sets: list[set[int]] = [set() for _ in range(n)]
        succ_sets: list[set[int]] = [set() for _ in range(n)]
        n_edges = 0
        for u, v in edges:
            ui, vi = self._index[u], self._index[v]
            if ui == vi:
                raise CycleError(f"self-loop on node {u!r}")
            if vi not in succ_sets[ui]:
                succ_sets[ui].add(vi)
                pred_sets[vi].add(ui)
                n_edges += 1
        self._n_edges = n_edges
        self._preds: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in pred_sets)
        self._succs: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in succ_sets)
        self._topo = self._toposort()
        self._in_degrees: Optional[Tuple[int, ...]] = None
        self._weights_list: Optional[Tuple[float, ...]] = None
        self._succ_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, g, *, weight_attr: str = "weight",
                      name: str | None = None) -> "TaskGraph":
        """Build from a ``networkx.DiGraph`` with node weights."""
        weights = {v: g.nodes[v].get(weight_attr, 1.0) for v in g.nodes}
        return cls(weights, g.edges(), name=name if name is not None
                   else str(g.name or ""))

    def to_networkx(self):
        """Convert to a ``networkx.DiGraph`` (weights in node attr ``weight``)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for v in self._ids:
            g.add_node(v, weight=self.weight(v))
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # Basic queries (id level)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self._ids)

    @property
    def m(self) -> int:
        """Number of dependence edges."""
        return self._n_edges

    @property
    def node_ids(self) -> Tuple[NodeId, ...]:
        """All node ids in insertion order."""
        return self._ids

    def __contains__(self, v: NodeId) -> bool:
        return v in self._index

    def __len__(self) -> int:
        return self.n

    def index_of(self, v: NodeId) -> int:
        """Dense index of node ``v``."""
        return self._index[v]

    def id_of(self, i: int) -> NodeId:
        """Node id at dense index ``i``."""
        return self._ids[i]

    def weight(self, v: NodeId) -> float:
        """Execution weight (cycles) of node ``v``."""
        return float(self._weights[self._index[v]])

    def successors(self, v: NodeId) -> Tuple[NodeId, ...]:
        """Direct successors of ``v``."""
        return tuple(self._ids[i] for i in self._succs[self._index[v]])

    def predecessors(self, v: NodeId) -> Tuple[NodeId, ...]:
        """Direct predecessors of ``v``."""
        return tuple(self._ids[i] for i in self._preds[self._index[v]])

    def edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Iterate over all dependence edges ``(u, v)``."""
        for ui, succs in enumerate(self._succs):
            u = self._ids[ui]
            for vi in succs:
                yield (u, self._ids[vi])

    def sources(self) -> Tuple[NodeId, ...]:
        """Nodes without predecessors."""
        return tuple(self._ids[i] for i in range(self.n) if not self._preds[i])

    def sinks(self) -> Tuple[NodeId, ...]:
        """Nodes without successors."""
        return tuple(self._ids[i] for i in range(self.n) if not self._succs[i])

    def topological_order(self) -> Tuple[NodeId, ...]:
        """Node ids in a topological order (deterministic for a given graph)."""
        return tuple(self._ids[i] for i in self._topo)

    # ------------------------------------------------------------------
    # Index-level views for the schedulers (hot path)
    # ------------------------------------------------------------------
    @property
    def weights_array(self) -> np.ndarray:
        """Read-only float array of weights, indexed by dense node index."""
        return self._weights

    @property
    def pred_indices(self) -> Tuple[Tuple[int, ...], ...]:
        """Predecessor indices per dense node index."""
        return self._preds

    @property
    def succ_indices(self) -> Tuple[Tuple[int, ...], ...]:
        """Successor indices per dense node index."""
        return self._succs

    @property
    def topo_indices(self) -> Tuple[int, ...]:
        """A topological order over dense indices."""
        return self._topo

    @property
    def in_degrees(self) -> Tuple[int, ...]:
        """Predecessor count per dense node index (cached).

        The schedulers seed their pending-predecessor counters from
        this on every build; graphs are immutable, so it is computed
        once.
        """
        if self._in_degrees is None:
            self._in_degrees = tuple(len(p) for p in self._preds)
        return self._in_degrees

    @property
    def weights_list(self) -> Tuple[float, ...]:
        """Weights as plain Python floats (cached).

        The schedulers' event loops run on Python scalars; this avoids
        a per-build ``weights_array.tolist()``.
        """
        if self._weights_list is None:
            self._weights_list = tuple(self._weights.tolist())
        return self._weights_list

    @property
    def succ_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Successor lists as a CSR pair ``(flat, offsets)`` (cached).

        ``flat[offsets[v]:offsets[v + 1]]`` are node ``v``'s successor
        indices in ascending order; both arrays are ``intp`` and frozen.
        The array-kernel scheduler (:mod:`repro.sched.jit`) iterates
        this instead of the tuple-of-tuples :attr:`succ_indices`.
        """
        if self._succ_csr is None:
            offsets = np.zeros(len(self._succs) + 1, dtype=np.intp)
            np.cumsum([len(s) for s in self._succs], out=offsets[1:])
            flat = np.array(
                [s for succ in self._succs for s in succ], dtype=np.intp)
            flat.setflags(write=False)
            offsets.setflags(write=False)
            self._succ_csr = (flat, offsets)
        return self._succ_csr

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float, *, name: str | None = None) -> "TaskGraph":
        """Return a copy with every weight multiplied by ``factor``.

        Used to instantiate the paper's coarse-grain (weight 1 = 3.1e6
        cycles) and fine-grain (3.1e4 cycles) scenarios from unit-weight
        STG graphs.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        weights = {v: self.weight(v) * factor for v in self._ids}
        return TaskGraph(weights, self.edges(),
                         name=name if name is not None else self.name)

    def relabeled(self, mapping: Mapping[NodeId, NodeId]) -> "TaskGraph":
        """Return a copy with node ids replaced via ``mapping``."""
        weights = {mapping[v]: self.weight(v) for v in self._ids}
        edges = ((mapping[u], mapping[v]) for u, v in self.edges())
        return TaskGraph(weights, edges, name=self.name)

    # ------------------------------------------------------------------
    def _toposort(self) -> Tuple[int, ...]:
        n = self.n
        indeg = [len(p) for p in self._preds]
        stack = [i for i in range(n) if indeg[i] == 0]
        stack.reverse()  # deterministic: prefer low indices first
        order: list[int] = []
        while stack:
            u = stack.pop()
            order.append(u)
            for v in self._succs[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        if len(order) != n:
            raise CycleError("dependence edges contain a cycle")
        return tuple(order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"TaskGraph({label} n={self.n}, m={self.m})"
