"""Bundled task-graph dataset.

A small set of pregenerated ``.stg`` files ships inside the package so
the examples and quick experiments work without any generation step:
four 50-node and two 100-node random graphs, the three synthetic
application graphs (exact Table 2 statistics), and the MPEG-1 GOP of
Fig. 9 (node ids become integers in file form; weights are cycles for
``mpeg1``, STG units for the rest).
"""

from __future__ import annotations

from importlib import resources
from typing import Dict, List

from .dag import TaskGraph
from .stg import parse_stg, strip_dummies

__all__ = ["bundled_names", "load_bundled", "load_all_bundled"]

_PACKAGE = "repro.data"


def bundled_names() -> List[str]:
    """Names of the bundled graphs (without the ``.stg`` suffix)."""
    root = resources.files(_PACKAGE)
    return sorted(p.name[:-4] for p in root.iterdir()
                  if p.name.endswith(".stg"))


def load_bundled(name: str, *, keep_dummies: bool = False) -> TaskGraph:
    """Load one bundled graph by name.

    Args:
        name: one of :func:`bundled_names`.
        keep_dummies: keep the STG dummy entry/exit nodes.

    Raises:
        FileNotFoundError: for unknown names (the message lists the
            available ones).
    """
    root = resources.files(_PACKAGE)
    candidate = root / f"{name}.stg"
    try:
        text = candidate.read_text()
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no bundled graph {name!r}; available: "
            f"{bundled_names()}") from None
    graph = parse_stg(text, name=name)
    return graph if keep_dummies else strip_dummies(graph)


def load_all_bundled() -> Dict[str, TaskGraph]:
    """All bundled graphs, keyed by name."""
    return {name: load_bundled(name) for name in bundled_names()}
