"""Random task-graph generators.

The paper evaluates on the Standard Task Graph Set (STG): 2700 randomly
generated graphs in size groups of 180, plus three application graphs.
The STG files are not redistributable, so this module synthesises graphs
whose statistics match the published Table 2 per group: integer weights in
[1, 300] with small means (the table's total-work column implies mean
weights of roughly 4–13), and edge structures ranging from near-chains to
dense "sameprob" DAGs, producing the table's wide CPL spans.

Everything is deterministic given a seed; groups are reproducible
workload registries, not ephemeral fixtures.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from .dag import TaskGraph

__all__ = [
    "chain",
    "independent_tasks",
    "fork_join",
    "layered_dag",
    "sameprob_dag",
    "samepred_dag",
    "layrpred_dag",
    "stg_random_graph",
    "stg_group",
    "parallel_chains",
    "parallelism_sweep",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _stg_weights(n: int, rng: np.random.Generator, *,
                 mean: float | None = None, wmax: int = 300) -> np.ndarray:
    """Integer weights in [1, wmax] with an STG-like skewed distribution."""
    if mean is None:
        mean = float(rng.uniform(4.0, 12.0))
    raw = rng.exponential(scale=max(mean - 1.0, 0.5), size=n)
    return np.clip(np.rint(raw) + 1, 1, wmax).astype(float)


# ---------------------------------------------------------------------------
# Structural building blocks
# ---------------------------------------------------------------------------
def chain(n: int, *, weights: Sequence[float] | None = None,
          name: str = "chain") -> TaskGraph:
    """A linear chain of ``n`` tasks (average parallelism exactly 1)."""
    if n < 1:
        raise ValueError("chain needs at least one task")
    w = list(weights) if weights is not None else [1.0] * n
    if len(w) != n:
        raise ValueError("weights length must equal n")
    return TaskGraph({i: w[i] for i in range(n)},
                     [(i, i + 1) for i in range(n - 1)], name=name)


def independent_tasks(n: int, *, weights: Sequence[float] | None = None,
                      name: str = "independent") -> TaskGraph:
    """``n`` tasks with no dependences (parallelism = n for equal weights)."""
    if n < 1:
        raise ValueError("need at least one task")
    w = list(weights) if weights is not None else [1.0] * n
    return TaskGraph({i: w[i] for i in range(n)}, [], name=name)


def fork_join(width: int, depth: int, *, weight: float = 1.0,
              name: str = "fork-join") -> TaskGraph:
    """``depth`` stages of ``width`` parallel tasks between fork/join nodes.

    Node count is ``depth * width + depth + 1`` (a join after each stage).
    """
    if width < 1 or depth < 1:
        raise ValueError("width and depth must be >= 1")
    weights: dict = {"src": weight}
    edges: list = []
    prev = "src"
    for d in range(depth):
        stage = [f"s{d}_{i}" for i in range(width)]
        join = f"j{d}"
        for v in stage:
            weights[v] = weight
            edges.append((prev, v))
            edges.append((v, join))
        weights[join] = weight
        prev = join
    return TaskGraph(weights, edges, name=name)


def layered_dag(n: int, layers: int, rng_or_seed=0, *,
                edge_prob: float = 0.5, wmax: int = 300,
                mean_weight: float | None = None,
                name: str = "layered") -> TaskGraph:
    """Random layered DAG: edges only between consecutive layers.

    Tasks are split over ``layers`` layers of near-equal size; each
    cross-layer pair is wired with probability ``edge_prob``, and every
    non-first-layer node is guaranteed at least one predecessor so the
    depth is really ``layers``.
    """
    if not 1 <= layers <= n:
        raise ValueError(f"need 1 <= layers <= n, got layers={layers}, n={n}")
    rng = _rng(rng_or_seed)
    w = _stg_weights(n, rng, mean=mean_weight, wmax=wmax)
    sizes = np.full(layers, n // layers)
    sizes[: n % layers] += 1
    boundaries = np.concatenate([[0], np.cumsum(sizes)])
    edges: List[tuple] = []
    for layer in range(1, layers):
        prev = range(boundaries[layer - 1], boundaries[layer])
        cur = range(boundaries[layer], boundaries[layer + 1])
        prev_list = list(prev)
        for v in cur:
            picked = [u for u in prev_list if rng.random() < edge_prob]
            if not picked:
                picked = [prev_list[int(rng.integers(len(prev_list)))]]
            edges.extend((u, v) for u in picked)
    return TaskGraph({i: w[i] for i in range(n)}, edges, name=name)


def sameprob_dag(n: int, edge_prob: float, rng_or_seed=0, *,
                 wmax: int = 300, mean_weight: float | None = None,
                 name: str = "sameprob") -> TaskGraph:
    """STG "sameprob" method: every forward pair is an edge w.p. ``edge_prob``.

    Dense vectorized sampling over the upper triangle — this is the hot
    generator for the 5000-node groups.
    """
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError(f"edge_prob must be in [0, 1], got {edge_prob}")
    rng = _rng(rng_or_seed)
    w = _stg_weights(n, rng, mean=mean_weight, wmax=wmax)
    mask = rng.random((n, n)) < edge_prob
    mask[np.tril_indices(n)] = False
    us, vs = np.nonzero(mask)
    edges = list(zip(us.tolist(), vs.tolist()))
    return TaskGraph({i: w[i] for i in range(n)}, edges, name=name)


def samepred_dag(n: int, mean_preds: float, rng_or_seed=0, *,
                 wmax: int = 300, mean_weight: float | None = None,
                 name: str = "samepred") -> TaskGraph:
    """STG "samepred" method: each task draws its in-degree.

    Task ``v`` receives ``k ~ Poisson(mean_preds)`` predecessors chosen
    uniformly among tasks ``0..v-1`` (clipped to what exists).  Unlike
    "sameprob", the expected in-degree does not grow with ``n``.
    """
    if mean_preds < 0:
        raise ValueError("mean_preds must be >= 0")
    rng = _rng(rng_or_seed)
    w = _stg_weights(n, rng, mean=mean_weight, wmax=wmax)
    edges: List[tuple] = []
    for v in range(1, n):
        k = min(v, int(rng.poisson(mean_preds)))
        if k:
            preds = rng.choice(v, size=k, replace=False)
            edges.extend((int(u), v) for u in preds)
    return TaskGraph({i: w[i] for i in range(n)}, edges, name=name)


def layrpred_dag(n: int, layers: int, mean_preds: float, rng_or_seed=0, *,
                 wmax: int = 300, mean_weight: float | None = None,
                 name: str = "layrpred") -> TaskGraph:
    """STG "layrpred" method: layered graph with drawn in-degrees.

    Like :func:`layered_dag` but each node picks
    ``max(1, Poisson(mean_preds))`` predecessors from the previous
    layer instead of wiring each pair with a fixed probability.
    """
    if not 1 <= layers <= n:
        raise ValueError(f"need 1 <= layers <= n, got layers={layers}")
    if mean_preds < 0:
        raise ValueError("mean_preds must be >= 0")
    rng = _rng(rng_or_seed)
    w = _stg_weights(n, rng, mean=mean_weight, wmax=wmax)
    sizes = np.full(layers, n // layers)
    sizes[: n % layers] += 1
    boundaries = np.concatenate([[0], np.cumsum(sizes)])
    edges: List[tuple] = []
    for layer in range(1, layers):
        prev = list(range(boundaries[layer - 1], boundaries[layer]))
        cur = range(boundaries[layer], boundaries[layer + 1])
        for v in cur:
            k = min(len(prev), max(1, int(rng.poisson(mean_preds))))
            preds = rng.choice(len(prev), size=k, replace=False)
            edges.extend((prev[int(i)], v) for i in preds)
    return TaskGraph({i: w[i] for i in range(n)}, edges, name=name)


# ---------------------------------------------------------------------------
# STG-like groups
# ---------------------------------------------------------------------------
def stg_random_graph(n: int, rng_or_seed=0, *, name: str = "") -> TaskGraph:
    """One random graph in the style of the STG set's random graphs.

    Mixes the set's generation methods: with equal probability a
    "sameprob" DAG with a log-uniform edge probability, or a layered DAG
    whose depth spans shallow (wide, high parallelism) to deep (near the
    work-bound CPL).  Weight means are sampled per graph, reproducing the
    small total-work figures of Table 2.
    """
    rng = _rng(rng_or_seed)
    label = name or f"rand{n}"
    method = rng.random()
    if method < 0.35:
        # Edge probability spanning sparse to dense; denser graphs have
        # longer critical paths (more forced orderings).
        p = float(np.exp(rng.uniform(np.log(2.0 / n), np.log(0.4))))
        return sameprob_dag(n, p, rng, name=label)
    if method < 0.5:
        return samepred_dag(n, float(rng.uniform(0.5, 4.0)), rng,
                            name=label)
    depth_frac = float(rng.uniform(0.05, 0.9))
    layers = min(n, max(2, int(round(n * depth_frac))))
    if method < 0.75:
        return layered_dag(n, layers, rng,
                           edge_prob=float(rng.uniform(0.1, 0.8)),
                           name=label)
    return layrpred_dag(n, layers, float(rng.uniform(1.0, 3.0)), rng,
                        name=label)


def stg_group(n: int, count: int = 180, *, seed: int = 0) -> List[TaskGraph]:
    """A reproducible group of ``count`` STG-like graphs with ``n`` nodes.

    Mirrors the STG set's organisation (180 graphs per size class).  The
    seed stream is derived from ``(seed, n)`` so different groups are
    independent but individually stable.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    root = np.random.default_rng(np.random.SeedSequence((seed, n)))
    children = root.spawn(count)
    return [stg_random_graph(n, child, name=f"rand{n}_{i:03d}")
            for i, child in enumerate(children)]


# ---------------------------------------------------------------------------
# Parallelism-targeted graphs (Figs. 12–13)
# ---------------------------------------------------------------------------
def parallel_chains(n_chains: int, chain_len: int, rng_or_seed=0, *,
                    cross_prob: float = 0.1, wmax: int = 300,
                    mean_weight: float | None = None,
                    name: str = "") -> TaskGraph:
    """``n_chains`` parallel chains with light cross-coupling.

    Average parallelism is ≈ ``n_chains`` (exact for equal weights and no
    crossings).  Cross edges go from position ``k`` of one chain to
    position ``k + 1`` of another, which cannot lengthen the critical
    path beyond one chain's span in node count.
    """
    if n_chains < 1 or chain_len < 1:
        raise ValueError("n_chains and chain_len must be >= 1")
    rng = _rng(rng_or_seed)
    n = n_chains * chain_len
    w = _stg_weights(n, rng, mean=mean_weight, wmax=wmax)
    node = lambda c, k: c * chain_len + k  # noqa: E731 - tiny index helper
    edges: List[tuple] = []
    for c in range(n_chains):
        edges.extend((node(c, k), node(c, k + 1)) for k in range(chain_len - 1))
    if n_chains > 1 and cross_prob > 0.0:
        for c in range(n_chains):
            for k in range(chain_len - 1):
                if rng.random() < cross_prob:
                    other = int(rng.integers(n_chains - 1))
                    other += other >= c
                    edges.append((node(c, k), node(other, k + 1)))
    label = name or f"chains{n_chains}x{chain_len}"
    return TaskGraph({i: w[i] for i in range(n)}, edges, name=label)


def parallelism_sweep(*, n_nodes: int = 1000, max_parallelism: int = 50,
                      graphs: int = 60, seed: int = 0) -> List[TaskGraph]:
    """Graphs of ``n_nodes`` spanning a range of average parallelism.

    The data behind the paper's Figs. 12–13: random STG-style graphs
    (the paper uses its random set's 1000–3000-node graphs), whose mix
    of deep layered and "sameprob" structures naturally spans average
    parallelism from ~1 to several tens.  Graphs above
    ``max_parallelism`` are redrawn (a few attempts), then kept as-is —
    the sweep is a scatter, not a grid.
    """
    from .analysis import average_parallelism

    root = np.random.default_rng(np.random.SeedSequence((seed, n_nodes)))
    out: List[TaskGraph] = []
    for i, child in enumerate(root.spawn(graphs)):
        g = stg_random_graph(n_nodes, child, name=f"par{n_nodes}_{i:03d}")
        for _ in range(4):
            if average_parallelism(g) <= max_parallelism:
                break
            g = stg_random_graph(n_nodes, child,
                                 name=f"par{n_nodes}_{i:03d}")
        out.append(g)
    return out


#: Registry of generator callables by name, for CLI/experiment wiring.
GENERATORS: dict[str, Callable[..., TaskGraph]] = {
    "chain": chain,
    "independent": independent_tasks,
    "fork_join": fork_join,
    "layered": layered_dag,
    "sameprob": sameprob_dag,
    "stg_random": stg_random_graph,
    "parallel_chains": parallel_chains,
}
