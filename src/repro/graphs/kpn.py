"""Kahn Process Networks and their unrolling into deadline-annotated DAGs.

Section 3.1 of the paper describes how a KPN — a network of infinite
processes connected by FIFO channels with a required *throughput* — is
converted to the weighted-DAG-with-deadline model:

* make ``k`` copies of the network;
* a channel ``a -> b`` becomes an edge from copy ``i`` of ``a`` to copy
  ``i`` of ``b`` (or to copy ``i+1`` when the channel carries a one-
  iteration delay, like the ``T2 -> T3`` example in Fig. 1);
* an edge from copy ``i`` to copy ``i+1`` of every node models inputs
  arriving one period apart;
* output nodes of copy ``i`` get deadline ``first_deadline + i/throughput``.

The resulting :class:`UnrolledKPN` carries per-task deadlines that the
scheduling layer consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from .dag import TaskGraph

__all__ = ["Channel", "ProcessNetwork", "UnrolledKPN"]


@dataclass(frozen=True, slots=True)
class Channel:
    """A FIFO channel between two KPN processes.

    Attributes:
        src, dst: process names.
        delay: number of iterations of initial tokens on the channel.  A
            delay of ``d`` means iteration ``i`` of ``dst`` consumes the
            output of iteration ``i - d`` of ``src`` (Fig. 1's feedback
            channel has delay 1).
    """

    src: str
    dst: str
    delay: int = 0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"channel delay must be >= 0, got {self.delay}")


@dataclass(frozen=True)
class UnrolledKPN:
    """A KPN unrolled to a finite DAG plus per-task deadlines.

    Attributes:
        graph: the unrolled task graph; node ids are ``(process, copy)``.
        deadlines: absolute deadline (cycles) for each *output* task; the
            scheduler propagates these backwards to every task.
        horizon: the largest deadline — the energy-accounting window.
    """

    graph: TaskGraph
    deadlines: Mapping[Hashable, float]
    horizon: float


class ProcessNetwork:
    """A Kahn Process Network with per-iteration task weights.

    Args:
        processes: mapping process name -> execution weight per iteration
            (cycles).
        channels: data channels; self-channels with delay >= 1 are allowed
            (state carried across iterations).
        outputs: names of the processes whose completion constitutes one
            network output; defaults to all sink processes of the
            zero-delay channel graph.

    Example:
        The paper's Fig. 1 network::

            net = ProcessNetwork(
                {"T1": 10, "T2": 20, "T3": 15},
                [Channel("T1", "T2"), Channel("T3", "T2"),
                 Channel("T2", "T3", delay=1)])
    """

    def __init__(self, processes: Mapping[str, float],
                 channels: Sequence[Channel],
                 *, outputs: Sequence[str] | None = None) -> None:
        if not processes:
            raise ValueError("a process network needs at least one process")
        for name, w in processes.items():
            if w <= 0:
                raise ValueError(f"process {name!r} needs positive weight")
        self.processes: Dict[str, float] = dict(processes)
        for ch in channels:
            if ch.src not in self.processes or ch.dst not in self.processes:
                raise KeyError(f"channel {ch} references unknown process")
            if ch.src == ch.dst and ch.delay == 0:
                raise ValueError(f"zero-delay self-channel on {ch.src!r}")
        self.channels: Tuple[Channel, ...] = tuple(channels)
        if outputs is None:
            has_out = {ch.src for ch in self.channels if ch.delay == 0}
            outputs = [p for p in self.processes if p not in has_out]
        for p in outputs:
            if p not in self.processes:
                raise KeyError(f"unknown output process {p!r}")
        if not outputs:
            raise ValueError("no output processes")
        self.outputs: Tuple[str, ...] = tuple(outputs)

    # ------------------------------------------------------------------
    def unroll(self, copies: int, *, period: float,
               first_deadline: float) -> UnrolledKPN:
        """Unroll ``copies`` iterations into a DAG with deadlines.

        Args:
            copies: number of network iterations to instantiate.
            period: reciprocal of the required throughput (cycles between
                successive outputs, measured at full speed).
            first_deadline: absolute deadline of the first copy's outputs
                (cycles at full speed).

        Raises:
            ValueError: on non-positive arguments or if a channel delay
                exceeds the number of copies.
        """
        if copies < 1:
            raise ValueError("copies must be >= 1")
        if period <= 0 or first_deadline <= 0:
            raise ValueError("period and first_deadline must be positive")

        weights: Dict[Tuple[str, int], float] = {}
        edges: List[Tuple[Tuple[str, int], Tuple[str, int]]] = []
        for i in range(copies):
            for name, w in self.processes.items():
                weights[(name, i)] = w
                if i > 0:
                    # Successive inputs arrive one period apart (Fig. 1).
                    edges.append(((name, i - 1), (name, i)))
            for ch in self.channels:
                j = i + ch.delay
                if j < copies:
                    edges.append(((ch.src, i), (ch.dst, j)))
        graph = TaskGraph(weights, edges, name="kpn")
        deadlines = {
            (p, i): first_deadline + i * period
            for p in self.outputs for i in range(copies)
        }
        horizon = first_deadline + (copies - 1) * period
        return UnrolledKPN(graph=graph, deadlines=deadlines, horizon=horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProcessNetwork({len(self.processes)} processes, "
                f"{len(self.channels)} channels)")
