"""Workload characterization beyond the Table 2 aggregates.

The paper characterises graphs by size, CPL, work and average
parallelism.  Two finer-grained quantities explain *why* the heuristics
behave as they do on a given graph:

* the **width profile** — how many tasks run concurrently over the
  ASAP (infinite-processor) schedule.  Its maximum is exactly the
  processor count S&S employs, and the gap between maximum width and
  average parallelism is the over-provisioning that Fig. 12 charges
  S&S for;
* the **slack distribution** — per-task scheduling freedom
  (ALAP − ASAP start) at a given deadline, which predicts how much
  reordering/stretching room a heuristic has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .analysis import alap_times, asap_times, critical_path_length, \
    total_work
from .dag import TaskGraph

__all__ = ["width_profile", "max_width", "width_statistics",
           "slack_distribution", "WorkloadProfile", "profile"]


def width_profile(graph: TaskGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Concurrency over time of the ASAP schedule.

    Returns ``(times, widths)``: at ``times[i]`` the number of
    simultaneously executing tasks becomes ``widths[i]`` and stays there
    until ``times[i+1]``.  Covers ``[0, CPL)``.
    """
    start = asap_times(graph)
    finish = start + graph.weights_array
    events: List[Tuple[float, int]] = []
    for i in range(graph.n):
        if graph.weights_array[i] > 0:
            events.append((float(start[i]), +1))
            events.append((float(finish[i]), -1))
    events.sort()
    times: List[float] = []
    widths: List[int] = []
    level = 0
    for t, delta in events:
        level += delta
        if times and times[-1] == t:
            widths[-1] = level
        else:
            times.append(t)
            widths.append(level)
    # The last event is the final task's finish at t = CPL, where the
    # width drops to zero — outside the covered half-open interval.
    while widths and widths[-1] == 0:
        times.pop()
        widths.pop()
    return np.array(times), np.array(widths)


def max_width(graph: TaskGraph) -> int:
    """Peak concurrency of the ASAP schedule.

    This equals the processor count a work-conserving scheduler on
    unlimited processors employs — i.e. what S&S pays for.
    """
    _, widths = width_profile(graph)
    return int(widths.max()) if widths.size else 0


def width_statistics(graph: TaskGraph) -> Tuple[float, int]:
    """(time-averaged width, maximum width).

    The time-averaged width equals ``total work / CPL`` — the paper's
    average parallelism — which this function asserts as a consistency
    check of the profile construction.
    """
    times, widths = width_profile(graph)
    if times.size == 0:
        return 0.0, 0
    cpl = critical_path_length(graph)
    spans = np.diff(np.append(times, cpl))
    avg = float((widths * spans).sum() / cpl)
    expect = total_work(graph) / cpl
    assert abs(avg - expect) < 1e-6 * max(1.0, expect), \
        "width profile inconsistent with work/CPL"
    return avg, int(widths.max())


def slack_distribution(graph: TaskGraph, deadline: float) -> np.ndarray:
    """Per-task scheduling slack ``ALAP start − ASAP start`` (cycles).

    Zero for critical-path tasks at ``deadline == CPL``; grows with the
    deadline.  Indexed by dense node index.
    """
    return alap_times(graph, deadline) - asap_times(graph)


@dataclass(frozen=True)
class WorkloadProfile:
    """A characterization summary of one task graph.

    Attributes:
        name: graph label.
        n, m: node/edge counts.
        cpl, work: critical path and total work (cycles).
        avg_parallelism: work / CPL (time-averaged width).
        max_width: ASAP peak concurrency.
        burstiness: ``max_width / avg_parallelism`` — 1.0 means a flat
            profile (parallel chains); large values mean concentrated
            bursts that make S&S over-provision.
    """

    name: str
    n: int
    m: int
    cpl: float
    work: float
    avg_parallelism: float
    max_width: int

    @property
    def burstiness(self) -> float:
        return self.max_width / self.avg_parallelism


def profile(graph: TaskGraph) -> WorkloadProfile:
    """Compute the :class:`WorkloadProfile` of ``graph``."""
    avg, peak = width_statistics(graph)
    return WorkloadProfile(
        name=graph.name, n=graph.n, m=graph.m,
        cpl=critical_path_length(graph), work=total_work(graph),
        avg_parallelism=avg, max_width=peak)
