"""The MPEG-1 encoding task graph of the paper's Fig. 9.

One group of pictures (GOP) of 15 frames, ``I0 B1 B2 P3 B4 B5 P6 B7 B8
P9 B10 B11 P12 B13 B14``, with the worst-case execution times of the
Tennis sequence from Zhu et al. (scaled to a 3.1 GHz clock, as the paper
does): I = 36 700 900, B = 178 259 300, P = 73 401 800 cycles.

Dependences (standard MPEG anchor structure, matching Fig. 9):

* each P frame depends on the previous anchor (I or P);
* each B frame depends on the anchors on both sides — the preceding
  anchor and the following P when one exists inside the GOP (the trailing
  B13/B14 depend only on P12).

The real-time requirement is 30 frames/s, i.e. a deadline of 0.5 s per
15-frame GOP.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .dag import TaskGraph

__all__ = [
    "I_FRAME_CYCLES", "B_FRAME_CYCLES", "P_FRAME_CYCLES",
    "GOP_PATTERN", "MPEG_DEADLINE_SECONDS", "mpeg1_gop_graph",
]

I_FRAME_CYCLES = 36_700_900
B_FRAME_CYCLES = 178_259_300
P_FRAME_CYCLES = 73_401_800

#: Frame types of one 15-frame GOP in display order (Fig. 9).
GOP_PATTERN = "IBBPBBPBBPBBPBB"

#: Real-time deadline for one GOP at 30 frames per second (seconds).
MPEG_DEADLINE_SECONDS = 0.5

_CYCLES = {"I": I_FRAME_CYCLES, "B": B_FRAME_CYCLES, "P": P_FRAME_CYCLES}


def mpeg1_gop_graph(*, gops: int = 1, pattern: str = GOP_PATTERN) -> TaskGraph:
    """Build the MPEG-1 encoding DAG for ``gops`` consecutive GOPs.

    Args:
        gops: number of 15-frame groups; successive GOPs are closed (no
            cross-GOP dependences), matching the paper's single-GOP
            experiment when ``gops=1``.
        pattern: frame-type string; must start with ``I`` and contain only
            ``I``/``B``/``P``.

    Returns:
        A :class:`TaskGraph` whose node ids are strings like ``"I0"``,
        ``"B1"``, ``"P3"`` (with a ``gN_`` prefix when ``gops > 1``).
    """
    if gops < 1:
        raise ValueError("gops must be >= 1")
    if not pattern or pattern[0] != "I" or set(pattern) - set("IBP"):
        raise ValueError(f"invalid GOP pattern {pattern!r}")

    weights: Dict[str, float] = {}
    edges: List[Tuple[str, str]] = []
    for g in range(gops):
        prefix = f"g{g}_" if gops > 1 else ""
        names = [f"{prefix}{t}{i}" for i, t in enumerate(pattern)]
        for name, t in zip(names, pattern):
            weights[name] = float(_CYCLES[t])
        anchors = [i for i, t in enumerate(pattern) if t in "IP"]
        # P chain: every anchor after the first depends on the previous one.
        for prev, cur in zip(anchors[:-1], anchors[1:]):
            edges.append((names[prev], names[cur]))
        # B frames reference the surrounding anchors.
        for i, t in enumerate(pattern):
            if t != "B":
                continue
            before = [a for a in anchors if a < i]
            after = [a for a in anchors if a > i]
            if before:
                edges.append((names[before[-1]], names[i]))
            if after:
                edges.append((names[after[0]], names[i]))
    return TaskGraph(weights, edges,
                     name="mpeg1" if gops == 1 else f"mpeg1x{gops}")
