"""Frame-based translation of periodic task sets to DAGs.

Section 3.1 cites Liberato et al.: "real-time applications with
periodic tasks can be translated to DAGs using the frame-based
scheduling paradigm".  This module implements that translation: the
jobs of all periodic tasks within one hyperperiod become DAG nodes,
each with a deadline override at its own period boundary, and optional
precedence between successive jobs of the same task.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from .dag import TaskGraph

__all__ = ["PeriodicTask", "FrameBasedWorkload", "hyperperiod",
           "frame_based_dag"]


@dataclass(frozen=True, slots=True)
class PeriodicTask:
    """One periodic real-time task.

    Attributes:
        name: identifier.
        wcet: worst-case execution time per job (cycles at f_max).
        period: release period (cycles at f_max).  The relative deadline
            equals the period (implicit-deadline model, as in the
            paper's cited single-processor works).
    """

    name: str
    wcet: float
    period: float

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise ValueError(f"task {self.name!r}: wcet must be positive")
        if self.period < self.wcet:
            raise ValueError(
                f"task {self.name!r}: period {self.period:g} below "
                f"wcet {self.wcet:g}")

    @property
    def utilization(self) -> float:
        """``wcet / period`` at the reference frequency."""
        return self.wcet / self.period


def hyperperiod(tasks: Sequence[PeriodicTask]) -> float:
    """Least common multiple of the task periods.

    Periods must be integers (in cycles) for the LCM to be meaningful;
    non-integral periods raise.
    """
    if not tasks:
        raise ValueError("need at least one periodic task")
    result = 1
    for t in tasks:
        if t.period != int(t.period):
            raise ValueError(
                f"task {t.name!r}: period must be an integral number "
                f"of cycles for a hyperperiod to exist")
        result = math.lcm(result, int(t.period))
    return float(result)


@dataclass(frozen=True)
class FrameBasedWorkload:
    """A periodic task set unrolled over one hyperperiod.

    Attributes:
        graph: the frame DAG; node ids are ``(task_name, job_index)``.
        deadlines: absolute deadline (reference cycles) per job.
        horizon: the hyperperiod — the scheduling window and the
            graph-level deadline.
        releases: absolute release time per job (informational; the
            release constraint is modelled by the job-chain edges).
    """

    graph: TaskGraph
    deadlines: Mapping[Hashable, float]
    horizon: float
    releases: Mapping[Hashable, float]

    @property
    def utilization(self) -> float:
        """Total work over the hyperperiod divided by the hyperperiod."""
        return float(self.graph.weights_array.sum()) / self.horizon


def frame_based_dag(tasks: Sequence[PeriodicTask], *,
                    chain_jobs: bool = True) -> FrameBasedWorkload:
    """Unroll a periodic task set into a deadline-annotated DAG.

    Args:
        tasks: the periodic tasks (unique names required).
        chain_jobs: add an edge between successive jobs of the same task
            (job *k+1* cannot start before job *k* finishes — the usual
            non-reentrant task model).  Release times beyond that are
            enforced through the deadline of the *previous* job, which
            is exactly the frame-based approximation.

    Returns:
        A :class:`FrameBasedWorkload` whose ``graph`` plus ``deadlines``
        feed directly into :func:`repro.core.schedule` via
        ``deadline_overrides``.
    """
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError("periodic task names must be unique")
    h = hyperperiod(tasks)
    weights: Dict[Tuple[str, int], float] = {}
    edges: List[Tuple[Tuple[str, int], Tuple[str, int]]] = []
    deadlines: Dict[Tuple[str, int], float] = {}
    releases: Dict[Tuple[str, int], float] = {}
    for t in tasks:
        n_jobs = int(round(h / t.period))
        for k in range(n_jobs):
            job = (t.name, k)
            weights[job] = t.wcet
            releases[job] = k * t.period
            deadlines[job] = (k + 1) * t.period
            if chain_jobs and k > 0:
                edges.append(((t.name, k - 1), job))
    graph = TaskGraph(weights, edges, name="periodic")
    return FrameBasedWorkload(graph=graph, deadlines=deadlines,
                              horizon=h, releases=releases)
