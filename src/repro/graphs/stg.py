"""Reader/writer for the Standard Task Graph Set (STG) file format.

The paper evaluates on Kasahara et al.'s Standard Task Graph Set.  Those
files cannot be redistributed here, so the generators in
:mod:`repro.graphs.generators` synthesise statistically matching graphs —
but this module implements the real on-disk format so that anyone *with*
the STG files can feed them straight into the heuristics.

Format (one graph per file)::

    <n>                      number of tasks, excluding the two dummies
    0      0   0             task-id  processing-time  #preds [pred ...]
    1      7   1   0
    ...
    <n+1>  0   2   13 42     dummy exit, depends on all leaves

Task 0 is a zero-weight dummy entry and task ``n+1`` a zero-weight dummy
exit.  Lines whose first non-blank character is ``#`` are comments.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from .dag import TaskGraph

__all__ = ["parse_stg", "load_stg", "format_stg", "save_stg", "strip_dummies"]


class STGFormatError(ValueError):
    """Raised when an STG file cannot be parsed."""


def _tokenize(text: str) -> List[List[str]]:
    rows: List[List[str]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        rows.append(line.split())
    return rows


def parse_stg(text: str, *, name: str = "") -> TaskGraph:
    """Parse STG text into a :class:`TaskGraph` (dummies included).

    Node ids are the integer task numbers from the file.

    Raises:
        STGFormatError: on malformed input (bad counts, unknown
            predecessors, wrong record lengths).
    """
    rows = _tokenize(text)
    if not rows:
        raise STGFormatError("empty STG input")
    header = rows[0]
    if len(header) != 1:
        raise STGFormatError(f"expected a single task count, got {header!r}")
    try:
        declared = int(header[0])
    except ValueError as exc:
        raise STGFormatError(f"bad task count {header[0]!r}") from exc

    weights: dict[int, float] = {}
    edges: List[Tuple[int, int]] = []
    for row in rows[1:]:
        if len(row) < 3:
            raise STGFormatError(f"short task record: {row!r}")
        try:
            task = int(row[0])
            proc_time = float(row[1])
            n_preds = int(row[2])
            preds = [int(tok) for tok in row[3:]]
        except ValueError as exc:
            raise STGFormatError(f"bad task record: {row!r}") from exc
        if len(preds) != n_preds:
            raise STGFormatError(
                f"task {task}: declared {n_preds} predecessors, "
                f"listed {len(preds)}")
        if task in weights:
            raise STGFormatError(f"duplicate task id {task}")
        weights[task] = proc_time
        edges.extend((p, task) for p in preds)

    if len(weights) not in (declared, declared + 2):
        raise STGFormatError(
            f"header declares {declared} tasks but file lists {len(weights)} "
            f"(expected {declared} or {declared}+2 with dummies)")
    for u, v in edges:
        if u not in weights:
            raise STGFormatError(f"task {v} references unknown predecessor {u}")
    return TaskGraph(weights, edges, name=name)


def load_stg(path: Union[str, Path]) -> TaskGraph:
    """Read an STG file from disk; the graph is named after the file stem."""
    p = Path(path)
    return parse_stg(p.read_text(), name=p.stem)


def format_stg(graph: TaskGraph, *, with_dummies: bool = True) -> str:
    """Serialise a graph in STG format.

    Nodes are renumbered to consecutive integers in topological order.
    When ``with_dummies`` is true (the STG convention), a zero-weight
    entry (0) and exit (n+1) are added around the real tasks.
    """
    order = graph.topological_order()
    if with_dummies:
        number = {v: i + 1 for i, v in enumerate(order)}
    else:
        number = {v: i for i, v in enumerate(order)}

    out = io.StringIO()
    out.write(f"{graph.n}\n")

    def record(task: int, weight: float, preds: Iterable[int]) -> None:
        plist = sorted(preds)
        w = int(weight) if float(weight).is_integer() else weight
        out.write(f"{task:>7} {w:>11} {len(plist):>7}")
        for p in plist:
            out.write(f" {p}")
        out.write("\n")

    if with_dummies:
        record(0, 0, [])
        for v in order:
            preds = [number[p] for p in graph.predecessors(v)] or [0]
            record(number[v], graph.weight(v), preds)
        exit_preds = [number[v] for v in graph.sinks()]
        record(graph.n + 1, 0, exit_preds)
    else:
        for v in order:
            record(number[v], graph.weight(v),
                   (number[p] for p in graph.predecessors(v)))
    return out.getvalue()


def save_stg(graph: TaskGraph, path: Union[str, Path], *,
             with_dummies: bool = True) -> None:
    """Write a graph to disk in STG format."""
    Path(path).write_text(format_stg(graph, with_dummies=with_dummies))


def strip_dummies(graph: TaskGraph) -> TaskGraph:
    """Remove zero-weight dummy entry/exit nodes (STG convention).

    A node is a dummy if it has zero weight and is a pure source or a pure
    sink.  Edges through dummies carry no constraint beyond what the
    remaining edges imply, so they are simply dropped.
    """
    dummies = {
        v for v in graph.node_ids
        if graph.weight(v) == 0.0
        and (not graph.predecessors(v) or not graph.successors(v))
    }
    if not dummies:
        return graph
    keep = [v for v in graph.node_ids if v not in dummies]
    if not keep:
        raise ValueError("graph consists solely of dummy nodes")
    weights = {v: graph.weight(v) for v in keep}
    edges = [(u, v) for u, v in graph.edges()
             if u not in dummies and v not in dummies]
    return TaskGraph(weights, edges, name=graph.name)
