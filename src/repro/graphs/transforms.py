"""Task-graph transformations.

Utilities a scheduling practitioner applies before/around the
heuristics:

* :func:`linear_cluster` — merge chains of single-successor /
  single-predecessor tasks into one task.  Turns fine-grain graphs into
  coarser ones without changing the critical path, directly addressing
  the paper's fine-grain weakness (short idle gaps defeat PS).
* :func:`transitive_reduction` — drop redundant dependence edges.
* :func:`weight_jitter` — perturb execution times, for robustness
  studies of schedules against worst-case-vs-actual time variation
  (Section 3.1 notes execution times are upper bounds).
* :func:`merge_graphs` — disjoint union of workloads sharing a deadline.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from .dag import TaskGraph

__all__ = ["linear_cluster", "transitive_reduction", "weight_jitter",
           "merge_graphs"]


def linear_cluster(graph: TaskGraph) -> TaskGraph:
    """Merge maximal linear chains into single tasks.

    A pair ``u -> v`` merges when ``u`` has exactly one successor and
    ``v`` exactly one predecessor; merged ids become tuples of the
    original ids, weights add.  The critical path length is invariant;
    the task count (and thus per-task scheduling overhead and the gap
    fragmentation the paper blames for fine-grain PS failure) drops.
    """
    # Union-find over chain merges.
    parent: Dict[Hashable, Hashable] = {v: v for v in graph.node_ids}

    def find(x: Hashable) -> Hashable:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u in graph.node_ids:
        succs = graph.successors(u)
        if len(succs) == 1 and len(graph.predecessors(succs[0])) == 1:
            parent[find(succs[0])] = find(u)

    groups: Dict[Hashable, List[Hashable]] = {}
    for v in graph.node_ids:  # insertion order = stable member order
        groups.setdefault(find(v), []).append(v)

    def cluster_id(root: Hashable) -> Hashable:
        members = groups[root]
        return members[0] if len(members) == 1 else tuple(members)

    ids = {root: cluster_id(root) for root in groups}
    weights = {ids[root]: sum(graph.weight(v) for v in members)
               for root, members in groups.items()}
    edges = set()
    for u, v in graph.edges():
        ru, rv = find(u), find(v)
        if ru != rv:
            edges.add((ids[ru], ids[rv]))
    return TaskGraph(weights, edges,
                     name=f"{graph.name}+clustered" if graph.name
                     else "clustered")


def transitive_reduction(graph: TaskGraph) -> TaskGraph:
    """Remove edges implied by longer paths (same precedence relation).

    Uses networkx's transitive reduction on the edge structure.
    """
    import networkx as nx

    g = nx.DiGraph(list(graph.edges()))
    g.add_nodes_from(graph.node_ids)
    reduced = nx.transitive_reduction(g)
    weights = {v: graph.weight(v) for v in graph.node_ids}
    return TaskGraph(weights, reduced.edges(), name=graph.name)


def weight_jitter(graph: TaskGraph, fraction: float, rng_or_seed=0, *,
                  direction: str = "down") -> TaskGraph:
    """Perturb task weights by up to ``fraction`` of their value.

    Args:
        fraction: maximum relative change (0..1).
        direction: ``"down"`` models actual times under the worst-case
            bounds used for scheduling (the realistic case: tasks finish
            early); ``"both"`` perturbs symmetrically.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    if direction not in ("down", "both"):
        raise ValueError("direction must be 'down' or 'both'")
    rng = np.random.default_rng(rng_or_seed) \
        if not isinstance(rng_or_seed, np.random.Generator) else rng_or_seed
    factors = rng.uniform(1.0 - fraction,
                          1.0 if direction == "down" else 1.0 + fraction,
                          size=graph.n)
    weights = {v: graph.weight(v) * factors[graph.index_of(v)]
               for v in graph.node_ids}
    return TaskGraph(weights, graph.edges(), name=graph.name)


def merge_graphs(*graphs: TaskGraph, name: str = "merged") -> TaskGraph:
    """Disjoint union of several task graphs (ids become ``(i, id)``).

    Models independent applications sharing the multiprocessor and one
    scheduling window.
    """
    if not graphs:
        raise ValueError("need at least one graph")
    weights = {}
    edges: List[Tuple[Hashable, Hashable]] = []
    for i, g in enumerate(graphs):
        for v in g.node_ids:
            weights[(i, v)] = g.weight(v)
        edges.extend(((i, u), (i, v)) for u, v in g.edges())
    return TaskGraph(weights, edges, name=name)
