"""Heterogeneous multiprocessor extension: core types sharing one
voltage/frequency domain, type-aware scheduling, and a configuration-
sweeping LAMPS generalisation.
"""

from .heuristics import (
    HeteroResult,
    hetero_energy,
    hetero_lamps,
    validate_hetero_schedule,
)
from .model import BIG_LITTLE, CoreType, HeteroSystem
from .scheduler import hetero_schedule

__all__ = [
    "CoreType",
    "HeteroSystem",
    "BIG_LITTLE",
    "hetero_schedule",
    "hetero_energy",
    "hetero_lamps",
    "HeteroResult",
    "validate_hetero_schedule",
]
