"""Energy accounting and LAMPS-style search for heterogeneous systems.

Everything mirrors the homogeneous core: one shared operating point,
stretch to the deadline, optional PS.  The differences are per-type
power scales in the accounting and a two-dimensional configuration
sweep (how many cores of *each type* to employ) in place of LAMPS's
single processor count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.energy import EnergyBreakdown
from ..core.platform import Platform, default_platform
from ..core.results import InfeasibleScheduleError
from ..core.stretch import feasible_points, required_frequency
from ..graphs.dag import TaskGraph
from ..power.dvs import OperatingPoint
from ..sched.deadlines import task_deadlines
from ..sched.schedule import Schedule
from .model import HeteroSystem
from .scheduler import hetero_schedule

__all__ = ["hetero_energy", "hetero_lamps", "HeteroResult",
           "validate_hetero_schedule"]

_EPS = 1e-6


def validate_hetero_schedule(schedule: Schedule,
                             system: HeteroSystem) -> None:
    """Structural validation with type-dependent durations.

    Like :func:`repro.sched.validate.validate_schedule` but a task's
    expected duration is ``weight * cycle_multiplier`` of its
    processor's core type.
    """
    graph = schedule.graph
    for v in graph.node_ids:
        pl = schedule.placement(v)
        m = system.core_type(pl.processor).cycle_multiplier
        expect = graph.weight(v) * m
        dur = pl.finish - pl.start
        if abs(dur - expect) > _EPS * max(1.0, expect):
            raise AssertionError(
                f"task {v!r} runs {dur:g} cycles on a "
                f"{system.core_type(pl.processor).name} core, "
                f"expected {expect:g}")
        if pl.start < -_EPS:
            raise AssertionError(f"task {v!r} starts at {pl.start:g}")
        for u in graph.predecessors(v):
            if schedule.placement(u).finish > pl.start + _EPS:
                raise AssertionError(
                    f"task {v!r} starts before predecessor {u!r} ends")
    for proc in range(schedule.n_processors):
        tasks = schedule.processor_tasks(proc)
        for a, b in zip(tasks, tasks[1:]):
            if a.finish > b.start + _EPS:
                raise AssertionError(
                    f"processor {proc}: {a.task!r} overlaps {b.task!r}")


def hetero_energy(schedule: Schedule, system: HeteroSystem,
                  point: OperatingPoint, deadline_seconds: float, *,
                  platform: Optional[Platform] = None,
                  use_sleep: bool = True) -> EnergyBreakdown:
    """Energy of a heterogeneous schedule at one shared operating point.

    Each processor's busy and idle power is scaled by its core type's
    ``power_scale``; the PS breakeven therefore shifts per type (an
    efficient little core has less idle power to save, so its gaps must
    be longer to justify a shutdown).
    """
    platform = platform or default_platform()
    f = point.frequency
    horizon_cycles = deadline_seconds * f
    if schedule.makespan > horizon_cycles * (1.0 + 1e-9):
        raise ValueError("schedule does not fit the deadline window")
    sleep = platform.sleep if use_sleep else None
    total = EnergyBreakdown(busy=0.0, idle=0.0)
    for proc in range(schedule.n_processors):
        tasks = schedule.processor_tasks(proc)
        if not tasks:
            continue
        c = system.core_type(proc).power_scale
        busy = schedule.busy_cycles(proc) * point.energy_per_cycle * c
        idle_power = point.idle_power * c
        gaps = schedule.gap_lengths(proc, horizon_cycles) / f
        idle = sleep_e = overhead = 0.0
        n_shut = 0
        for gap in gaps:
            if sleep is not None and sleep.would_shut_down(gap,
                                                           idle_power):
                sleep_e += gap * sleep.sleep_power
                overhead += sleep.overhead_energy
                n_shut += 1
            else:
                idle += gap * idle_power
        total = total + EnergyBreakdown(
            busy=busy, idle=idle, sleep=sleep_e, overhead=overhead,
            n_shutdowns=n_shut)
    return total


@dataclass(frozen=True)
class HeteroResult:
    """Outcome of the heterogeneous configuration search.

    Attributes:
        energy: best energy found.
        point: the shared operating point.
        schedule: the winning schedule (reference-cycle units).
        system: the winning subsystem (which cores are employed).
        counts: employed cores per type name.
    """

    energy: EnergyBreakdown
    point: OperatingPoint
    schedule: Schedule
    system: HeteroSystem
    counts: Dict[str, int]

    @property
    def total_energy(self) -> float:
        return self.energy.total


def hetero_lamps(graph: TaskGraph, deadline: float,
                 system: HeteroSystem, *,
                 platform: Optional[Platform] = None,
                 shutdown: bool = True,
                 policy: str = "edf") -> HeteroResult:
    """LAMPS generalised to core-type configurations.

    Sweeps every employable combination of per-type core counts (the
    2-D analogue of LAMPS's processor-count sweep; the paper's local-
    minima argument applies even more strongly here, so the sweep is
    exhaustive over the small configuration grid), stretches each
    schedule to the deadline, and applies PS when enabled.
    """
    platform = platform or default_platform()
    d = task_deadlines(graph, deadline)
    deadline_seconds = platform.seconds(deadline)
    avail = system.counts_by_name()
    names = list(avail)

    best: Optional[tuple] = None
    for combo in itertools.product(
            *[range(avail[name] + 1) for name in names]):
        counts = dict(zip(names, combo))
        if sum(counts.values()) == 0:
            continue
        sub = system.subsystem(counts)
        sched = hetero_schedule(graph, sub, d, policy=policy)
        f_req = required_frequency(sched, d, platform.fmax)
        if f_req > platform.fmax * (1.0 + 1e-9):
            continue
        points = feasible_points(platform.ladder, f_req)
        if not shutdown:
            points = points[:1]  # maximal stretch only
        for point in points:
            e = hetero_energy(sched, sub, point, deadline_seconds,
                              platform=platform, use_sleep=shutdown)
            if best is None or e.total < best[0].total:
                best = (e, point, sched, sub, counts)
    if best is None:
        raise InfeasibleScheduleError(
            f"{graph.name or 'graph'}: no feasible configuration on "
            f"{system!r}")
    e, point, sched, sub, counts = best
    return HeteroResult(energy=e, point=point, schedule=sched,
                        system=sub, counts=counts)
