"""Heterogeneous multiprocessor model (big.LITTLE / Cell-style).

The paper's machines are homogeneous, but its motivating hardware (the
Cell processor) is not.  This extension models *core types* that share
one voltage/frequency domain — the paper's single-operating-point
restriction is kept — but differ in microarchitecture:

* a **cycle multiplier** ``m``: a task that needs ``w`` reference
  cycles on a big core needs ``m * w`` cycles on this type (lower IPC);
* a **power scale** ``c``: the type's active and idle power are ``c``
  times the reference model's (smaller, lower-leakage core).

A little core with ``m = 2, c = 0.3`` finishes half as fast on 30% of
the power — per unit of work it spends ``m * c = 0.6`` of a big core's
energy, the classic efficiency-vs-latency trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["CoreType", "HeteroSystem", "BIG_LITTLE"]


@dataclass(frozen=True, slots=True)
class CoreType:
    """One processor microarchitecture.

    Attributes:
        name: label ("big", "little", "spe", ...).
        cycle_multiplier: reference cycles are multiplied by this on
            this type (>= smaller is faster; 1.0 = the reference core).
        power_scale: active *and* idle power relative to the reference
            model at the same operating point.
    """

    name: str
    cycle_multiplier: float = 1.0
    power_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.cycle_multiplier <= 0:
            raise ValueError(f"{self.name}: cycle_multiplier must be > 0")
        if self.power_scale <= 0:
            raise ValueError(f"{self.name}: power_scale must be > 0")

    @property
    def energy_efficiency(self) -> float:
        """Energy per unit work relative to the reference core.

        ``cycle_multiplier * power_scale`` — below 1.0 means the type is
        more energy-efficient (and correspondingly slower).
        """
        return self.cycle_multiplier * self.power_scale


class HeteroSystem:
    """A pool of processors of several core types.

    Args:
        counts: ``[(core_type, count), ...]``; processors are numbered
            contiguously, first listed type first.

    The processor-id layout is what the heterogeneous scheduler and the
    energy accounting share.
    """

    def __init__(self, counts: Sequence[Tuple[CoreType, int]]) -> None:
        if not counts:
            raise ValueError("need at least one core type")
        types: List[CoreType] = []
        type_of: List[int] = []
        for ct, n in counts:
            if n < 0:
                raise ValueError(f"{ct.name}: count must be >= 0")
            idx = len(types)
            types.append(ct)
            type_of.extend([idx] * n)
        if not type_of:
            raise ValueError("system has zero processors")
        self.types: Tuple[CoreType, ...] = tuple(types)
        self._type_of: Tuple[int, ...] = tuple(type_of)

    @property
    def n_processors(self) -> int:
        return len(self._type_of)

    def core_type(self, proc: int) -> CoreType:
        """The :class:`CoreType` of processor ``proc``."""
        return self.types[self._type_of[proc]]

    def processors_of(self, name: str) -> List[int]:
        """Processor ids of the type called ``name``."""
        return [p for p in range(self.n_processors)
                if self.core_type(p).name == name]

    def counts_by_name(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for p in range(self.n_processors):
            name = self.core_type(p).name
            out[name] = out.get(name, 0) + 1
        return out

    def subsystem(self, counts: Dict[str, int]) -> "HeteroSystem":
        """A smaller system with ``counts[name]`` processors per type.

        Raises:
            ValueError: if a requested count exceeds availability or
                names an unknown type.
        """
        have = self.counts_by_name()
        spec = []
        for ct in self.types:
            want = counts.get(ct.name, 0)
            if want > have.get(ct.name, 0):
                raise ValueError(
                    f"requested {want} {ct.name!r} cores, have "
                    f"{have.get(ct.name, 0)}")
            spec.append((ct, want))
        unknown = set(counts) - {ct.name for ct in self.types}
        if unknown:
            raise ValueError(f"unknown core types {sorted(unknown)}")
        return HeteroSystem(spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{n}x{name}"
                          for name, n in self.counts_by_name().items())
        return f"HeteroSystem({parts})"


#: A typical 4-big + 4-little arrangement: little cores at half speed and
#: 30% power (m*c = 0.6 of a big core's energy per unit work).
BIG_LITTLE = HeteroSystem([
    (CoreType("big", cycle_multiplier=1.0, power_scale=1.0), 4),
    (CoreType("little", cycle_multiplier=2.0, power_scale=0.3), 4),
])
