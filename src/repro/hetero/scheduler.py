"""List scheduling on heterogeneous processors.

Event-driven EDF as in the homogeneous scheduler, with type-dependent
execution times: a task of ``w`` reference cycles occupies a processor
of type ``t`` for ``w * t.cycle_multiplier`` cycles.  When several
processors are free, the dispatcher places the highest-priority ready
task on the free processor that *finishes it earliest* (fast cores
first) — the natural greedy for shared-frequency heterogeneity.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Union

import numpy as np

from ..graphs.dag import TaskGraph
from ..sched.priorities import PriorityPolicy, priority_keys
from ..sched.schedule import Placement, Schedule
from .model import HeteroSystem

__all__ = ["hetero_schedule"]


def hetero_schedule(graph: TaskGraph, system: HeteroSystem,
                    deadlines: Optional[np.ndarray] = None, *,
                    policy: Union[str, PriorityPolicy] = "edf"
                    ) -> Schedule:
    """Schedule ``graph`` on ``system``.

    Returns a :class:`~repro.sched.schedule.Schedule` whose intervals
    are in *reference-clock cycles*: a task on a slow core simply
    occupies a longer interval.  The schedule therefore scales across
    the shared DVS ladder exactly like homogeneous ones.
    """
    n = graph.n
    if deadlines is None:
        deadlines = np.zeros(n)
    keys = priority_keys(graph, deadlines, policy)
    w = graph.weights_array
    succs = graph.succ_indices
    n_pending = np.array([len(p) for p in graph.pred_indices])
    mult = np.array([system.core_type(p).cycle_multiplier
                     for p in range(system.n_processors)])

    ready: List[tuple] = [(keys[v], v) for v in range(n)
                          if n_pending[v] == 0]
    heapq.heapify(ready)
    running: List[tuple] = []
    free: List[int] = list(range(system.n_processors))

    starts = np.empty(n)
    finishes = np.empty(n)
    procs = np.empty(n, dtype=int)
    time = 0.0
    scheduled = 0
    while scheduled < n:
        while ready and free:
            _, v = heapq.heappop(ready)
            # Earliest-finish free processor (ties: lowest id keeps
            # packing deterministic).
            p = min(free, key=lambda q: (w[v] * mult[q], q))
            free.remove(p)
            starts[v] = time
            finishes[v] = time + w[v] * mult[p]
            procs[v] = p
            heapq.heappush(running, (finishes[v], v, p))
            scheduled += 1
        if not running:
            break
        time, v, p = heapq.heappop(running)
        free.append(p)
        for s in succs[v]:
            n_pending[s] -= 1
            if n_pending[s] == 0:
                heapq.heappush(ready, (keys[s], s))
        while running and running[0][0] <= time:
            t2, v2, p2 = heapq.heappop(running)
            free.append(p2)
            for s in succs[v2]:
                n_pending[s] -= 1
                if n_pending[s] == 0:
                    heapq.heappush(ready, (keys[s], s))

    placements = [
        Placement(task=graph.id_of(v), processor=int(procs[v]),
                  start=float(starts[v]), finish=float(finishes[v]))
        for v in range(n)
    ]
    return Schedule(graph, system.n_processors, placements)
