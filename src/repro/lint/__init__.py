"""Project-specific static analysis (``repro lint``).

An AST-based rule engine with five rule families tailored to this
codebase's correctness contracts:

* **determinism** (``DET0xx``) — no unseeded RNG anywhere; no
  wall-clock, environment or set-iteration-order dependence in any
  module reachable from the exec-cache key construction or the report
  serialization;
* **unit-safety** (``UNIT0xx``) — the ``_seconds``/``_cycles``/
  ``_hz``/``_volts``/``_joules``/``_watts`` naming convention on the
  public surfaces of ``repro.power``, ``repro.core`` and
  ``repro.sched``, plus a tree-wide dataflow mixed-unit check;
* **kernel discipline** (``KER0xx``) — Schedule construction through
  the blessed constructors only, frozen kernel arrays, and the scalar
  energy evaluator confined to the audit cross-check;
* **concurrency safety** (``CONC0xx``) — interprocedural: no blocking
  call reachable from an ``async def`` without an executor handoff, no
  ``await`` under a threading lock, no lock-acquisition-order cycles,
  shared-memory segments unlinked on every error path;
* **resource lifetime** (``RES0xx``) — fds and temp files released on
  every path, checked over per-function control-flow graphs.

The ``CONC``/``RES`` families and the upgraded ``UNIT003`` are built
on the interprocedural engine in :mod:`repro.lint.dataflow` — a
project-wide symbol table and call graph plus per-function CFGs.

Findings are suppressed line-by-line with ``# repro: noqa[RULE]``
(bare ``# repro: noqa`` suppresses everything on the line); a
suppression that matches nothing is itself reported (``LINT001``).

Entry points: :func:`run_lint` (library), :func:`repro.lint.cli.main`
(``repro lint`` and ``tools/lint.py``).
"""

from __future__ import annotations

from .engine import LintConfig, collect_files, run_lint
from .finding import Finding, Suppression
from .rules import Rule, RuleContext, registry

__all__ = [
    "Finding", "LintConfig", "Rule", "RuleContext", "Suppression",
    "collect_files", "registry", "run_lint",
]
