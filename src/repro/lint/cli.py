"""Command-line front end: ``repro lint`` / ``python tools/lint.py``.

Human output is one ``path:line:col: CODE message`` per finding plus a
summary line; ``--format json`` emits a machine-readable list for CI
annotation tooling.  Exit status 0 means clean, 1 means findings, 2
means usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .engine import LintConfig, run_lint
from .rules import registry

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis: determinism, "
                    "unit-safety and kernel-discipline rules")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human")
    parser.add_argument("--no-noqa", action="store_true",
                        help="ignore '# repro: noqa' suppressions")
    parser.add_argument("--all-scopes", action="store_true",
                        help="apply reachability/package-scoped rules "
                             "to every file (fixture testing)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--graph", action="store_true",
                        help="dump the interprocedural call graph and "
                             "the lock-order graph as DOT and exit")
    return parser


def _parse_codes(raw: Optional[str]) -> Optional[frozenset]:
    if raw is None:
        return None
    return frozenset(c.strip() for c in raw.split(",") if c.strip())


def _print_rules() -> None:
    rules = sorted(registry().items())
    width = max(len(code) for code, _ in rules)
    for code, cls in rules:
        print(f"{code:<{width}}  {cls.name:<24} [{cls.scope:<9}] "
              f"{cls.description}")


def _print_graphs(paths: List[Path]) -> None:
    """DOT dumps of the call graph and the lock-order graph."""
    from .dataflow.concurrency import lock_graph_dot
    from .dataflow.project import ProjectIndex
    from .engine import _tree_files, collect_files

    files = collect_files(paths)
    project = ProjectIndex.build(files, _tree_files(files))
    print(project.graph.to_dot())
    print()
    print(lock_graph_dot(project))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0

    known = set(registry())
    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore) or frozenset()
    for code in sorted(((select or set()) | ignore) - known):
        print(f"unknown rule code: {code}", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.graph:
        _print_graphs([Path(p) for p in args.paths])
        return 0

    config = LintConfig(select=select, ignore=ignore,
                        all_scopes=args.all_scopes,
                        respect_noqa=not args.no_noqa)
    findings = run_lint([Path(p) for p in args.paths], config)

    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2,
                         sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        n = len(findings)
        files = len({f.path for f in findings})
        if n:
            print(f"\n{n} finding{'s' if n != 1 else ''} in {files} "
                  f"file{'s' if files != 1 else ''}")
        else:
            print("clean: no findings")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
