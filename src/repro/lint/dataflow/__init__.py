"""Interprocedural dataflow layer of ``repro lint``.

Everything project-wide lives here: the symbol table and the
import-alias/receiver-type resolution (:mod:`symbols`), the call graph
with awaited/handoff edge metadata (:mod:`callgraph`), statement-level
control-flow graphs with exception edges over ``try``/``with``/
``finally`` (:mod:`cfg`), and the rule families built on top —
concurrency safety (``CONC0xx``, :mod:`concurrency`), resource
lifetimes (``RES001``, :mod:`resources`) and flow-sensitive unit
propagation (``UNIT003``, :mod:`unitflow`).

The per-file rules in :mod:`repro.lint.rules` each see one module at a
time; the rules here see the whole tree at once through a
:class:`~repro.lint.dataflow.project.ProjectIndex` the engine builds
after the per-file pass.  They register in the same rule registry and
obey the same ``--select``/``--ignore``/``noqa`` machinery — a project
rule is just a rule whose ``kind`` is ``"project"``.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .cfg import CFG, build_cfg
from .project import ProjectIndex, ProjectRule
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, SymbolTable

__all__ = [
    "CFG", "CallGraph", "ClassInfo", "FunctionInfo", "ModuleInfo",
    "ProjectIndex", "ProjectRule", "SymbolTable", "build_cfg",
]
