"""Project call graph with await/handoff edge metadata.

Edges are added only where the callee is statically evident — a direct
or imported function name, a ``Class.method`` chain, or a method on a
receiver whose type the :class:`~repro.lint.dataflow.symbols.Typer`
inferred.  Unresolved calls create no edge: a ``Dict.get`` receiver
must never impersonate ``ResultCache.get``.

Two kinds of call sites are deliberately *not* edges:

* **handoffs** — ``loop.run_in_executor(None, f, x)``,
  ``asyncio.to_thread(f)``, ``executor.submit(f)``: ``f`` runs on
  another thread, so its blocking taint must not flow into the caller;
* **references** — a bare ``self._compute`` argument is not a call.

Awaited calls are marked ``awaited``: an ``await`` of an async callee
suspends rather than blocks, so the blocking analysis skips the edge
and reports inside the callee instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple, Union

from .symbols import FunctionInfo, SymbolTable, Typer, call_name

__all__ = ["CallGraph", "CallSite", "HANDOFF_ATTRS", "HANDOFF_CALLS"]

#: Attribute names that schedule work on another thread/loop rather
#: than running it inline.
HANDOFF_ATTRS = frozenset({
    "run_in_executor", "call_soon_threadsafe", "call_soon", "call_later",
    "submit", "create_task", "ensure_future", "add_done_callback",
})

#: Dotted callables with handoff semantics.
HANDOFF_CALLS = frozenset({
    "asyncio.to_thread", "asyncio.ensure_future",
    "asyncio.run_coroutine_threadsafe", "asyncio.create_task",
})


@dataclass
class CallSite:
    """One resolved call inside a function."""

    caller: FunctionInfo
    node: ast.Call
    #: Project callee, or ``(receiver_type, method)`` for a typed
    #: external method, or a canonical dotted name for a bare one.
    callee: Union[FunctionInfo, Tuple[str, str], str]
    awaited: bool

    @property
    def display(self) -> str:
        text = call_name(self.node.func)
        return text if text is not None else "<call>"


class CallGraph:
    """Call sites per function, indexed for traversal and export."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.sites: Dict[str, List[CallSite]] = {}

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table)
        for fn in table.functions.values():
            graph.sites[fn.qualname] = list(graph._sites_of(fn))
        return graph

    # ------------------------------------------------------------------
    def calls_of(self, fn: FunctionInfo) -> List[CallSite]:
        return self.sites.get(fn.qualname, [])

    def project_edges(self, fn: FunctionInfo) -> Iterator[CallSite]:
        """Call sites of ``fn`` whose callee is a project function."""
        for site in self.calls_of(fn):
            if isinstance(site.callee, FunctionInfo):
                yield site

    # ------------------------------------------------------------------
    def _sites_of(self, fn: FunctionInfo) -> Iterator[CallSite]:
        typer = Typer(self.table, fn.module)
        env = typer.local_types(fn)
        awaited_calls = set()
        for node in self._walk_body(fn.node):
            if isinstance(node, ast.Await) and \
                    isinstance(node.value, ast.Call):
                awaited_calls.add(id(node.value))
        for node in self._walk_body(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if self.is_handoff(node, fn.module):
                continue
            callee = self._resolve(node, fn, typer, env)
            if callee is None:
                continue
            yield CallSite(caller=fn, node=node, callee=callee,
                           awaited=id(node) in awaited_calls)

    @staticmethod
    def _walk_body(fn_node: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body without entering nested definitions."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def is_handoff(self, node: ast.Call, module) -> bool:
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in HANDOFF_ATTRS:
            return True
        name = call_name(node.func)
        if name is None:
            return False
        return self.table.canonical(module, name) in HANDOFF_CALLS

    def _resolve(self, node: ast.Call, fn: FunctionInfo, typer: Typer,
                 env: Dict[str, str]
                 ) -> Union[FunctionInfo, Tuple[str, str], str, None]:
        func = node.func
        if isinstance(func, ast.Name):
            # A nested def shadows module scope inside its parent.
            nested = self.table.functions.get(
                f"{fn.qualname}.<locals>.{func.id}")
            if nested is not None:
                return nested
            resolved = self.table.resolve(fn.module, func.id)
            if isinstance(resolved, FunctionInfo):
                return resolved
            if isinstance(resolved, str):
                return resolved
            # A class: the constructor edge goes to __init__ when the
            # class is ours (its body runs inline at the call site).
            init = resolved.methods.get("__init__")
            return init if init is not None else resolved.qualname
        if isinstance(func, ast.Attribute):
            method = typer.resolve_method(func, env)
            if method is not None:
                return method
            name = call_name(func)
            if name is None:
                return None
            resolved = self.table.resolve(fn.module, name)
            if isinstance(resolved, FunctionInfo):
                return resolved
            if isinstance(resolved, str):
                return resolved
            init = resolved.methods.get("__init__")
            return init if init is not None else resolved.qualname
        return None

    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """GraphViz dump of the project-internal edges (``--graph``)."""
        lines = ["digraph callgraph {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=10];']
        edges = set()
        for qual in sorted(self.sites):
            fn = self.table.functions[qual]
            if fn.is_async:
                lines.append(f'  "{qual}" [color=blue, '
                             f'label="{qual}\\n(async)"];')
            for site in self.sites[qual]:
                if isinstance(site.callee, FunctionInfo):
                    style = " [style=dashed]" if site.awaited else ""
                    edges.add(f'  "{qual}" -> '
                              f'"{site.callee.qualname}"{style};')
        lines.extend(sorted(edges))
        lines.append("}")
        return "\n".join(lines)
