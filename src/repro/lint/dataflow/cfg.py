"""Statement-level control-flow graphs with exception edges.

One node per executed statement (compound statements contribute their
header: an ``if``'s test, a ``for``'s iterator, a ``with``'s context
expressions).  Two edge kinds:

* **normal** — sequential flow, branch/loop structure, falling off the
  end (to :attr:`CFG.exit`);
* **exception** — from any node whose evaluation may raise to the
  innermost handler: an enclosing ``except`` body, a ``finally`` copy,
  or the synthetic :attr:`CFG.exc_exit` ("the exception escapes the
  function").

The may-raise predicate is tuned for the leak analyses built on top
(:mod:`resources`): a statement may raise iff it contains a call or a
subscript — attribute loads and arithmetic are treated as safe — and
*cleanup* statements (``close``/``unlink``/``release``-shaped calls,
see :data:`CLEANUP_ATTRS`) never raise, so a ``finally`` that releases
in sequence is not split by phantom edges.  ``return`` never raises:
it is the publication boundary, where ownership of anything still open
passes to the caller.

``finally`` bodies are duplicated per continuation (normal, exception,
return/break/continue), which is exactly the Python semantics and
keeps the analysis path-sensitive over ``try``/``finally`` without a
separate abstract "pending continuation" state.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from .symbols import call_name

__all__ = ["CFG", "build_cfg", "CLEANUP_ATTRS", "may_raise"]

#: Method names whose call is a cleanup action: treated as non-raising
#: and (by the leak analyses) as releasing on both out-edges.
CLEANUP_ATTRS = frozenset({
    "close", "unlink", "release", "discard", "clear", "cancel",
})

#: Module-level functions with cleanup semantics (``os.close(fd)``).
CLEANUP_CALLS = frozenset({
    "os.close", "os.unlink", "os.remove", "os.replace", "os.rename",
    "os.fdopen", "os.rmdir",
})

#: Calls assumed never to raise for CFG purposes.
SAFE_CALLS = frozenset({
    "len", "isinstance", "repr", "str", "bool", "id", "print", "max",
    "min", "sorted", "list", "tuple", "dict", "set", "frozenset",
    "contextlib.suppress", "suppress", "getattr", "hasattr",
})


def _is_cleanup_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Attribute) and \
            node.func.attr in CLEANUP_ATTRS:
        return True
    name = call_name(node.func)
    return name is not None and (name in CLEANUP_CALLS
                                 or name.split(".", 1)[-1]
                                 in CLEANUP_CALLS)


def _exprs_may_raise(nodes: Sequence[Optional[ast.AST]]) -> bool:
    for root in nodes:
        if root is None:
            continue
        for node in ast.walk(root):
            if isinstance(node, ast.Subscript):
                return True
            if isinstance(node, ast.Call):
                if _is_cleanup_call(node):
                    continue
                name = call_name(node.func)
                if name is not None and name in SAFE_CALLS:
                    continue
                return True
    return False


def may_raise(stmt: ast.stmt) -> bool:
    """Whether executing ``stmt``'s own header may raise (see module doc)."""
    if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global,
                         ast.Nonlocal, ast.Import, ast.ImportFrom,
                         ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef, ast.Return)):
        return False
    if isinstance(stmt, (ast.If, ast.While)):
        return _exprs_may_raise([stmt.test])
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _exprs_may_raise([stmt.iter])
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return _exprs_may_raise([item.context_expr
                                 for item in stmt.items])
    if isinstance(stmt, ast.Assert):
        return True
    if isinstance(stmt, ast.Expr) and any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in ast.walk(stmt.value)):
        # A generator's yield may raise: the consumer can .throw()
        # into it (a with-block body raising inside a
        # @contextmanager), so cleanup after the yield must be on an
        # exception path too.
        return True
    return _exprs_may_raise([stmt])


class CFG:
    """The graph: parallel node/edge arrays plus the two exit nodes."""

    def __init__(self) -> None:
        self.stmts: List[Optional[ast.stmt]] = []
        self.succ: List[List[int]] = []
        self.exc_succ: List[List[int]] = []
        self.is_return: List[bool] = []
        self.exit = self._new(None)
        self.exc_exit = self._new(None)
        self.entry = self.exit

    def _new(self, stmt: Optional[ast.stmt],
             is_return: bool = False) -> int:
        self.stmts.append(stmt)
        self.succ.append([])
        self.exc_succ.append([])
        self.is_return.append(is_return)
        return len(self.stmts) - 1

    def __len__(self) -> int:
        return len(self.stmts)


def _suppresses(stmt: ast.With) -> bool:
    """``with contextlib.suppress(...):`` swallows its body's raises."""
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            name = call_name(expr.func)
            if name in ("contextlib.suppress", "suppress"):
                return True
    return False


def _catches_everything(handlers: Sequence[ast.ExceptHandler]) -> bool:
    for handler in handlers:
        if handler.type is None:
            return True
        name = call_name(handler.type)
        if name in ("Exception", "BaseException"):
            return True
    return False


def build_cfg(fn: ast.AST) -> CFG:
    """CFG of one function body (``FunctionDef``/``AsyncFunctionDef``)."""
    cfg = CFG()

    def block(stmts: Sequence[ast.stmt], succ: int, exc: int, ret: int,
              brk: Optional[int], cont: Optional[int]) -> int:
        entry = succ
        for stmt in reversed(stmts):
            entry = statement(stmt, entry, exc, ret, brk, cont)
        return entry

    def statement(stmt: ast.stmt, succ: int, exc: int, ret: int,
                  brk: Optional[int], cont: Optional[int]) -> int:
        if isinstance(stmt, ast.Return):
            node = cfg._new(stmt, is_return=True)
            cfg.succ[node].append(ret)
            return node
        if isinstance(stmt, ast.Raise):
            node = cfg._new(stmt)
            cfg.succ[node].append(exc)
            return node
        if isinstance(stmt, ast.Break) and brk is not None:
            node = cfg._new(stmt)
            cfg.succ[node].append(brk)
            return node
        if isinstance(stmt, ast.Continue) and cont is not None:
            node = cfg._new(stmt)
            cfg.succ[node].append(cont)
            return node
        if isinstance(stmt, ast.If):
            node = cfg._new(stmt)
            then = block(stmt.body, succ, exc, ret, brk, cont)
            other = block(stmt.orelse, succ, exc, ret, brk, cont)
            cfg.succ[node].extend(dict.fromkeys((then, other)))
            if may_raise(stmt):
                cfg.exc_succ[node].append(exc)
            return node
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = cfg._new(stmt)
            after = block(stmt.orelse, succ, exc, ret, brk, cont)
            body = block(stmt.body, node, exc, ret, brk=after,
                         cont=node)
            cfg.succ[node].extend(dict.fromkeys((body, after)))
            if may_raise(stmt):
                cfg.exc_succ[node].append(exc)
            return node
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg._new(stmt)
            body_exc = succ if (isinstance(stmt, ast.With)
                                and _suppresses(stmt)) else exc
            body = block(stmt.body, succ, body_exc, ret, brk, cont)
            cfg.succ[node].append(body)
            if may_raise(stmt):
                cfg.exc_succ[node].append(exc)
            return node
        if isinstance(stmt, ast.Try):
            return try_statement(stmt, succ, exc, ret, brk, cont)
        node = cfg._new(stmt)
        cfg.succ[node].append(succ)
        if may_raise(stmt):
            cfg.exc_succ[node].append(exc)
        return node

    def try_statement(stmt: ast.Try, succ: int, exc: int, ret: int,
                      brk: Optional[int], cont: Optional[int]) -> int:
        if stmt.finalbody:
            # Each continuation threads through its own copy of the
            # finally body — a return inside the try still runs the
            # cleanup, and an escaping exception runs it before
            # propagating.
            def wrap(target: Optional[int]) -> Optional[int]:
                if target is None:
                    return None
                return block(stmt.finalbody, target, exc, ret, brk,
                             cont)
            succ_f = wrap(succ)
            exc_f = wrap(exc)
            ret_f = wrap(ret)
            brk_f, cont_f = wrap(brk), wrap(cont)
        else:
            succ_f, exc_f, ret_f, brk_f, cont_f = (succ, exc, ret, brk,
                                                   cont)
        handler_entries = [
            block(handler.body, succ_f, exc_f, ret_f, brk_f, cont_f)
            for handler in stmt.handlers]
        body_exc: List[int] = list(handler_entries)
        if not stmt.handlers or not _catches_everything(stmt.handlers):
            body_exc.append(exc_f)
        # The body's raises dispatch to every handler that might match
        # (plus escape, unless a catch-all is present): a join point
        # per possible path keeps the leak analysis path-sensitive.
        dispatch = body_exc[0] if len(body_exc) == 1 else \
            _dispatch_node(cfg, body_exc)
        after_body = block(stmt.orelse, succ_f, exc_f, ret_f, brk_f,
                           cont_f)
        return block(stmt.body, after_body, dispatch, ret_f, brk_f,
                     cont_f)

    entry = block(fn.body, cfg.exit, cfg.exc_exit, cfg.exit, None, None)
    cfg.entry = entry
    return cfg


def _dispatch_node(cfg: CFG, targets: List[int]) -> int:
    node = cfg._new(None)
    cfg.succ[node].extend(dict.fromkeys(targets))
    return node
