"""Concurrency-safety rules (CONC0xx) for the service stack.

Built on the project call graph: the taint here is *blocking-ness*.  A
function is blocking if it performs file I/O, sleeps, spawns
subprocesses, takes an flock, or calls (transitively, through resolved
sync call edges) a function that does.  The event loop must never run
one: CONC001 reports every blocking call statically reachable from an
``async def`` without an executor handoff in between
(``loop.run_in_executor`` / ``asyncio.to_thread`` boundaries cut the
taint — see :data:`~repro.lint.dataflow.callgraph.HANDOFF_ATTRS`).

Soundness posture (documented in DESIGN.md §13): resolution is
precision-first — unresolved calls create no edge, so the rules can
miss dynamic dispatch, but what they report is real.  The blocking-op
tables name exact dotted calls, typed methods (``ThreadPoolExecutor.
shutdown``), and a small set of ``pathlib``-shaped attribute names.

CONC002 flags an ``await`` inside a ``with`` over a *threading* lock —
the loop thread parks on the await while every other coroutine needing
the lock deadlocks behind it.  CONC003 builds the lock-order graph
(threading-lock attributes plus flock-style contextmanagers like
``exec.cache.shard_lock``) and reports the edges of any acquisition
cycle.  CONC004 runs the :mod:`resources` leak analysis with the
``shm`` kind: a ``SharedMemory(create=True)`` segment must be unlinked
on every exception path, while the normal path may publish it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..finding import Finding
from ..rules.base import register
from .callgraph import CallGraph, CallSite
from .project import ProjectIndex, ProjectRule
from .resources import _header_exprs, leak_sites
from .symbols import FunctionInfo, SymbolTable, Typer, call_name

__all__ = ["AsyncBlockingCall", "AwaitUnderLock", "LockOrderCycle",
           "ShmUnlinkOnError", "blocking_taint", "lock_graph",
           "lock_graph_dot"]

#: Exact canonical dotted names of blocking callables.
BLOCKING_CALLS = frozenset({
    "open", "time.sleep",
    "os.open", "os.read", "os.write", "os.close", "os.fsync",
    "os.replace", "os.rename", "os.unlink", "os.remove", "os.listdir",
    "os.scandir", "os.stat", "os.makedirs", "os.mkdir", "os.rmdir",
    "os.walk", "os.fdopen",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "fcntl.flock", "fcntl.lockf",
    "tempfile.mkstemp", "tempfile.mkdtemp",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryDirectory",
    "shutil.rmtree", "shutil.copy", "shutil.copy2", "shutil.copytree",
    "shutil.move",
    "socket.create_connection",
    "multiprocessing.shared_memory.SharedMemory",
})

#: Method names that are file I/O on any receiver (the ``pathlib``
#: surface) — attribute-name heuristics for untyped receivers.
BLOCKING_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
    "glob", "rglob", "iterdir", "mkdir", "touch", "rmdir",
    "hardlink_to", "symlink_to", "samefile",
})

#: ``(receiver type, method)`` pairs that block.
TYPED_BLOCKING = frozenset({
    ("concurrent.futures.ThreadPoolExecutor", "shutdown"),
    ("concurrent.futures.ProcessPoolExecutor", "shutdown"),
    ("concurrent.futures.Future", "result"),
    ("queue.Queue", "get"), ("queue.Queue", "put"),
    ("threading.Thread", "join"), ("threading.Event", "wait"),
    ("threading.Lock", "acquire"), ("threading.RLock", "acquire"),
    ("pathlib.Path", "stat"), ("pathlib.Path", "exists"),
    ("pathlib.Path", "unlink"),
})

#: Receiver types that are thread (not asyncio) locks.
THREAD_LOCK_TYPES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})


def _direct_blocking(site: CallSite) -> Optional[str]:
    """Why this call site blocks by itself, or ``None``."""
    callee = site.callee
    if isinstance(callee, str):
        if callee in BLOCKING_CALLS:
            return f"'{callee}'"
        attr = callee.rsplit(".", 1)[-1]
        if "." in callee and attr in BLOCKING_ATTRS:
            return f"'.{attr}()' (file I/O)"
    elif isinstance(callee, tuple):
        if callee in TYPED_BLOCKING:
            return f"'{callee[0]}.{callee[1]}'"
        if callee[1] in BLOCKING_ATTRS:
            return f"'.{callee[1]}()' (file I/O)"
    return None


def blocking_taint(graph: CallGraph) -> Dict[str, str]:
    """qualname → human reason, for every transitively blocking sync fn.

    Async functions are excluded: awaiting one suspends instead of
    blocking, and their own bodies are checked directly by CONC001.
    """
    taint: Dict[str, str] = {}
    for fn in graph.table.functions.values():
        if fn.is_async:
            continue
        for site in graph.calls_of(fn):
            reason = _direct_blocking(site)
            if reason is not None:
                taint.setdefault(fn.qualname, reason)
                break
    # Propagate over sync project call edges to a fixpoint; the chain
    # recorded is one hop (callee + its reason), which is enough to
    # act on.
    changed = True
    while changed:
        changed = False
        for fn in graph.table.functions.values():
            if fn.is_async or fn.qualname in taint:
                continue
            for site in graph.calls_of(fn):
                callee = site.callee
                if isinstance(callee, FunctionInfo) and \
                        not callee.is_async and \
                        callee.qualname in taint:
                    taint[fn.qualname] = (f"calls '{callee.qualname}' "
                                          f"→ {taint[callee.qualname]}")
                    changed = True
                    break
    return taint


@register
class AsyncBlockingCall(ProjectRule):
    """No blocking call reachable from an ``async def``."""

    code = "CONC001"
    name = "async-blocking-call"
    description = ("blocking call (file I/O, sleep, subprocess, flock, "
                   "cache read) reachable from an async function "
                   "without an executor handoff")

    def check(self, project: ProjectIndex, config) -> List[Finding]:
        taint = blocking_taint(project.graph)
        for fn in project.target_functions():
            if not fn.is_async:
                continue
            for site in project.graph.calls_of(fn):
                if site.awaited:
                    continue  # suspension, not blocking
                reason = _direct_blocking(site)
                callee = site.callee
                if reason is None and isinstance(callee, FunctionInfo) \
                        and not callee.is_async and \
                        callee.qualname in taint:
                    reason = (f"reaches {taint[callee.qualname]} via "
                              f"'{callee.qualname}'")
                if reason is None:
                    continue
                self.emit(
                    project, fn.module, site.node,
                    f"'{site.display}' blocks the event loop in async "
                    f"'{fn.name}': {reason}; hand it off with "
                    f"loop.run_in_executor or asyncio.to_thread")
        return self.findings


@register
class AwaitUnderLock(ProjectRule):
    """No ``await`` while holding a threading lock."""

    code = "CONC002"
    name = "await-under-lock"
    description = ("await inside a 'with <threading lock>' block: the "
                   "coroutine suspends while the OS lock stays held, "
                   "stalling the loop")

    def check(self, project: ProjectIndex, config) -> List[Finding]:
        for fn in project.target_functions():
            if not fn.is_async:
                continue
            typer = project.typer(fn.module)
            env = typer.local_types(fn)
            for stmt in _walk_stmts(fn.node):
                if not isinstance(stmt, ast.With):
                    continue
                if not any(_lock_type(item.context_expr, typer, env)
                           for item in stmt.items):
                    continue
                for await_node in _awaits_in(stmt.body):
                    self.emit(
                        project, fn.module, await_node,
                        f"await while holding the threading lock "
                        f"acquired at line {stmt.lineno}; other "
                        f"coroutines needing it deadlock behind this "
                        f"suspension — use asyncio.Lock or release "
                        f"before awaiting")
        return self.findings


def _lock_type(expr: ast.AST, typer: Typer, env: Dict[str, str]
               ) -> Optional[str]:
    ty = typer.type_of_expr(expr, env)
    return ty if ty in THREAD_LOCK_TYPES else None


def _walk_stmts(fn_node: ast.AST) -> Iterator[ast.stmt]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, ast.stmt):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _awaits_in(body: List[ast.stmt]) -> Iterator[ast.Await]:
    for stmt in body:
        for node in _walk_stmts_and_exprs(stmt):
            if isinstance(node, ast.Await):
                yield node


def _walk_stmts_and_exprs(root: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# CONC003: lock acquisition order
# ----------------------------------------------------------------------
def _is_lock_manager(fn: FunctionInfo) -> bool:
    """A ``@contextmanager`` whose body takes an OS or threading lock."""
    decorated = any(
        (call_name(d) or "").endswith("contextmanager")
        for d in fn.node.decorator_list)
    if not decorated:
        return False
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            name = call_name(node.func) or ""
            if name.rsplit(".", 1)[-1] in ("flock", "lockf"):
                return True
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "acquire":
                return True
    return False


def _lock_id(expr: ast.AST, fn: FunctionInfo, typer: Typer,
             env: Dict[str, str], table: SymbolTable
             ) -> Optional[str]:
    """Stable identity of the lock a ``with`` item acquires, if any."""
    if isinstance(expr, ast.Call):
        name = call_name(expr.func)
        if name is None:
            return None
        resolved = table.resolve(fn.module, name)
        if isinstance(resolved, FunctionInfo) and \
                _is_lock_manager(resolved):
            return resolved.qualname
        return None
    if _lock_type(expr, typer, env) is None:
        return None
    if isinstance(expr, ast.Attribute):
        owner = typer.type_of_expr(expr.value, env)
        if owner is not None:
            return f"{owner}.{expr.attr}"
        return f"{fn.qualname}.{expr.attr}"
    if isinstance(expr, ast.Name):
        return f"{fn.qualname}.{expr.id}"
    return None


def lock_graph(project: ProjectIndex) -> Dict[
        Tuple[str, str], List[Tuple[FunctionInfo, ast.AST]]]:
    """Edges ``(held, acquired) → acquisition sites`` over the tree.

    Direct edges come from lexically nested ``with`` blocks; a call
    made while holding a lock contributes edges to every lock the
    callee (transitively) acquires.
    """
    table, graph = project.table, project.graph

    # Pass 1: per function, directly acquired locks and the (held →
    # acquired) pairs plus calls made under held locks.
    direct: Dict[str, Set[str]] = {}
    edges: Dict[Tuple[str, str],
                List[Tuple[FunctionInfo, ast.AST]]] = {}
    held_calls: List[Tuple[FunctionInfo, Tuple[str, ...],
                           CallSite]] = []

    for fn in table.functions.values():
        typer = Typer(table, fn.module)
        env = typer.local_types(fn)
        acquired: Set[str] = set()
        sites_by_call = {id(s.node): s for s in graph.calls_of(fn)}

        def visit(stmts: List[ast.stmt],
                  held: Tuple[str, ...]) -> None:
            for stmt in stmts:
                inner = held
                lock_items: Set[int] = set()
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        lock = _lock_id(item.context_expr, fn, typer,
                                        env, table)
                        if lock is None:
                            continue
                        lock_items.add(id(item.context_expr))
                        acquired.add(lock)
                        for h in inner:
                            edges.setdefault((h, lock), []).append(
                                (fn, item.context_expr))
                        inner = inner + (lock,)
                if held:
                    # Calls evaluated by this statement's own header
                    # while locks are held; nested statements are
                    # collected when the recursion reaches them.
                    for root in _header_exprs(stmt):
                        if root is None or id(root) in lock_items:
                            continue
                        for node in ast.walk(root):
                            site = sites_by_call.get(id(node))
                            if site is not None:
                                held_calls.append((fn, held, site))
                visit_children(stmt, inner)

        def visit_children(stmt: ast.stmt,
                           held: Tuple[str, ...]) -> None:
            for attr in ("body", "orelse", "finalbody"):
                child = getattr(stmt, attr, None)
                if isinstance(child, list) and child and \
                        isinstance(child[0], ast.stmt):
                    visit(child, held)
            for handler in getattr(stmt, "handlers", []):
                visit(handler.body, held)

        visit(list(fn.node.body), ())
        if acquired:
            direct[fn.qualname] = acquired

    # Pass 2: transitive acquisition sets to a fixpoint.
    trans: Dict[str, Set[str]] = {q: set(s) for q, s in direct.items()}
    changed = True
    while changed:
        changed = False
        for fn in table.functions.values():
            mine = trans.setdefault(fn.qualname, set())
            for site in graph.project_edges(fn):
                theirs = trans.get(site.callee.qualname)
                if theirs and not theirs <= mine:
                    mine |= theirs
                    changed = True

    # Pass 3: calls made under held locks add interprocedural edges.
    for fn, held, site in held_calls:
        if not isinstance(site.callee, FunctionInfo):
            continue
        for lock in sorted(trans.get(site.callee.qualname, ())):
            for h in held:
                if h != lock:
                    edges.setdefault((h, lock), []).append(
                        (fn, site.node))
    return edges


def _cyclic_edges(edges) -> Set[Tuple[str, str]]:
    """Edges both of whose endpoints share a strongly-connected cycle."""
    adj: Dict[str, Set[str]] = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())

    def reaches(src: str, dst: str) -> bool:
        seen, stack = set(), [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adj.get(node, ()))
        return False

    return {(a, b) for a, b in edges if reaches(b, a)}


def lock_graph_dot(project: ProjectIndex) -> str:
    """GraphViz dump of the lock-order graph (``--graph``)."""
    edges = lock_graph(project)
    cyclic = _cyclic_edges(edges)
    lines = ["digraph lockorder {", "  rankdir=LR;",
             '  node [shape=ellipse, fontsize=10];']
    for (a, b), sites in sorted(edges.items()):
        style = ", color=red, penwidth=2" if (a, b) in cyclic else ""
        fn, node = sites[0]
        lines.append(
            f'  "{a}" -> "{b}" [label="{fn.qualname}:'
            f'{getattr(node, "lineno", "?")}"{style}];')
    lines.append("}")
    return "\n".join(lines)


@register
class LockOrderCycle(ProjectRule):
    """Lock acquisition order must be acyclic across the tree."""

    code = "CONC003"
    name = "lock-order-cycle"
    description = ("two locks are acquired in both orders somewhere in "
                   "the tree — a deadlock waiting for the right "
                   "interleaving")

    def check(self, project: ProjectIndex, config) -> List[Finding]:
        edges = lock_graph(project)
        seen = set()
        for a, b in sorted(_cyclic_edges(edges)):
            for fn, node in edges[(a, b)]:
                key = (fn.module.path, getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0), a, b)
                if key in seen:
                    continue
                seen.add(key)
                self.emit(
                    project, fn.module, node,
                    f"lock-order cycle: '{b}' is acquired here while "
                    f"'{a}' is held, and the opposite order exists "
                    f"elsewhere (see repro lint --graph)")
        return self.findings


@register
class ShmUnlinkOnError(ProjectRule):
    """Created shared-memory segments are unlinked on error paths."""

    code = "CONC004"
    name = "shm-unlink-on-error"
    description = ("SharedMemory(create=True) segment is not unlinked "
                   "on every exception path — a crashed call leaks a "
                   "named OS object until reboot")

    def check(self, project: ProjectIndex, config) -> List[Finding]:
        for fn in project.target_functions():
            for leak in leak_sites(fn, project.table,
                                   frozenset({"shm"})):
                if not leak.on_exception:
                    continue  # the normal path may publish the segment
                what = f"'{leak.var}'" if leak.var else "the segment"
                self.emit(
                    project, fn.module, leak.node,
                    f"shared-memory segment {what} created here is "
                    f"not unlinked on some exception path of "
                    f"'{fn.name}'; close() alone keeps the named "
                    f"segment alive — unlink it before re-raising")
        return self.findings
