"""The per-invocation project index and the project-rule base class.

:class:`ProjectIndex` is built once per ``run_lint`` call (only when a
project rule is enabled): it parses the full package tree the linted
files belong to — the same expansion the import graph uses, so linting
one file sees the same world as linting the tree — and exposes the
symbol table, the call graph and the set of *target* files findings
may be reported against.

A :class:`ProjectRule` is an ordinary registered rule whose ``kind``
is ``"project"``: the engine skips it in the per-file visitor pass and
instead calls :meth:`ProjectRule.check` once with the index.  Findings
flow through the same suppression (``# repro: noqa[CODE]``) and
``--select``/``--ignore`` machinery as per-file findings.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from ..finding import Finding
from ..imports import module_name_for
from ..rules.base import Rule
from .callgraph import CallGraph
from .symbols import FunctionInfo, ModuleInfo, SymbolTable, Typer

__all__ = ["ProjectIndex", "ProjectRule"]


class ProjectIndex:
    """Parsed tree + symbol table + call graph for one lint run."""

    def __init__(self, table: SymbolTable, graph: CallGraph,
                 targets: frozenset) -> None:
        self.table = table
        self.graph = graph
        #: Path strings findings may be reported at (the files the
        #: user asked to lint; the rest of the tree is context only).
        self.targets = targets

    @classmethod
    def build(cls, files: Sequence[Path],
              tree_files: Sequence[Path]) -> "ProjectIndex":
        """Index ``tree_files``; findings restricted to ``files``.

        ``files`` come first and keep their given (possibly relative)
        path spelling, so project findings merge into the same per-file
        reports as visitor findings.
        """
        parsed = []
        seen = set()
        for path in [*files, *tree_files]:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except (OSError, SyntaxError):
                continue
            parsed.append((str(path), tree, path.name == "__init__.py",
                           module_name_for(path)))
        table = SymbolTable.build(parsed)
        graph = CallGraph.build(table)
        return cls(table, graph,
                   frozenset(str(p) for p in files))

    # ------------------------------------------------------------------
    def typer(self, mod: ModuleInfo) -> Typer:
        return Typer(self.table, mod)

    def functions(self) -> Iterator[FunctionInfo]:
        """Every function, target-module ones and context ones alike."""
        return iter(self.table.functions.values())

    def target_functions(self) -> Iterator[FunctionInfo]:
        """Functions defined in files findings may be reported at."""
        for fn in self.table.functions.values():
            if fn.module.path in self.targets:
                yield fn


class ProjectRule(Rule):
    """Base for whole-project rules (``kind = "project"``)."""

    kind = "project"
    scope = "project"

    def __init__(self) -> None:  # no per-file context
        self.findings: List[Finding] = []

    def check(self, project: ProjectIndex, config) -> List[Finding]:
        """Run over the index; return findings (target files only)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def emit(self, project: ProjectIndex, mod: ModuleInfo,
             node: ast.AST, message: str) -> Optional[Finding]:
        """A finding at ``node`` — dropped for non-target modules."""
        if mod.path not in project.targets:
            return None
        finding = Finding(
            code=self.code, message=message, path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0))
        self.findings.append(finding)
        return finding
