"""Resource-lifetime analysis (RES001) over function CFGs.

A *resource* is a variable bound by an acquiring call — ``os.open``,
builtin ``open``, ``tempfile.mkstemp`` (which binds two: the fd and
the temp path), ``tempfile.mkdtemp``, or a ``shared_memory.SharedMemory
(create=True)`` segment.  The analysis walks the function's CFG
(:mod:`cfg`) with a may-be-open state per variable and asks whether
any path — normal fall-off-the-end or escaping exception — leaves a
resource open.

Semantics chosen to match the tree's idioms (and asserted by the
fixture tests):

* a ``with`` statement's own context managers are not tracked — the
  protocol releases them;
* release calls (``os.close(fd)``, ``f.close()``, ``os.unlink(tmp)``,
  ``os.replace(tmp, dst)``, ``os.fdopen(fd, ...)`` — which transfers
  the fd into a file object) are treated as non-raising and release on
  the exception edge too;
* ``return`` publishes: a function handing an open resource to its
  caller is a factory, not a leak (``shard_lock`` yields inside its
  ``try``; ``publish_array`` returns a live segment by design).

``CONC004`` (:mod:`concurrency`) reuses :func:`leak_sites` with the
``shm`` kind, where only ``unlink`` releases and only exception paths
count — a created segment must be unlinked on every error path, while
the normal path deliberately survives the function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, \
    Tuple

from ..finding import Finding
from ..rules.base import register
from .cfg import build_cfg
from .project import ProjectIndex, ProjectRule
from .symbols import FunctionInfo, SymbolTable, call_name

__all__ = ["FdLeak", "Leak", "leak_sites"]

#: What releases each resource kind (attribute or os-level op name).
_RELEASES = {
    "fd": frozenset({"close", "fdopen"}),
    "file": frozenset({"close"}),
    "tmp": frozenset({"unlink", "remove", "replace", "rename"}),
    "tmpdir": frozenset({"rmtree"}),
    "shm": frozenset({"unlink"}),
}

_HUMAN = {
    "fd": "file descriptor", "file": "file object",
    "tmp": "temp file", "tmpdir": "temp directory",
    "shm": "shared-memory segment",
}


@dataclass(frozen=True)
class Leak:
    """One resource that may survive the function on some path."""

    var: Optional[str]
    kind: str
    node: ast.AST  # the acquiring call
    on_exception: bool  # else: normal fall-off-the-end


def _header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions a CFG node for ``stmt`` actually evaluates."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    return [stmt]


def _acquisitions(stmt: ast.stmt, canonical) -> List[
        Tuple[Optional[str], str, ast.Call]]:
    """``(var, kind, call)`` resources this statement may bind."""
    out: List[Tuple[Optional[str], str, ast.Call]] = []
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return out  # context-managed: the protocol releases them
    value: Optional[ast.AST] = None
    targets: Sequence[ast.AST] = ()
    if isinstance(stmt, ast.Assign):
        value, targets = stmt.value, stmt.targets
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        value, targets = stmt.value, [stmt.target]
    elif isinstance(stmt, ast.Expr):
        value, targets = stmt.value, []
    if not isinstance(value, ast.Call):
        return out
    kinds = _acquire_kinds(value, canonical)
    if not kinds:
        return out
    names: List[Optional[str]] = []
    if len(targets) == 1 and isinstance(targets[0], ast.Name):
        names = [targets[0].id]
    elif len(targets) == 1 and isinstance(targets[0], ast.Tuple):
        names = [elt.id if isinstance(elt, ast.Name) else None
                 for elt in targets[0].elts]
    if len(kinds) == 1:
        out.append((names[0] if names else None, kinds[0], value))
    else:  # mkstemp: (fd, path)
        for i, kind in enumerate(kinds):
            var = names[i] if i < len(names) else None
            out.append((var, kind, value))
    return out


def _acquire_kinds(call: ast.Call, canonical) -> List[str]:
    name = call_name(call.func)
    if name is None:
        return []
    dotted = canonical(name)
    if dotted == "open":
        return ["file"]
    if dotted == "os.open":
        return ["fd"]
    if dotted == "tempfile.mkstemp":
        return ["fd", "tmp"]
    if dotted == "tempfile.mkdtemp":
        return ["tmpdir"]
    if dotted in ("tempfile.NamedTemporaryFile",
                  "tempfile.TemporaryFile"):
        return ["file"]
    if dotted.endswith("shared_memory.SharedMemory") or \
            dotted == "SharedMemory":
        for kw in call.keywords:
            if kw.arg == "create" and \
                    isinstance(kw.value, ast.Constant) and \
                    kw.value.value is True:
                return ["shm"]
    return []


def _releases(stmt: ast.stmt, canonical) -> List[Tuple[str, str]]:
    """``(var, op)`` release actions in the statement's header."""
    out: List[Tuple[str, str]] = []
    for root in _header_exprs(stmt):
        if root is None:
            continue
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name):
                out.append((func.value.id, func.attr))
            name = call_name(func)
            if name is None or not node.args:
                continue
            dotted = canonical(name)
            op = dotted.rsplit(".", 1)[-1]
            if dotted in ("os.close", "os.unlink", "os.remove",
                          "os.replace", "os.rename", "os.fdopen",
                          "shutil.rmtree") and \
                    isinstance(node.args[0], ast.Name):
                out.append((node.args[0].id, op))
    return out


def leak_sites(fn: FunctionInfo, table: SymbolTable,
               kinds: FrozenSet[str]) -> Iterator[Leak]:
    """May-leak resources of the given kinds in one function."""
    mod = fn.module

    def canonical(name: str) -> str:
        return table.canonical(mod, name)

    cfg = build_cfg(fn.node)
    acquires: Dict[int, List[Tuple[Optional[str], str, ast.Call]]] = {}
    releases: Dict[int, List[Tuple[str, str]]] = {}
    interesting = False
    for idx, stmt in enumerate(cfg.stmts):
        if stmt is None:
            continue
        acq = [a for a in _acquisitions(stmt, canonical)
               if a[1] in kinds]
        if acq:
            acquires[idx] = acq
            interesting = True
        rel = _releases(stmt, canonical)
        if rel:
            releases[idx] = rel
    if not interesting:
        return

    # Site identity: (acquiring node id, var, kind); state: the set of
    # sites that may still be open.
    State = FrozenSet[Tuple[int, Optional[str], str]]
    empty: State = frozenset()
    in_state: Dict[int, State] = {cfg.entry: empty}
    site_nodes: Dict[int, ast.Call] = {}

    def released(state: State, idx: int) -> State:
        rel = releases.get(idx)
        if not rel:
            return state
        dropped = set()
        for site in state:
            _, var, kind = site
            for rvar, op in rel:
                if var is not None and rvar == var and \
                        op in _RELEASES[kind]:
                    dropped.add(site)
        return state - frozenset(dropped)

    worklist = [cfg.entry]
    exc_exit_state: State = empty
    exit_state: State = empty
    while worklist:
        idx = worklist.pop()
        state = in_state.get(idx, empty)
        if idx == cfg.exit:
            exit_state = state
            continue
        if idx == cfg.exc_exit:
            exc_exit_state = state
            continue
        after_release = released(state, idx)
        normal = after_release
        if cfg.is_return[idx]:
            normal = empty  # publication: the caller owns it now
        for var, kind, call in acquires.get(idx, ()):
            site = (idx, var, kind)
            site_nodes[idx] = call
            if var is not None:
                normal = frozenset(
                    s for s in normal if s[1] != var) | {site}
            else:
                normal = normal | {site}
        for succ in cfg.succ[idx]:
            merged = in_state.get(succ, empty) | normal
            if merged != in_state.get(succ):
                in_state[succ] = merged
                worklist.append(succ)
        # The exception edge fires mid-statement: releases applied
        # (cleanup calls are non-raising), acquisitions not yet bound.
        for succ in cfg.exc_succ[idx]:
            merged = in_state.get(succ, empty) | after_release
            if merged != in_state.get(succ):
                in_state[succ] = merged
                worklist.append(succ)

    seen = set()
    for idx, var, kind in sorted(
            exc_exit_state, key=lambda s: (s[0], s[1] or "", s[2])):
        if (idx, var, kind) not in seen:
            seen.add((idx, var, kind))
            yield Leak(var=var, kind=kind, node=site_nodes[idx],
                       on_exception=True)
    for idx, var, kind in sorted(
            exit_state, key=lambda s: (s[0], s[1] or "", s[2])):
        if (idx, var, kind) not in seen:
            seen.add((idx, var, kind))
            yield Leak(var=var, kind=kind, node=site_nodes[idx],
                       on_exception=False)


@register
class FdLeak(ProjectRule):
    """Fds and temp files must be released on every path."""

    code = "RES001"
    name = "fd-tmp-leak"
    description = ("fd/temp file opened here may never be released: "
                   "some exception or fall-through path reaches the "
                   "end of the function with it still open")

    KINDS = frozenset({"fd", "file", "tmp", "tmpdir"})

    def check(self, project: ProjectIndex, config) -> List[Finding]:
        for fn in project.target_functions():
            for leak in leak_sites(fn, project.table, self.KINDS):
                path_kind = _HUMAN[leak.kind]
                what = f"'{leak.var}'" if leak.var else "the result"
                where = ("an exception path" if leak.on_exception
                         else "a fall-through path")
                self.emit(
                    project, fn.module, leak.node,
                    f"{path_kind} {what} opened here is not released "
                    f"on {where} of '{fn.name}'; close/unlink it in a "
                    f"finally (or hand it to a context manager)")
        return self.findings
