"""Project-wide symbol table and name/type resolution.

One :class:`ModuleInfo` per parsed file: its import bindings (local
name → canonical dotted name, relative imports resolved the same way
:class:`repro.lint.imports.ModuleGraph` resolves them), its module-level
functions and classes, and — per class — the attribute types inferred
from ``__init__`` assignments and annotations.  A file outside any
package (no ``__init__.py`` chain — fixtures, scratch scripts) gets a
synthetic module name; intra-module resolution still works, only
cross-module references do not.

Resolution is deliberately partial: a dotted name resolves to a project
:class:`FunctionInfo`/:class:`ClassInfo` when the chain is statically
evident (direct call, imported name, typed receiver), and to its
canonical external dotted string otherwise.  The rules built on top
treat "unresolved" as "no edge" — precision over recall, so a dict's
``.get`` never impersonates :meth:`ResultCache.get`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


__all__ = ["ClassInfo", "FunctionInfo", "ModuleInfo", "SymbolTable",
           "call_name"]


def call_name(func: ast.AST) -> Optional[str]:
    """``a.b.c`` source text of a call's function expression, if dotted."""
    parts: List[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method definition, with its defining module."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    is_async: bool
    owner: Optional["ClassInfo"] = None

    @property
    def is_method(self) -> bool:
        return self.owner is not None


@dataclass
class ClassInfo:
    """One class definition: methods plus inferred attribute types."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` → canonical type name (class qualname for
    #: project classes, dotted name for stdlib ones).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed file: bindings, definitions, source tree."""

    name: str
    path: str
    tree: ast.Module
    synthetic: bool
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def _import_bindings(module: str, is_package: bool, synthetic: bool,
                     tree: ast.Module) -> Dict[str, str]:
    """Local name → canonical dotted name for every import binding."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    out[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; ``a.b.c`` spelled out
                    # at use sites canonicalizes through the head.
                    head = alias.name.split(".")[0]
                    out.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from(module, node, is_package, synthetic)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = f"{base}.{alias.name}"
    return out


def _resolve_from(module: str, node: ast.ImportFrom, is_package: bool,
                  synthetic: bool) -> Optional[str]:
    """Absolute base module of a ``from ... import`` statement."""
    if node.level == 0:
        return node.module
    if synthetic:
        return None
    parts = module.split(".")
    strip = node.level - 1 if is_package else node.level
    if len(parts) < strip:
        return None
    base_parts = parts[:len(parts) - strip]
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts) if base_parts else None


class SymbolTable:
    """All modules of one lint invocation, indexed for resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, parsed: List[Tuple[str, ast.Module, bool,
                                      Optional[str]]]) -> "SymbolTable":
        """Index ``(path, tree, is_package, module_name)`` tuples.

        ``module_name`` is ``None`` for files outside a package; they
        get a synthetic ``<path>`` name so intra-file resolution works.
        """
        table = cls()
        for path, tree, is_package, name in parsed:
            synthetic = name is None
            mod = ModuleInfo(
                name=name if name is not None else f"<{path}>",
                path=path, tree=tree, synthetic=synthetic)
            mod.imports = _import_bindings(mod.name, is_package,
                                           synthetic, tree)
            table._collect_defs(mod)
            table.modules[mod.name] = mod
        for mod in table.modules.values():
            typer = Typer(table, mod)
            for cls_info in mod.classes.values():
                typer.infer_attr_types(cls_info)
        return table

    def _collect_defs(self, mod: ModuleInfo) -> None:
        def add_function(node: ast.AST, qual: str,
                         owner: Optional[ClassInfo]) -> None:
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                return
            info = FunctionInfo(
                qualname=qual, name=node.name, module=mod, node=node,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                owner=owner)
            self.functions[qual] = info
            if owner is None and "<locals>" not in qual:
                mod.functions[node.name] = info
            elif owner is not None:
                owner.methods[node.name] = info
            # Nested defs become their own functions; the parent's
            # statement walks skip their bodies.
            for item in node.body:
                add_function(item, f"{qual}.<locals>."
                             f"{getattr(item, 'name', '')}", None)

        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(node, f"{mod.name}.{node.name}", None)
            elif isinstance(node, ast.ClassDef):
                cls_info = ClassInfo(
                    qualname=f"{mod.name}.{node.name}", name=node.name,
                    module=mod, node=node)
                mod.classes[node.name] = cls_info
                self.classes[cls_info.qualname] = cls_info
                for item in node.body:
                    add_function(item,
                                 f"{cls_info.qualname}."
                                 f"{getattr(item, 'name', '')}",
                                 cls_info)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def canonical(self, mod: ModuleInfo, dotted: str) -> str:
        """Expand the leading import binding of a local dotted name."""
        head, _, rest = dotted.partition(".")
        target = mod.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def lookup(self, dotted: str) -> Optional[
            Union[FunctionInfo, ClassInfo]]:
        """A project definition a canonical dotted name points at."""
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        owner, _, attr = dotted.rpartition(".")
        if owner in self.classes and attr:
            return self.classes[owner].methods.get(attr)
        if owner in self.modules and attr:
            mod = self.modules[owner]
            return mod.functions.get(attr) or mod.classes.get(attr)
        return None

    def resolve(self, mod: ModuleInfo, dotted: str) -> Union[
            FunctionInfo, ClassInfo, str]:
        """A local dotted name → project definition or canonical name."""
        head = dotted.partition(".")[0]
        if head not in mod.imports:
            local = self.lookup(f"{mod.name}.{dotted}")
            if local is not None:
                return local
        canonical = self.canonical(mod, dotted)
        return self.lookup(canonical) or canonical


class Typer:
    """Light local type inference over one module's functions.

    Three sources, in priority order: parameter/attribute annotations,
    constructor calls (``x = threading.Lock()``), and calls to project
    functions with a resolvable return annotation
    (``self.cache = opts.open_cache()`` with
    ``open_cache() -> Optional[ResultCache]``).  A type is a canonical
    string: a project class qualname or an external dotted name.
    """

    def __init__(self, table: SymbolTable, mod: ModuleInfo) -> None:
        self.table = table
        self.mod = mod

    # ------------------------------------------------------------------
    def resolve_annotation(self, node: Optional[ast.AST]
                           ) -> Optional[str]:
        """Canonical type named by an annotation, if recognisable."""
        text = self._annotation_text(node)
        if text is None:
            return None
        text = text.strip().strip("'\"")
        # Optional[T], T | None, Union[T, None] → T.
        for prefix in ("Optional[", "typing.Optional["):
            if text.startswith(prefix) and text.endswith("]"):
                text = text[len(prefix):-1]
        parts = [p.strip() for p in text.split("|")]
        parts = [p for p in parts if p not in ("None", "")]
        if len(parts) == 1:
            text = parts[0]
        if "[" in text or "|" in text or " " in text:
            return None  # generics carry no receiver we resolve
        resolved = self.table.resolve(self.mod, text.strip("'\""))
        if isinstance(resolved, ClassInfo):
            return resolved.qualname
        if isinstance(resolved, str):
            return resolved
        return None

    @staticmethod
    def _annotation_text(node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - malformed annotation
            return None

    def return_type(self, fn: FunctionInfo) -> Optional[str]:
        """A function's annotated return type, resolved in *its* module."""
        if fn.module is self.mod:
            return self.resolve_annotation(fn.node.returns)
        return Typer(self.table, fn.module).resolve_annotation(
            fn.node.returns)

    # ------------------------------------------------------------------
    def type_of_call(self, node: ast.Call) -> Optional[str]:
        """Type a call expression constructs or returns."""
        name = call_name(node.func)
        if name is None:
            return None
        resolved = self.table.resolve(self.mod, name)
        if isinstance(resolved, ClassInfo):
            return resolved.qualname
        if isinstance(resolved, FunctionInfo):
            return self.return_type(resolved)
        if isinstance(resolved, str) and resolved[:1].isalpha():
            # External constructor by convention: last component
            # capitalized (threading.Lock, shared_memory.SharedMemory).
            last = resolved.rsplit(".", 1)[-1]
            if last[:1].isupper():
                return resolved
        return None

    def local_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """Variable → type for one function's parameters and assigns."""
        env: Dict[str, str] = {}
        if fn.owner is not None:
            env["self"] = fn.owner.qualname
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ty = self.resolve_annotation(arg.annotation)
            if ty is not None:
                env[arg.arg] = ty
        for node in ast.walk(fn.node):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                ty = self._type_of_value(node.value, env, fn)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                target = node.target.id
                ty = self.resolve_annotation(node.annotation)
            else:
                continue
            if target is not None and ty is not None:
                env.setdefault(target, ty)
        return env

    def _type_of_value(self, value: ast.AST, env: Dict[str, str],
                       fn: FunctionInfo) -> Optional[str]:
        if isinstance(value, ast.Call):
            # One level of receiver typing: opts.open_cache() needs
            # ``opts``'s type to find the annotated return.
            if isinstance(value.func, ast.Attribute):
                method = self.resolve_method(value.func, env)
                if isinstance(method, FunctionInfo):
                    return self.return_type(method)
            return self.type_of_call(value)
        if isinstance(value, ast.Attribute):
            return self.type_of_expr(value, env)
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if isinstance(value, ast.Await):
            return None
        return None

    def type_of_expr(self, node: ast.AST, env: Dict[str, str]
                     ) -> Optional[str]:
        """Type of a receiver expression (Name or self-attribute)."""
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.type_of_expr(node.value, env)
            if base is not None and base in self.table.classes:
                return self.table.classes[base].attr_types.get(node.attr)
        return None

    def resolve_method(self, func: ast.Attribute, env: Dict[str, str]
                       ) -> Union[FunctionInfo, Tuple[str, str], None]:
        """``recv.attr(...)`` → FunctionInfo, ``(type, attr)``, or None."""
        recv_type = self.type_of_expr(func.value, env)
        if recv_type is None:
            return None
        cls = self.table.classes.get(recv_type)
        if cls is not None:
            method = cls.methods.get(func.attr)
            if method is not None:
                return method
            return (recv_type, func.attr)
        return (recv_type, func.attr)

    # ------------------------------------------------------------------
    def infer_attr_types(self, cls: ClassInfo) -> None:
        """Fill ``cls.attr_types`` from annotations and ``__init__``."""
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                ty = self.resolve_annotation(item.annotation)
                if ty is not None:
                    cls.attr_types[item.target.id] = ty
        init = cls.methods.get("__init__")
        if init is None:
            return
        env = self.local_types(init)
        for node in ast.walk(init.node):
            target = value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and \
                    node.value is not None:
                target, value = node.target, node.value
                ty = self.resolve_annotation(node.annotation)
                if ty is not None and _is_self_attr(target):
                    cls.attr_types.setdefault(target.attr, ty)
                    continue
            if target is None or not _is_self_attr(target):
                continue
            ty = self._type_of_value(value, env, init)
            if ty is not None:
                cls.attr_types.setdefault(target.attr, ty)


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")
