"""Flow-sensitive unit propagation: the UNIT003 upgrade.

The per-file UNIT003 of PR 5 only caught mixes *within one
expression* (``x_seconds + y_cycles``).  This version runs a small
forward abstract interpretation per function over the unit-suffix
lattice (``seconds``/``cycles``/``hz``/``volts``/``joules``/``watts``
/ unknown): assignments propagate tags through locals, suffixed names
and attributes seed them, ``+``/``-`` preserve a tag, ``*``/``/``
erase it (a conversion), and calls contribute the callee's *return
unit* — the name's suffix, or, for project functions, a one-level
summary inferred from its return statements.  Scope is the whole tree
(the old rule was confined to three packages): a mixed-unit compare in
``serve`` is as wrong as one in ``power``.

Reported, exactly as before, under ``UNIT003``:

* ``+``/``-`` between operands with different known tags;
* comparisons between operands with different known tags;
* assigning a value with a known tag to a name/attribute whose suffix
  names a *different* unit (``deadline_seconds = horizon_cycles``).

A tag is only ever *known*; anything ambiguous (merge conflicts at
branch joins, untagged operands, conversions) degrades to unknown and
stays silent — the rule's contract is zero false positives on honest
conversions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from ..finding import Finding
from ..rules.base import register
from ..rules.units import _suffix_of
from .project import ProjectIndex, ProjectRule
from .symbols import FunctionInfo, SymbolTable, call_name

__all__ = ["MixedUnitFlow", "return_unit"]

#: Builtins that pass their (sole unit-bearing) argument's tag through.
_TRANSPARENT_CALLS = frozenset({
    "float", "int", "abs", "min", "max", "sum", "round",
    "np.minimum", "np.maximum", "np.abs", "math.fsum",
})

Env = Dict[str, Optional[str]]


def return_unit(table: SymbolTable, fn: FunctionInfo,
                _cache: Dict[str, Optional[str]]) -> Optional[str]:
    """The unit a function returns, if statically evident.

    The function name's own suffix wins (``elapsed_seconds()``);
    otherwise every ``return`` expression must carry the same known
    tag under a parameters-only environment.
    """
    cached = _cache.get(fn.qualname, "∅")
    if cached != "∅":
        return cached
    _cache[fn.qualname] = None  # cut recursion: unknown while open
    suffix = _suffix_of(fn.name)
    if suffix is not None:
        _cache[fn.qualname] = suffix
        return suffix
    env: Env = {}
    args = fn.node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        env[arg.arg] = _suffix_of(arg.arg)
    tags = set()
    for node in _walk_own(fn.node):
        if isinstance(node, ast.Return):
            if node.value is None:
                tags.add(None)
            else:
                tags.add(_tag_of(node.value, env, table, fn, _cache,
                                 sink=None))
    result = tags.pop() if len(tags) == 1 else None
    _cache[fn.qualname] = result
    return result


def _walk_own(fn_node: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_unit(node: ast.Call, env: Env, table: SymbolTable,
               fn: FunctionInfo, cache: Dict[str, Optional[str]],
               sink) -> Optional[str]:
    name = call_name(node.func)
    if name is None:
        return None
    if name in _TRANSPARENT_CALLS or \
            name.rsplit(".", 1)[-1] in ("minimum", "maximum", "fsum"):
        tags = {_tag_of(a, env, table, fn, cache, sink)
                for a in node.args
                if not isinstance(a, ast.Constant)}
        tags.discard(None)
        return tags.pop() if len(tags) == 1 else None
    suffix = _suffix_of(name.rsplit(".", 1)[-1])
    if suffix is not None:
        return suffix
    resolved = table.resolve(fn.module, name)
    if isinstance(resolved, FunctionInfo):
        return return_unit(table, resolved, cache)
    return None


def _tag_of(node: ast.AST, env: Env, table: SymbolTable,
            fn: FunctionInfo, cache: Dict[str, Optional[str]],
            sink) -> Optional[str]:
    """Bottom-up tag of an expression; reports mixes through ``sink``."""
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        return _suffix_of(node.id)
    if isinstance(node, ast.Attribute):
        return _suffix_of(node.attr)
    if isinstance(node, ast.Subscript):
        return _tag_of(node.value, env, table, fn, cache, sink)
    if isinstance(node, ast.UnaryOp):
        return _tag_of(node.operand, env, table, fn, cache, sink)
    if isinstance(node, ast.Call):
        for arg in node.args:
            _tag_of(arg, env, table, fn, cache, sink)
        return _call_unit(node, env, table, fn, cache, sink)
    if isinstance(node, ast.IfExp):
        _tag_of(node.test, env, table, fn, cache, sink)
        a = _tag_of(node.body, env, table, fn, cache, sink)
        b = _tag_of(node.orelse, env, table, fn, cache, sink)
        return a if a == b else None
    if isinstance(node, ast.BinOp):
        left = _tag_of(node.left, env, table, fn, cache, sink)
        right = _tag_of(node.right, env, table, fn, cache, sink)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if isinstance(node.left, ast.Constant):
                return right
            if isinstance(node.right, ast.Constant):
                return left
            if left is not None and right is not None:
                if left != right:
                    if sink is not None:
                        op = "+" if isinstance(node.op, ast.Add) \
                            else "-"
                        sink(node, op, left, right)
                    return None
                return left
            return None
        return None  # * and / are conversions; %, // &c. stay unknown
    if isinstance(node, ast.Compare):
        operands = [node.left, *node.comparators]
        tags = [_tag_of(o, env, table, fn, cache, sink)
                for o in operands]
        if sink is not None:
            for (lo, lt), (ro, rt) in zip(
                    zip(operands, tags), zip(operands[1:], tags[1:])):
                if lt is not None and rt is not None and lt != rt:
                    sink(node, "comparison", lt, rt)
        return None
    if isinstance(node, (ast.BoolOp, ast.Await)):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                _tag_of(child, env, table, fn, cache, sink)
        return None
    return None


@register
class MixedUnitFlow(ProjectRule):
    """Unit tags must agree across +/-/comparison and assignment."""

    code = "UNIT003"
    name = "mixed-unit-arithmetic"
    description = ("+/-/comparison/assignment mixing different unit "
                   "suffixes, tracked through locals, returns and one "
                   "call level (e.g. t_seconds = horizon_cycles)")

    def check(self, project: ProjectIndex, config) -> List[Finding]:
        table = project.table
        cache: Dict[str, Optional[str]] = {}
        for fn in project.target_functions():
            if "<locals>" in fn.qualname:
                continue  # analysed as part of no one; own pass below
            self._check_function(project, table, fn, cache)
        return self.findings

    # ------------------------------------------------------------------
    def _check_function(self, project: ProjectIndex,
                        table: SymbolTable, fn: FunctionInfo,
                        cache: Dict[str, Optional[str]]) -> None:
        reported = set()

        def sink(node: ast.AST, op: str, left: str,
                 right: str) -> None:
            key = (getattr(node, "lineno", 0),
                   getattr(node, "col_offset", 0), op, left, right)
            if key in reported:
                return
            reported.add(key)
            self.emit(
                project, fn.module, node,
                f"'{op}' mixes units: left is {left}, right is "
                f"{right}; convert explicitly (multiply/divide by "
                f"the rate) first")

        env: Env = {}
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            env[arg.arg] = _suffix_of(arg.arg)

        def eval_expr(node: Optional[ast.AST]) -> Optional[str]:
            if node is None:
                return None
            return _tag_of(node, env, table, fn, cache, sink)

        def assign(target: ast.AST, tag: Optional[str],
                   node: ast.AST) -> None:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is None:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        assign(elt, None, node)
                return
            own = _suffix_of(name)
            if own is not None and tag is not None and own != tag:
                sink(node, "assignment", tag, own)
            if isinstance(target, ast.Name):
                env[target.id] = own if own is not None else tag

        def exec_block(stmts: List[ast.stmt]) -> None:
            for stmt in stmts:
                exec_stmt(stmt)

        def merged(envs: List[Env]) -> None:
            keys = set().union(*(e.keys() for e in envs))
            env.clear()
            for key in keys:
                tags = {e.get(key) for e in envs}
                env[key] = tags.pop() if len(tags) == 1 else None

        def exec_stmt(stmt: ast.stmt) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                return
            if isinstance(stmt, ast.Assign):
                tag = eval_expr(stmt.value)
                for target in stmt.targets:
                    assign(target, tag, stmt.value)
                return
            if isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    assign(stmt.target, eval_expr(stmt.value),
                           stmt.value)
                return
            if isinstance(stmt, ast.AugAssign):
                target_tag = eval_expr(stmt.target)
                value_tag = eval_expr(stmt.value)
                if isinstance(stmt.op, (ast.Add, ast.Sub)) and \
                        target_tag is not None and \
                        value_tag is not None and \
                        target_tag != value_tag and \
                        not isinstance(stmt.value, ast.Constant):
                    op = "+" if isinstance(stmt.op, ast.Add) else "-"
                    sink(stmt, op, target_tag, value_tag)
                return
            if isinstance(stmt, ast.If):
                eval_expr(stmt.test)
                base = dict(env)
                exec_block(stmt.body)
                then_env = dict(env)
                env.clear()
                env.update(base)
                exec_block(stmt.orelse)
                merged([then_env, dict(env)])
                return
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                eval_expr(stmt.iter)
                assign(stmt.target, None, stmt.iter)
                base = dict(env)
                exec_block(stmt.body)
                exec_block(stmt.orelse)
                merged([base, dict(env)])
                return
            if isinstance(stmt, ast.While):
                eval_expr(stmt.test)
                base = dict(env)
                exec_block(stmt.body)
                exec_block(stmt.orelse)
                merged([base, dict(env)])
                return
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    eval_expr(item.context_expr)
                    if item.optional_vars is not None:
                        assign(item.optional_vars, None,
                               item.context_expr)
                exec_block(stmt.body)
                return
            if isinstance(stmt, ast.Try):
                base = dict(env)
                exec_block(stmt.body)
                branches = [dict(env)]
                for handler in stmt.handlers:
                    env.clear()
                    env.update(base)
                    exec_block(handler.body)
                    branches.append(dict(env))
                merged(branches)
                exec_block(stmt.orelse)
                exec_block(stmt.finalbody)
                return
            if isinstance(stmt, ast.Return):
                eval_expr(stmt.value)
                return
            if isinstance(stmt, (ast.Expr, ast.Assert, ast.Raise,
                                 ast.Delete)):
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        eval_expr(child)
                return

        exec_block(list(fn.node.body))
