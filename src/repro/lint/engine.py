"""The lint engine: file collection, scoping, suppressions, dispatch.

:func:`run_lint` is the single entry point: collect the files, build
the static import graph once (for the reachability-scoped determinism
rules), then per file parse the AST, run every enabled per-file rule,
run the project (interprocedural) rules once over a
:class:`~.dataflow.project.ProjectIndex` of the whole tree, and filter
everything through the ``# repro: noqa[RULE]`` suppressions.  A
suppression that matches nothing is itself a finding (``LINT001``) — a
stale ``noqa`` is how a once-justified exception outlives its
justification.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Tuple

from .finding import Finding, Suppression
from .imports import ModuleGraph, module_name_for
from .rules import RuleContext, registry

__all__ = ["LintConfig", "run_lint", "collect_files"]

#: The suppression comment marker: ``repro: noqa`` after a hash, with
#: an optional ``[CODE,...]`` selector.
_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[^\]]*)\])?")

#: Engine-level finding codes (not suppressible, not rule classes).
PARSE_ERROR = "LINT000"
UNUSED_NOQA = "LINT001"
UNKNOWN_NOQA_CODE = "LINT002"


@dataclass(frozen=True)
class LintConfig:
    """What to check and how.

    Attributes:
        select: when given, only these rule codes run.
        ignore: rule codes to skip (applied after ``select``).
        determinism_roots: modules whose import-reachable set bounds
            the scoped determinism rules (wall clock, environment,
            set iteration).
        unit_packages: package prefixes the unit-suffix convention
            applies to.
        all_scopes: treat every file as reachable and unit-scoped —
            used by the fixture tests and ``--all-scopes``.
        respect_noqa: honour ``# repro: noqa`` comments (and report
            unused ones); ``False`` shows everything.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    determinism_roots: Tuple[str, ...] = (
        "repro.exec.cache", "repro.experiments.reporting")
    unit_packages: Tuple[str, ...] = (
        "repro.power", "repro.core", "repro.sched")
    all_scopes: bool = False
    respect_noqa: bool = True

    def enabled_codes(self) -> FrozenSet[str]:
        """The rule codes that actually run under this config."""
        codes = set(registry())
        if self.select is not None:
            codes &= self.select
        return frozenset(codes - self.ignore)


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths`` (files kept, directories walked)."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(p for p in sorted(path.rglob("*.py"))
                       if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            out.append(path)
    seen = set()
    unique = []
    for p in out:
        r = p.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(p)
    return unique


def _package_roots(files: Iterable[Path]) -> List[Path]:
    """Top-level package directories containing the given files."""
    roots = []
    seen = set()
    for path in files:
        parent = path.resolve().parent
        top = None
        while (parent / "__init__.py").exists():
            top = parent
            parent = parent.parent
        if top is not None and top not in seen:
            seen.add(top)
            roots.append(top)
    return roots


def _tree_files(files: Sequence[Path]) -> List[Path]:
    """``files`` plus every module of the packages they belong to.

    Linting a single file must see the same world as linting the tree:
    the import graph and the project index always span full packages.
    """
    out: List[Path] = list(files)
    for root in _package_roots(files):
        out.extend(p for p in root.rglob("*.py")
                   if "__pycache__" not in p.parts)
    return out


def _graph_for(files: Sequence[Path]) -> ModuleGraph:
    """Import graph over the whole package(s) the files belong to."""
    return ModuleGraph.build(_tree_files(files))


def _suppressions(path: str, text: str) -> List[Suppression]:
    out: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA.search(tok.string)
            if m is None:
                continue
            codes = m.group("codes")
            parsed = None if codes is None else frozenset(
                c.strip() for c in codes.split(",") if c.strip())
            out.append(Suppression(
                path=path, line=tok.start[0], codes=parsed,
                col=tok.start[1] + m.start()))
    except tokenize.TokenError:
        pass
    return out


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
    return aliases


@dataclass
class _FileReport:
    findings: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)


def _lint_file(path: Path, config: LintConfig,
               reachable: FrozenSet[str]) -> _FileReport:
    report = _FileReport()
    given = str(path)
    try:
        text = path.read_text()
    except OSError as exc:
        report.findings.append(Finding(
            code=PARSE_ERROR, message=f"cannot read file: {exc}",
            path=given, line=1, col=0))
        return report
    try:
        tree = ast.parse(text, filename=given)
    except SyntaxError as exc:
        report.findings.append(Finding(
            code=PARSE_ERROR, message=f"syntax error: {exc.msg}",
            path=given, line=exc.lineno or 1, col=exc.offset or 0))
        return report

    module = module_name_for(path)
    in_units = config.all_scopes or (module is not None and any(
        module == p or module.startswith(p + ".")
        for p in config.unit_packages))
    ctx = RuleContext(
        path=given, module=module,
        reachable=config.all_scopes or (module in reachable),
        in_unit_packages=in_units,
        aliases=_collect_aliases(tree))

    enabled = config.enabled_codes()
    for code, rule_cls in sorted(registry().items()):
        if code not in enabled:
            continue
        if rule_cls.kind == "project":
            continue  # runs once over the ProjectIndex, not per file
        if rule_cls.scope == "reachable" and not ctx.reachable:
            continue
        if rule_cls.scope == "units" and not ctx.in_unit_packages:
            continue
        rule_cls(ctx).visit(tree)
    report.findings = ctx.findings
    if config.respect_noqa:
        report.suppressions = _suppressions(given, text)
    return report


def _apply_suppressions(report: _FileReport,
                        config: LintConfig) -> List[Finding]:
    kept: List[Finding] = []
    for finding in report.findings:
        suppressed = False
        for sup in report.suppressions:
            if sup.matches(finding):
                sup.used.append(finding.code)
                suppressed = True
        if not suppressed:
            kept.append(finding)

    known = set(registry())
    enabled = config.enabled_codes()
    fully_enabled = enabled == frozenset(known)
    for sup in report.suppressions:
        if sup.codes is not None:
            unknown = sorted(sup.codes - known)
            for code in unknown:
                kept.append(Finding(
                    code=UNKNOWN_NOQA_CODE,
                    message=f"unknown rule code '{code}' in noqa",
                    path=sup.path, line=sup.line, col=sup.col))
            if unknown:
                continue
        if sup.used:
            continue
        # Only call a suppression unused when every rule it could have
        # matched actually ran — a narrowed --select must not flag the
        # noqa comments of the rules it skipped.
        if sup.codes is None:
            if not fully_enabled:
                continue
        elif not sup.codes <= enabled:
            continue
        label = ("noqa" if sup.codes is None
                 else "noqa[" + ",".join(sorted(sup.codes)) + "]")
        kept.append(Finding(
            code=UNUSED_NOQA,
            message=f"unused suppression '{label}': no finding on "
                    f"this line matches it",
            path=sup.path, line=sup.line, col=sup.col))
    return kept


def run_lint(paths: Sequence[Path],
             config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint ``paths`` (files and/or directories) under ``config``.

    Returns all surviving findings sorted by (path, line, col, code).
    An empty list means the tree is clean.
    """
    config = config or LintConfig()
    files = collect_files([Path(p) for p in paths])
    tree_files = _tree_files(files)
    reachable: FrozenSet[str] = frozenset()
    if not config.all_scopes:
        reachable = ModuleGraph.build(tree_files).reachable_from(
            config.determinism_roots)

    reports: Dict[str, _FileReport] = {}
    for path in files:
        reports[str(path)] = _lint_file(path, config, reachable)

    enabled = config.enabled_codes()
    project_rules = [cls for code, cls in sorted(registry().items())
                     if code in enabled and cls.kind == "project"]
    if project_rules and files:
        from .dataflow.project import ProjectIndex
        project = ProjectIndex.build(files, tree_files)
        for rule_cls in project_rules:
            for finding in rule_cls().check(project, config):
                report = reports.get(finding.path)
                if report is not None:
                    report.findings.append(finding)

    findings: List[Finding] = []
    for report in reports.values():
        findings.extend(_apply_suppressions(report, config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
