"""Finding and suppression primitives of the lint engine.

A :class:`Finding` is one rule violation at one source location.  A
:class:`Suppression` is one ``# repro: noqa[RULE]`` comment; the engine
matches findings against suppressions on the same physical line and
reports suppressions that never matched anything (``LINT001``), so stale
``noqa`` comments cannot silently rot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

__all__ = ["Finding", "Suppression"]


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation.

    Attributes:
        code: rule identifier, e.g. ``"DET001"``.
        message: human-readable description of the violation.
        path: file the violation is in (as given to the engine).
        line: 1-based source line.
        col: 0-based source column.
    """

    code: str
    message: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        """``path:line:col: CODE message`` (clickable in most editors)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} {self.message}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-able representation (the ``--format json`` payload)."""
        return {"code": self.code, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col}


@dataclass(slots=True)
class Suppression:
    """One ``# repro: noqa`` / ``# repro: noqa[A,B]`` comment.

    Attributes:
        path: file the comment is in.
        line: 1-based line the comment sits on — suppresses findings
            reported on that same line.
        codes: the rule codes inside the brackets; ``None`` for a bare
            ``# repro: noqa`` (suppresses every rule on the line).
        col: 0-based column of the ``#``.
    """

    path: str
    line: int
    codes: Optional[FrozenSet[str]]
    col: int = 0
    used: List[str] = field(default_factory=list)

    def matches(self, finding: Finding) -> bool:
        """Whether this comment suppresses ``finding``."""
        if finding.line != self.line:
            return False
        return self.codes is None or finding.code in self.codes
