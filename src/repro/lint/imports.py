"""Static import graph over the ``repro`` source tree.

The determinism rules are scoped: wall-clock and environment reads are
only forbidden in modules that can *feed* the exec-cache key
construction or the report serialization (see ISSUE rationale — a
wall-clock read in a CLI entry point is fine, one in a module the cache
imports is a cache-poisoning hazard).  That scope is "every module
reachable, through imports, from the configured root modules", which
this module computes purely statically from the AST — nothing is
imported or executed.

Relative imports are resolved against the importing module's package;
``from .x import y`` maps to ``pkg.x`` and, when ``pkg.x.y`` is itself
a module, to that too (both edges are added — over-approximating keeps
the reachable set sound).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

__all__ = ["ModuleGraph", "module_name_for"]


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of ``path``, or ``None`` outside a package.

    Walks up from the file through ``__init__.py``-bearing directories;
    ``.../src/repro/exec/cache.py`` maps to ``"repro.exec.cache"``.
    """
    path = path.resolve()
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None
    return ".".join(reversed(parts))


class ModuleGraph:
    """Import edges between the modules of one source tree."""

    def __init__(self) -> None:
        self._edges: Dict[str, Set[str]] = {}
        self._modules: Set[str] = set()

    @classmethod
    def build(cls, files: Iterable[Path]) -> "ModuleGraph":
        """Parse ``files`` and record every intra-tree import edge."""
        graph = cls()
        named = []
        for path in files:
            name = module_name_for(path)
            if name is not None:
                graph._modules.add(name)
                named.append((name, path))
        for name, path in named:
            try:
                tree = ast.parse(path.read_text(),
                                 filename=str(path))
            except (OSError, SyntaxError):
                continue
            is_package = path.name == "__init__.py"
            graph._edges[name] = graph._imports_of(
                name, tree, is_package)
        return graph

    def _imports_of(self, module: str, tree: ast.AST,
                    is_package: bool) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._add_candidates(out, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_base(module, node, is_package)
                if base is None:
                    continue
                self._add_candidates(out, base)
                for alias in node.names:
                    self._add_candidates(out, f"{base}.{alias.name}")
        return out

    def _resolve_base(self, module: str, node: ast.ImportFrom,
                      is_package: bool) -> Optional[str]:
        """Absolute module a ``from ... import`` statement targets."""
        if node.level == 0:
            return node.module
        parts = module.split(".")
        # ``from . import x`` inside pkg.mod resolves against pkg: one
        # level strips the module name itself, further levels strip
        # packages.  A package __init__ *is* its package, so its first
        # level strips nothing.
        strip = node.level - 1 if is_package else node.level
        if len(parts) < strip:
            return None
        base_parts = parts[:len(parts) - strip]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _add_candidates(self, out: Set[str], name: str) -> None:
        """Record ``name`` and every package prefix that is a module."""
        parts = name.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self._modules:
                out.add(candidate)

    def reachable_from(self, roots: Iterable[str]) -> FrozenSet[str]:
        """Modules reachable from ``roots`` (roots included, if known)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self._modules]
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            stack.extend(self._edges.get(module, ()))
        return frozenset(seen)
