"""Rule registry: importing this package registers every rule."""

from __future__ import annotations

from . import determinism, kernel, units  # noqa: F401 (registration)
from .base import Rule, RuleContext, registry

__all__ = ["Rule", "RuleContext", "registry"]
