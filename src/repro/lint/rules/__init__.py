"""Rule registry: importing this package registers every rule."""

from __future__ import annotations

from . import determinism, kernel, units  # noqa: F401 (registration)
from .base import Rule, RuleContext, registry

# The interprocedural (kind="project") rule families register on
# import too; they live beside the dataflow engine they are built on.
from ..dataflow import concurrency, resources, unitflow  # noqa: E402,F401

__all__ = ["Rule", "RuleContext", "registry"]
