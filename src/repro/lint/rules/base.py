"""Rule framework: visitor base class, context, registry.

A rule is an :class:`ast.NodeVisitor` with a class-level ``code``,
``name``, ``scope`` and ``description``.  The engine instantiates every
enabled rule once per file with a shared :class:`RuleContext` and runs
its ``visit`` over the module tree; rules report through
:meth:`Rule.report`.

Scopes decide which files a rule applies to:

``"global"``
    every linted file (determinism of RNG, kernel discipline);
``"reachable"``
    only modules reachable, through imports, from the configured
    determinism roots (wall-clock / environment / set-order rules);
``"units"``
    only modules inside the configured unit-convention packages
    (``repro.power``, ``repro.core``, ``repro.sched`` by default);
``"project"``
    interprocedural rules (``kind = "project"``) that the engine runs
    once over the whole indexed tree rather than per file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from ..finding import Finding

__all__ = ["Rule", "RuleContext", "register", "registry", "dotted_name"]

_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def registry() -> Dict[str, Type["Rule"]]:
    """All registered rules, keyed by code (import-populated)."""
    return dict(_REGISTRY)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class RuleContext:
    """Per-file state shared by every rule instance.

    Attributes:
        path: the file, as given to the engine (used in findings).
        module: dotted module name, ``None`` outside a package.
        reachable: whether the module is in the determinism-root
            reachable set (scope ``"reachable"``).
        in_unit_packages: whether the module is inside a
            unit-convention package (scope ``"units"``).
        aliases: import aliases seen in the file, canonical name per
            local name (``{"np": "numpy"}``) — filled by the engine.
        findings: the output list rules append to.
    """

    path: str
    module: Optional[str]
    reachable: bool
    in_unit_packages: bool
    aliases: Dict[str, str] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    def canonical(self, dotted: str) -> str:
        """Resolve the leading alias of ``dotted`` (``np.x`` → ``numpy.x``)."""
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


class Rule(ast.NodeVisitor):
    """Base class for lint rules (see the module docstring)."""

    #: Stable identifier, e.g. ``"DET001"``.
    code: str = ""
    #: Short kebab-case name, e.g. ``"unseeded-rng"``.
    name: str = ""
    #: ``"file"`` rules run as per-file visitors; ``"project"`` rules
    #: (see :mod:`..dataflow.project`) run once over the whole tree.
    kind: str = "file"
    #: ``"global"``, ``"reachable"``, ``"units"`` or ``"project"``.
    scope: str = "global"
    #: One-line description for ``--list-rules`` and the docs.
    description: str = ""

    def __init__(self, ctx: RuleContext) -> None:
        self.ctx = ctx

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node``'s location."""
        self.ctx.findings.append(Finding(
            code=self.code, message=message, path=self.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0)))
