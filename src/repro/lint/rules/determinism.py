"""Determinism rules (DET0xx).

The content-addressed result cache and the byte-identical
serial/parallel/warm-cache guarantees hold only if every code path that
feeds a cache key or a serialized report is deterministic across
processes, machines and ``PYTHONHASHSEED`` values.  These rules catch
the three classic ways that breaks:

* **DET001** — module-level (unseeded) random number generators;
* **DET002** — wall-clock reads (``time.time``, ``datetime.now``);
* **DET003** — environment reads (``os.environ`` / ``os.getenv``);
* **DET004** — iteration over ``set`` expressions, whose order depends
  on the per-process string-hash seed.

DET001 applies everywhere (an unseeded RNG is never acceptable in this
codebase).  DET002–DET004 are scoped to modules reachable from the
exec-cache key construction and the report serialization; a CLI entry
point may read the clock, a module the cache imports may not.
"""

from __future__ import annotations

import ast
from typing import Optional

from .base import Rule, dotted_name, register

__all__ = ["UnseededRng", "WallClockRead", "EnvironmentRead",
           "SetIteration"]

#: ``numpy.random`` attributes that are fine to touch: explicit
#: generator/seed machinery (flagged separately when called unseeded).
_NP_RANDOM_OK = frozenset({
    "Generator", "SeedSequence", "default_rng", "RandomState",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: ``random`` attributes that are fine to *name* (instances must still
#: be seeded, which the call check enforces).
_PY_RANDOM_OK = frozenset({"Random"})

#: Wall-clock reads.  ``time.monotonic``/``perf_counter`` are fine —
#: they never feed values into results, only into latency measurement.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    # ``from datetime import datetime/date`` spellings:
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
})

#: Order-sensitive single-argument consumers of an iterable.
_ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "iter",
                              "reversed"})


def _is_seeded_call(node: ast.Call) -> bool:
    """Whether a generator-constructor call passes an explicit seed."""
    return bool(node.args) or any(kw.arg in ("seed", "x", "entropy")
                                  for kw in node.keywords)


@register
class UnseededRng(Rule):
    """No module-level RNG state; generators must be explicitly seeded."""

    code = "DET001"
    name = "unseeded-rng"
    scope = "global"
    description = ("use of the module-level random state "
                   "(random.* / numpy.random.*) or an unseeded "
                   "generator constructor")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _PY_RANDOM_OK:
                    self.report(node,
                                f"import of random.{alias.name} uses "
                                f"the unseeded module-level RNG")
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NP_RANDOM_OK:
                    self.report(node,
                                f"import of numpy.random.{alias.name} "
                                f"uses the global numpy RNG state")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            full = self.ctx.canonical(name)
            self._check_call(node, full)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, full: str) -> None:
        if full.startswith("random."):
            attr = full[len("random."):]
            if attr == "Random" or attr == "RandomState":
                if not _is_seeded_call(node):
                    self.report(node, f"{full}() without an explicit "
                                      f"seed is nondeterministic")
            elif attr == "SystemRandom":
                self.report(node, "random.SystemRandom is "
                                  "nondeterministic by design")
            elif "." not in attr:
                self.report(node,
                            f"{full}() draws from the unseeded "
                            f"module-level RNG; use a seeded "
                            f"random.Random/np.random.default_rng")
        elif full.startswith("numpy.random."):
            attr = full[len("numpy.random."):]
            if attr in ("default_rng", "RandomState", "SeedSequence"):
                if not _is_seeded_call(node):
                    self.report(node,
                                f"numpy.random.{attr}() without an "
                                f"explicit seed is nondeterministic")
            elif "." not in attr and attr not in _NP_RANDOM_OK:
                self.report(node,
                            f"numpy.random.{attr}() uses the global "
                            f"numpy RNG state; use a seeded "
                            f"default_rng")


@register
class WallClockRead(Rule):
    """No wall-clock reads in cache-key / report-serialization paths."""

    code = "DET002"
    name = "wall-clock-read"
    scope = "reachable"
    description = ("wall-clock read (time.time, datetime.now, ...) in "
                   "a module reachable from cache-key construction or "
                   "report serialization")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if f"time.{alias.name}" in _WALL_CLOCK:
                    self.report(node, f"import of time.{alias.name} "
                                      f"(wall clock)")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.AST) -> None:
        name = dotted_name(node)
        if name is None:
            return
        full = self.ctx.canonical(name)
        if full in _WALL_CLOCK:
            self.report(node,
                        f"{full} reads the wall clock; deterministic "
                        f"paths may only use monotonic timers "
                        f"(time.perf_counter) for latency measurement")


@register
class EnvironmentRead(Rule):
    """No environment reads in cache-key / report paths."""

    code = "DET003"
    name = "environment-read"
    scope = "reachable"
    description = ("os.environ / os.getenv read in a module reachable "
                   "from cache-key construction or report "
                   "serialization")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "os":
            for alias in node.names:
                if alias.name in ("environ", "getenv", "environb"):
                    self.report(node, f"import of os.{alias.name}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = dotted_name(node)
        if name is not None:
            full = self.ctx.canonical(name)
            if full.startswith(("os.environ", "os.getenv",
                                "os.environb")):
                self.report(node,
                            f"{full} makes behaviour depend on the "
                            f"process environment; thread explicit "
                            f"parameters instead")
                return  # avoid double report on os.environ.get
        self.generic_visit(node)


@register
class SetIteration(Rule):
    """No order-dependent iteration over set expressions."""

    code = "DET004"
    name = "set-iteration"
    scope = "reachable"
    description = ("iteration over a set expression (order depends on "
                   "the per-process hash seed) in a module reachable "
                   "from cache-key construction or report "
                   "serialization")

    _MESSAGE = ("iteration order of a set depends on PYTHONHASHSEED; "
                "wrap it in sorted()")

    @staticmethod
    def _set_expr(node: ast.AST) -> Optional[ast.AST]:
        """The node itself when it is syntactically a set expression."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return node
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in ("set", "frozenset"):
            return node
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)):
            # Set algebra keeps set-ness: ``set(a) - set(b)`` etc.
            if SetIteration._set_expr(node.left) is not None or \
                    SetIteration._set_expr(node.right) is not None:
                return node
        return None

    def visit_For(self, node: ast.For) -> None:
        target = self._set_expr(node.iter)
        if target is not None:
            self.report(target, self._MESSAGE)
        self.generic_visit(node)

    def _visit_comprehensions(self, node) -> None:
        for comp in node.generators:
            target = self._set_expr(comp.iter)
            if target is not None:
                self.report(target, self._MESSAGE)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehensions
    visit_SetComp = _visit_comprehensions
    visit_DictComp = _visit_comprehensions
    visit_GeneratorExp = _visit_comprehensions

    def visit_Call(self, node: ast.Call) -> None:
        consumer = None
        if isinstance(node.func, ast.Name) and \
                node.func.id in _ORDER_SENSITIVE:
            consumer = node.func.id
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr == "join":
            consumer = "join"
        if consumer is not None and node.args:
            target = self._set_expr(node.args[0])
            if target is not None:
                self.report(target,
                            f"{consumer}() over a set: " + self._MESSAGE)
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        target = self._set_expr(node.value)
        if target is not None:
            self.report(target, "unpacking a set: " + self._MESSAGE)
        self.generic_visit(node)
