"""Kernel-discipline rules (KER0xx).

The array-native :class:`~repro.sched.schedule.Schedule` kernel (PR 4)
derives per-processor busy totals, last-finish times and idle-gap
arrays *once*, at construction, and the one-shot DVS-ladder sweep is
bitwise-exact only against those frozen arrays.  Three disciplines keep
that true:

* **KER001** — schedules are built only through the blessed
  constructors (``Schedule(...)`` over placements, or
  ``Schedule.from_arrays``; ``ScheduleBatch.from_schedules`` for the
  batched stack in :mod:`repro.core.batch`); reaching for ``__new__``
  or the private ``_init_arrays``/``_materialize`` kernels bypasses
  validation and the precomputation contract;
* **KER002** — the kernel arrays (``starts``/``finishes``/``procs``
  and everything derived, on :class:`Schedule` and
  :class:`ScheduleBatch` alike) are frozen; writing to them, or
  un-freezing via ``setflags``, desynchronizes the precomputed
  aggregates;
* **KER003** — the scalar :func:`~repro.core.energy.schedule_energy`
  exists as the audit cross-check; search and evaluation paths must go
  through the vectorized ``schedule_energy_sweep`` (bitwise-identical
  by construction), so a scalar call outside :mod:`repro.audit` is
  either dead weight on a hot path or a drift hazard.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from .base import Rule, dotted_name, register

__all__ = ["BlessedConstruction", "KernelArrayMutation",
           "ScalarEnergyCall"]

#: Modules that own the kernel internals (prefix match on the dotted
#: module name): the Schedule kernel, the batched multi-schedule stack
#: built on top of it, and the plan cache that memoizes built
#: schedules for reuse across heuristics (PR 9).
_KERNEL_OWNERS: Tuple[str, ...] = ("repro.sched.schedule",
                                   "repro.core.batch",
                                   "repro.core.plans")

#: Modules allowed to call the scalar energy evaluator: its home and
#: the audit cross-check layer.
_SCALAR_ENERGY_OK: Tuple[str, ...] = ("repro.core.energy", "repro.audit")

#: Attributes of the frozen kernel surface (public views and private
#: slots alike).
_PROTECTED_ATTRS = frozenset({
    "start_times", "finish_times", "task_processors",
    "proc_busy_cycles", "proc_last_finish",
    "_starts", "_finish", "_procs", "_order", "_bounds",
    "_proc_busy", "_proc_last", "_gap_lo", "_gap_hi", "_gap_len",
    "_gap_bounds",
    # ScheduleBatch's stacked kernel arrays (repro.core.batch).
    "starts", "finishes", "procs", "task_mask", "employed_counts",
    "employed_ids", "proc_busy", "proc_last", "gap_flat",
    "gap_counts", "gap_starts", "makespans",
})

_PRIVATE_KERNEL_METHODS = frozenset({"_init_arrays", "_materialize"})


def _module_allowed(module: Optional[str],
                    prefixes: Tuple[str, ...]) -> bool:
    if module is None:
        return False
    return any(module == p or module.startswith(p + ".")
               for p in prefixes)


@register
class BlessedConstruction(Rule):
    """Schedule construction goes through the blessed constructors."""

    code = "KER001"
    name = "blessed-construction"
    scope = "global"
    description = ("Schedule built around the blessed constructors "
                   "(placement constructor / Schedule.from_arrays): "
                   "__new__ or private kernel methods used outside "
                   "repro.sched.schedule")

    def _in_owner(self) -> bool:
        return _module_allowed(self.ctx.module, _KERNEL_OWNERS)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._in_owner():
            name = dotted_name(node.func)
            if name is not None:
                if name.endswith("Schedule.__new__") or \
                        name.endswith("ScheduleBatch.__new__"):
                    self.report(node,
                                "__new__ bypasses the blessed kernel "
                                "constructors; use Schedule(...) / "
                                "Schedule.from_arrays(...) / "
                                "ScheduleBatch.from_schedules(...)")
                elif name in ("object.__new__",) and node.args:
                    arg = dotted_name(node.args[0])
                    if arg is not None and \
                            (arg.endswith("Schedule")
                             or arg.endswith("ScheduleBatch")):
                        self.report(node,
                                    "object.__new__ on a kernel class "
                                    "bypasses the blessed "
                                    "constructors")
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _PRIVATE_KERNEL_METHODS:
                self.report(node,
                            f"private kernel method "
                            f"'{node.func.attr}' called outside "
                            f"repro.sched.schedule")
        self.generic_visit(node)


@register
class KernelArrayMutation(Rule):
    """The kernel arrays of a built Schedule are frozen."""

    code = "KER002"
    name = "kernel-array-mutation"
    scope = "global"
    description = ("write to a Schedule kernel array "
                   "(starts/finishes/procs and derived aggregates) or "
                   "setflags() outside repro.sched.schedule")

    def _in_owner(self) -> bool:
        return _module_allowed(self.ctx.module, _KERNEL_OWNERS)

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Starred):
            target = target.value
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt)
            return
        if isinstance(target, ast.Subscript):
            target = target.value
            if isinstance(target, ast.Attribute) and \
                    target.attr in _PROTECTED_ATTRS:
                self.report(target,
                            f"writing into kernel array "
                            f"'.{target.attr}[...]' desynchronizes "
                            f"the precomputed schedule aggregates; "
                            f"build a new Schedule instead")
        elif isinstance(target, ast.Attribute) and \
                target.attr in _PROTECTED_ATTRS:
            self.report(target,
                        f"assigning '.{target.attr}' replaces a "
                        f"frozen kernel array; build a new Schedule "
                        f"through the blessed constructors")

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._in_owner():
            for target in node.targets:
                self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._in_owner():
            self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if not self._in_owner():
            for target in node.targets:
                self._check_target(target)
        self.generic_visit(node)

    @staticmethod
    def _touches_protected(expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Attribute) and \
                    sub.attr in _PROTECTED_ATTRS:
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        # Freezing one's own arrays (write=False) is fine anywhere;
        # what the kernel contract forbids is thawing (write=True) or
        # touching the flags of a Schedule's protected arrays at all.
        if not self._in_owner() and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "setflags":
            thaws = any(
                kw.arg == "write" and not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is False)
                for kw in node.keywords)
            if thaws or self._touches_protected(node.func.value):
                self.report(node,
                            "setflags() un-freezes an array (or "
                            "touches a kernel array's flags); the "
                            "kernel arrays stay frozen outside "
                            "repro.sched.schedule")
        self.generic_visit(node)


@register
class ScalarEnergyCall(Rule):
    """Scalar schedule_energy is the audit cross-check only."""

    code = "KER003"
    name = "scalar-energy-call"
    scope = "global"
    description = ("scalar schedule_energy() call outside the audit "
                   "cross-check; hot paths use the bitwise-identical "
                   "schedule_energy_sweep")

    def visit_Call(self, node: ast.Call) -> None:
        if not _module_allowed(self.ctx.module, _SCALAR_ENERGY_OK):
            name = dotted_name(node.func)
            if name is not None and (
                    name == "schedule_energy"
                    or name.endswith(".schedule_energy")):
                self.report(node,
                            "scalar schedule_energy() outside "
                            "repro.audit; evaluate through "
                            "schedule_energy_sweep (bitwise-identical "
                            "and vectorized over the ladder)")
        self.generic_visit(node)
