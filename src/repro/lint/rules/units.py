"""Unit-safety rules (UNIT0xx).

The paper's model constantly converts between cycle counts (schedule
time at the reference frequency), wall-clock seconds, hertz, volts,
joules and watts; seconds-vs-cycles and volts-vs-frequency confusions
are the dominant bug class in this problem family.  The convention:

* public function **parameters** in ``repro.power`` / ``repro.core`` /
  ``repro.sched`` whose name denotes a scalar physical quantity carry a
  unit suffix — ``_seconds``, ``_cycles``, ``_hz``, ``_volts``,
  ``_joules``, ``_watts`` (**UNIT001**);
* public functions **returning** a bare ``float``/array quantity either
  carry the suffix in their name or state the unit in their docstring,
  e.g. ``"(Hz)"`` or ``"... in seconds"`` (**UNIT002**);
* ``+``/``-``/comparison arithmetic must not mix identifiers with
  *different* unit suffixes — ``x_seconds + y_cycles`` is always a bug;
  ``*`` and ``/`` are conversions and stay legal (**UNIT003**, now a
  tree-wide dataflow rule in :mod:`..dataflow.unitflow`).

The convention is deliberately lightweight: vector parameters (per-task
arrays such as ``deadlines``) document their unit at the type level,
canonical physics symbols (``vdd``, ``vbs``, ``f``, ``fmax``) are
exempt, and ``*_per_*`` names denote ratios.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from .base import Rule, register

__all__ = ["ParamUnitSuffix", "ReturnUnitDocumented"]

#: Recognised unit suffixes and their dimension (each suffix is its own
#: unit: ``_seconds`` and ``_cycles`` are both time-like but must never
#: mix additively).
SUFFIXES = ("seconds", "cycles", "hz", "volts", "joules", "watts")

#: Quantity roots that demand a suffix, mapped to the suffixes that
#: satisfy them.
ROOTS = {
    "deadline": ("seconds", "cycles"),
    "horizon": ("seconds", "cycles"),
    "duration": ("seconds", "cycles"),
    "interval": ("seconds", "cycles"),
    "period": ("seconds", "cycles"),
    "elapsed": ("seconds", "cycles"),
    "timeout": ("seconds", "cycles"),
    "latency": ("seconds", "cycles"),
    "freq": ("hz",),
    "frequency": ("hz",),
    "voltage": ("volts",),
    "energy": ("joules",),
    "power": ("watts",),
}

#: Canonical physics symbols from the paper's equations — exempt.
CANONICAL = frozenset({"vdd", "vbs", "f", "fmax", "fmin", "tol"})

#: Docstring markers accepted as a unit statement by UNIT002.
_UNIT_DOC = re.compile(
    r"(?ix) \b(seconds?|cycles?|hz|[gmk]hz|joules?|volts?|watts?|"
    r"dimensionless|normali[sz]ed|ratio|fraction|multiplier)\b"
    r"|[(\[](s|J|V|W|A|Hz|GHz)[)\]]")

#: Return annotations that carry their own units (domain classes) —
#: exempt from UNIT002.  Bare scalars/arrays are not self-describing.
_SCALAR_RETURNS = frozenset({
    "float", "int", "ArrayLike", "np.ndarray", "numpy.ndarray",
    "ndarray", None,
})


#: Root-appropriate docstring examples for the UNIT002 message.
_DOC_EXAMPLES = {
    "seconds": "'in seconds' or 'in cycles'", "hz": "'(Hz)'",
    "volts": "'(V)'", "joules": "'(J)'", "watts": "'(W)'",
}


def _root_of(name: str) -> Optional[str]:
    """The quantity root ``name`` ends with, if any."""
    if name in ROOTS:
        return name
    last = name.rsplit("_", 1)[-1]
    return last if last in ROOTS else None


def _has_suffix(name: str) -> bool:
    """Whether ``name`` ends in (or is) a recognised unit suffix."""
    if name in SUFFIXES:
        return True
    last = name.rsplit("_", 1)[-1]
    return last in SUFFIXES


def _suffix_of(name: str) -> Optional[str]:
    """The unit suffix of an identifier, if it has one."""
    last = name.rsplit("_", 1)[-1]
    return last if last in SUFFIXES and last != name else (
        name if name in SUFFIXES else None)


def _exempt(name: str) -> bool:
    return (name.startswith("_") or name in CANONICAL
            or "_per_" in name)


def _public_defs(tree: ast.Module) -> Iterable[ast.FunctionDef]:
    """Public module-level defs and public methods of public classes."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node
        elif isinstance(node, ast.ClassDef) and \
                not node.name.startswith("_"):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) and \
                        not item.name.startswith("_"):
                    yield item


def _annotation_text(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return None


@register
class ParamUnitSuffix(Rule):
    """Public quantity-bearing parameters carry a unit suffix."""

    code = "UNIT001"
    name = "param-unit-suffix"
    scope = "units"
    description = ("public function parameter denotes a physical "
                   "quantity but carries no unit suffix "
                   "(_seconds/_cycles/_hz/_volts/_joules/_watts)")

    def visit_Module(self, node: ast.Module) -> None:
        for func in _public_defs(node):
            args = func.args
            for arg in (*args.posonlyargs, *args.args,
                        *args.kwonlyargs):
                self._check(arg)
        # Deliberately no generic_visit: nested/private defs are out of
        # scope — the convention is for the public surface.

    def _check(self, arg: ast.arg) -> None:
        name = arg.arg
        if name in ("self", "cls") or _exempt(name) or \
                _has_suffix(name):
            return
        root = _root_of(name)
        if root is None:
            return
        if name.endswith("s") and _root_of(name[:-1]) is not None:
            return  # plural = per-task vector; unit lives in the docs
        expected = " or ".join(f"{name}_{s}" for s in ROOTS[root])
        self.report(arg,
                    f"parameter '{name}' denotes a quantity "
                    f"({root}); name it {expected}")


@register
class ReturnUnitDocumented(Rule):
    """Scalar-quantity returns carry a suffix or a documented unit."""

    code = "UNIT002"
    name = "return-unit-documented"
    scope = "units"
    description = ("public function returns a bare scalar quantity "
                   "but neither its name nor its docstring states "
                   "the unit")

    def visit_Module(self, node: ast.Module) -> None:
        for func in _public_defs(node):
            self._check(func)

    def _check(self, func: ast.FunctionDef) -> None:
        name = func.name
        if _exempt(name) or _has_suffix(name):
            return
        root = _root_of(name)
        if root is None:
            return
        if _annotation_text(func.returns) not in _SCALAR_RETURNS:
            return  # returns a unit-carrying domain object
        doc = ast.get_docstring(func)
        if doc is not None and _UNIT_DOC.search(doc):
            return
        example = _DOC_EXAMPLES.get(ROOTS[root][0], "'(Hz)'")
        self.report(func,
                    f"'{name}' names a quantity ({root}) but returns "
                    f"a bare scalar; add a unit suffix to the name or "
                    f"state the unit in the docstring (e.g. {example})")


# UNIT003 (mixed-unit arithmetic) lives in ``..dataflow.unitflow``
# since the interprocedural engine landed: it still owns the code but
# now propagates tags through locals, returns and one call level, and
# runs tree-wide instead of package-scoped.
