"""Observability: spans, counters, histograms, and trace exporters.

The measurement substrate for every performance PR: instrumented hot
paths (:func:`repro.sched.list_scheduler.list_schedule`, the
:mod:`repro.core.lamps` / :mod:`repro.core.sns` search loops, the
:mod:`repro.exec` cache and pool) record into an :class:`ObsLog`, which
merges across worker processes exactly like
:class:`repro.audit.report.AuditLog` and exports to

- Chrome trace-event / Perfetto JSON (:func:`write_chrome_trace`),
- a JSONL metrics dump (:func:`write_metrics_jsonl`),
- an aggregated self-time table (:func:`format_log_stats`).

Profiling is result-neutral by construction: every instrumentation site
takes ``obs=None`` and degrades to the no-op :data:`NULL_OBS`, and
``tests/obs`` proves byte-identical experiment JSON and cache files
with and without ``--profile``.

For long-running services, :mod:`repro.obs.metrics` adds the live
layer: bounded span retention (``ObsLog(max_spans=N)``), sliding-window
rates and quantiles (:class:`WindowAggregator`), and Prometheus text
exposition (:func:`render_prometheus` / :func:`validate_exposition`).
"""

from .export import (
    aggregate_trace_events,
    chrome_trace,
    format_log_stats,
    format_stats,
    load_trace,
    metrics_jsonl,
    self_time_table,
    span_aggregates,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .log import NULL_OBS, Histogram, NullObs, ObsLog, SpanRecord, live
from .metrics import (
    WindowAggregator,
    bucket_bounds,
    histogram_quantiles,
    parse_prometheus,
    prometheus_name,
    quantile_from_buckets,
    render_prometheus,
    validate_exposition,
)

__all__ = [
    "ObsLog",
    "NullObs",
    "NULL_OBS",
    "live",
    "SpanRecord",
    "Histogram",
    "WindowAggregator",
    "bucket_bounds",
    "histogram_quantiles",
    "quantile_from_buckets",
    "prometheus_name",
    "render_prometheus",
    "parse_prometheus",
    "validate_exposition",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_jsonl",
    "write_metrics_jsonl",
    "span_aggregates",
    "aggregate_trace_events",
    "self_time_table",
    "format_stats",
    "format_log_stats",
    "load_trace",
]
