"""Exporters: Chrome trace-event JSON, JSONL metrics, self-time tables.

Three views of one :class:`~repro.obs.log.ObsLog`:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format (complete ``"ph": "X"`` events) that ``chrome://tracing`` and
  Perfetto (https://ui.perfetto.dev) load directly.  Spans from pool
  workers keep their recording pid/tid, so a ``--jobs 8`` campaign
  renders as one timeline with a lane per worker process.  Counters and
  histogram summaries ride along under the top-level ``reproObs`` key
  (unknown keys are legal in the format and ignored by viewers).
- :func:`metrics_jsonl` / :func:`write_metrics_jsonl` — one JSON object
  per line (``counter`` / ``histogram`` / ``span`` records), the
  machine-diffable dump for trend tooling.
- :func:`format_stats` — the aggregated self-time table (plus counters
  and latency histograms) printed to stderr after a ``--profile`` run
  and by ``repro stats``.

:func:`aggregate_trace_events` rebuilds the per-name aggregates from a
bare ``traceEvents`` list, so ``repro stats`` also works on trace files
produced elsewhere (or with the ``reproObs`` block stripped).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..util.tables import render_table
from .log import ObsLog

__all__ = [
    "chrome_trace", "write_chrome_trace", "metrics_jsonl",
    "write_metrics_jsonl", "span_aggregates", "aggregate_trace_events",
    "self_time_table", "format_stats", "format_log_stats", "load_trace",
]


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _span_events(log: ObsLog) -> List[Dict[str, Any]]:
    """The ``"ph": "X"`` events of ``log``, µs relative to the earliest
    span across *all* processes (wall-clock epoch is the shared
    timebase), so worker and coordinator spans line up on one
    timeline."""
    origin = min((s.start for s in log.spans), default=0.0)
    events: List[Dict[str, Any]] = []
    for s in log.spans:
        event: Dict[str, Any] = {
            "name": s.name, "cat": s.category or "repro",
            "ph": "X",
            "ts": round((s.start - origin) * 1e6, 3),
            "dur": round(s.duration * 1e6, 3),
            "pid": s.pid, "tid": s.tid,
        }
        if s.args:
            event["args"] = s.args
        events.append(event)
    return events


def _fold_aggregates(base: Dict[str, Dict[str, float]],
                     extra: Dict[str, Dict[str, float]]
                     ) -> Dict[str, Dict[str, float]]:
    """Fold per-name span aggregates ``extra`` into ``base`` in place."""
    for name, agg in extra.items():
        mine = base.setdefault(name, {"calls": 0, "total_s": 0.0,
                                      "self_s": 0.0, "max_s": 0.0})
        mine["calls"] += agg["calls"]
        mine["total_s"] += agg["total_s"]
        mine["self_s"] += agg["self_s"]
        if agg["max_s"] > mine["max_s"]:
            mine["max_s"] = agg["max_s"]
    return base


def chrome_trace(log: ObsLog) -> Dict[str, Any]:
    """Render ``log`` as a Trace Event Format dict.

    A retention-bounded log renders its *retained* spans as events and
    folds the evicted spans' streaming aggregates into
    ``spanAggregates``, so the table stays exact even when the timeline
    is a ring of the newest records.  An unbounded (campaign) log emits
    exactly the pre-retention document.
    """
    events: List[Dict[str, Any]] = []
    pids = sorted({s.pid for s in log.spans})
    main_pid = pids[0] if pids else 0
    for pid in pids:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "main" if pid == main_pid
                     else f"worker {pid}"},
        })
    span_events = _span_events(log)
    events.extend(span_events)
    # Interval nesting, not the recorded per-log self times: a worker's
    # pool spans and suite spans live in different logs, and only the
    # (pid, tid, time) view nests across that boundary.
    aggregates = aggregate_trace_events(span_events)
    obs_block: Dict[str, Any] = {
        "counters": dict(log.counters),
        "histograms": {k: h.to_dict()
                       for k, h in log.histograms.items()},
        "spanAggregates": aggregates,
    }
    if log.evicted_spans:
        _fold_aggregates(aggregates, log.evicted_aggregates)
        obs_block["evictedSpans"] = log.evicted_spans
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "reproObs": obs_block,
    }


def write_chrome_trace(log: ObsLog, path: Union[str, Path]) -> Path:
    """Write :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(log)) + "\n")
    return path


def load_trace(path: Union[str, Path]
               ) -> Tuple[List[dict], Optional[dict]]:
    """Load a trace file: ``(traceEvents, reproObs-block-or-None)``.

    Accepts both the dict form this module writes and a bare JSON array
    of events (the format's legacy spelling).
    """
    doc = json.loads(Path(path).read_text())
    if isinstance(doc, list):
        return doc, None
    return doc.get("traceEvents", []), doc.get("reproObs")


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def span_aggregates(log: ObsLog) -> Dict[str, Dict[str, float]]:
    """Per-name span aggregates: calls, total/self seconds, max seconds.

    Self times here are the ones recorded live on the span stack —
    exact within one :class:`ObsLog`, but blind to nesting *across*
    merged logs (a pool worker's ``exec.instance`` and the suite spans
    inside it are recorded into different logs).  The exporters use
    :func:`aggregate_trace_events` instead, which recovers nesting
    from the timeline and handles that case.
    """
    out: Dict[str, Dict[str, float]] = {}
    for s in log.spans:
        agg = out.setdefault(s.name, {"calls": 0, "total_s": 0.0,
                                      "self_s": 0.0, "max_s": 0.0})
        agg["calls"] += 1
        agg["total_s"] += s.duration
        agg["self_s"] += s.self_time
        if s.duration > agg["max_s"]:
            agg["max_s"] = s.duration
    if log.evicted_spans:
        _fold_aggregates(out, log.evicted_aggregates)
    return out


def aggregate_trace_events(events: List[dict]) -> Dict[str, Dict[str, float]]:
    """:func:`span_aggregates`, recomputed from raw ``traceEvents``.

    Self time is recovered from the interval nesting per (pid, tid)
    lane: sort by start (ties: longer first, so parents precede their
    children), run a stack, and charge each event's duration to the
    innermost enclosing event.
    """
    lanes: Dict[Tuple[Any, Any], List[Tuple[float, float, str]]] = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        lanes.setdefault((e.get("pid"), e.get("tid")), []).append(
            (float(e["ts"]), float(e.get("dur", 0.0)), e["name"]))
    out: Dict[str, Dict[str, float]] = {}
    for lane in lanes.values():
        lane.sort(key=lambda t: (t[0], -t[1]))
        stack: List[List[Any]] = []  # [end_ts, child_dur_accum, name, dur]
        for ts, dur, name in lane:
            while stack and ts >= stack[-1][0] - 1e-9:
                _close(stack, out)
            if stack:
                stack[-1][1] += dur
            stack.append([ts + dur, 0.0, name, dur])
        while stack:
            _close(stack, out)
    return out


def _close(stack: List[List[Any]], out: Dict[str, Dict[str, float]]
           ) -> None:
    _, child_dur, name, dur = stack.pop()
    dur_s = dur / 1e6
    agg = out.setdefault(name, {"calls": 0, "total_s": 0.0,
                                "self_s": 0.0, "max_s": 0.0})
    agg["calls"] += 1
    agg["total_s"] += dur_s
    agg["self_s"] += max(0.0, (dur - child_dur) / 1e6)
    if dur_s > agg["max_s"]:
        agg["max_s"] = dur_s


# ----------------------------------------------------------------------
# JSONL metrics
# ----------------------------------------------------------------------
def metrics_jsonl(log: ObsLog) -> str:
    """One JSON object per line: counters, histograms, span aggregates."""
    lines: List[str] = []
    for name in sorted(log.counters):
        lines.append(json.dumps(
            {"type": "counter", "name": name,
             "value": log.counters[name]}, sort_keys=True))
    for name in sorted(log.histograms):
        lines.append(json.dumps(
            {"type": "histogram", "name": name,
             **log.histograms[name].to_dict()}, sort_keys=True))
    aggs = aggregate_trace_events(_span_events(log))
    if log.evicted_spans:
        _fold_aggregates(aggs, log.evicted_aggregates)
    for name in sorted(aggs):
        lines.append(json.dumps(
            {"type": "span", "name": name, **aggs[name]},
            sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_jsonl(log: ObsLog, path: Union[str, Path]) -> Path:
    """Write :func:`metrics_jsonl` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(metrics_jsonl(log))
    return path


# ----------------------------------------------------------------------
# Self-time tables
# ----------------------------------------------------------------------
def self_time_table(aggregates: Dict[str, Dict[str, float]],
                    *, title: str = "Span self-time") -> str:
    """Render per-name aggregates sorted by self time, heaviest first."""
    total_self = sum(a["self_s"] for a in aggregates.values()) or 1.0
    rows = []
    for name, a in sorted(aggregates.items(),
                          key=lambda kv: -kv[1]["self_s"]):
        calls = int(a["calls"])
        rows.append((
            name, calls, f"{a['self_s']:.4f}",
            f"{100.0 * a['self_s'] / total_self:.1f}%",
            f"{a['total_s']:.4f}",
            f"{1e3 * a['total_s'] / calls:.3f}",
            f"{1e3 * a['max_s']:.3f}",
        ))
    return render_table(
        ["span", "calls", "self [s]", "self %", "total [s]",
         "mean [ms]", "max [ms]"],
        rows, title=title)


def format_stats(*, aggregates: Dict[str, Dict[str, float]],
                 counters: Optional[Dict[str, int]] = None,
                 histograms: Optional[Dict[str, dict]] = None) -> str:
    """The full ``repro stats`` / ``--profile`` stderr block."""
    blocks = []
    if aggregates:
        blocks.append(self_time_table(aggregates))
    if counters:
        blocks.append(render_table(
            ["counter", "value"],
            sorted(counters.items()), title="Counters"))
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            count = int(h["count"])
            mean = (float(h["total"]) / count) if count else 0.0
            rows.append((name, count, f"{1e3 * mean:.4f}",
                         f"{1e3 * float(h['min'] or 0.0):.4f}",
                         f"{1e3 * float(h['max']):.4f}"))
        blocks.append(render_table(
            ["latency", "count", "mean [ms]", "min [ms]", "max [ms]"],
            rows, title="Latency histograms"))
    return "\n\n".join(blocks) if blocks else "(no observations)"


def format_log_stats(log: ObsLog) -> str:
    """:func:`format_stats` straight from a live :class:`ObsLog`."""
    aggregates = aggregate_trace_events(_span_events(log))
    if log.evicted_spans:
        _fold_aggregates(aggregates, log.evicted_aggregates)
    return format_stats(
        aggregates=aggregates,
        counters=log.counters,
        histograms={k: h.to_dict() for k, h in log.histograms.items()})
