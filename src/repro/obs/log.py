"""Spans, counters and latency histograms — the observability core.

An :class:`ObsLog` is the mutable recorder the instrumented hot paths
write into, mirroring the design of :class:`repro.audit.report.AuditLog`:
it is cheap to carry around, picklable, JSON-friendly
(:meth:`ObsLog.to_dict` / :meth:`ObsLog.merge_dict`) and mergeable, so
worker processes ship their records back to the coordinating process
and a ``--jobs 8`` campaign still yields *one* coherent log.

Three primitives:

- :meth:`ObsLog.span` — a context-manager timer.  Spans nest; each
  records wall-clock start, duration, *self time* (duration minus the
  durations of its direct children), the recording process/thread, and
  optional small attributes.  The Chrome-trace exporter renders them as
  a flame graph.
- :meth:`ObsLog.count` — monotonic named counters.
- :meth:`ObsLog.observe` — latency histograms with power-of-two
  buckets (count/total/min/max are exact; the buckets give the shape).

Instrumentation must be a provable no-op on results and nearly free
when disabled: every instrumented function takes ``obs=None`` and runs
against :data:`NULL_OBS`, whose methods do nothing and allocate
nothing.  Use :func:`live` to normalise an optional log::

    o = live(obs)
    with o.span("sched.list_schedule", tasks=graph.n):
        ...
    o.count("sched.schedules_built")

**The since-boot contract.**  Counters and histograms are *cumulative
for the lifetime of the log*: counters only grow, histograms only
accumulate, and nothing in this module ever resets them.  That is what
makes logs mergeable and what ``/stats`` reports.  Anything windowed —
requests per second "now", the p99 over the last minute — is a *derived*
view computed by :class:`repro.obs.metrics.WindowAggregator` from
snapshots of this cumulative state; the recorder itself stays
monotonic.  Counters and histograms are bounded by the number of
distinct *names* (a handful per subsystem), so they are safe to keep
forever even in a long-running server.

Span records are the one per-event collection.  A campaign log keeps
every span (profile export must be lossless), but a server that runs
for a week cannot: construct with ``ObsLog(max_spans=N)`` and the log
keeps only the *newest* ``N`` span records, folding each evicted record
into per-name streaming aggregates (``evicted_spans`` /
``evicted_aggregates``) so ``/stats`` totals and self-time tables stay
exact while memory stays constant.  The default (``max_spans=None``)
is today's unbounded capture — campaign profiles are byte-identical.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = ["SpanRecord", "Histogram", "ObsLog", "NullObs", "NULL_OBS",
           "live"]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One closed span.

    Attributes:
        name: the span label, dot-namespaced (``"lamps.phase2"``).
        category: coarse grouping for trace viewers (``"sched"``).
        start: wall-clock start (``time.time()`` epoch seconds) — the
            cross-process timebase the trace merge relies on.
        duration: elapsed seconds (``perf_counter`` delta).
        self_time: ``duration`` minus the durations of direct children.
        pid: recording process id (distinct per pool worker).
        tid: recording thread id (``threading.get_ident()``).
        depth: nesting depth at record time (0 = top level).
        args: small JSON-able attributes, or ``None``.
    """

    name: str
    category: str
    start: float
    duration: float
    self_time: float
    pid: int
    tid: int
    depth: int
    args: Optional[Dict[str, Any]] = None

    def to_list(self) -> list:
        """Compact JSON-able form (the ``to_dict`` wire format)."""
        return [self.name, self.category, self.start, self.duration,
                self.self_time, self.pid, self.tid, self.depth,
                self.args]

    @classmethod
    def from_list(cls, row: list) -> "SpanRecord":
        return cls(*row)


class Histogram:
    """A mergeable latency histogram with power-of-two buckets.

    ``count``/``total``/``min``/``max`` are exact; ``buckets`` maps a
    base-2 exponent ``e`` to the number of observations in
    ``[2**(e-1), 2**e)`` seconds (non-positive values land in a single
    underflow bucket).
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    #: Bucket key for observations <= 0 (a timer resolution artefact).
    UNDERFLOW = -1024

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation (seconds)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = math.frexp(value)[1] if value > 0.0 else self.UNDERFLOW
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        """Mean observation, 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (bucket keys become strings)."""
        return {"count": self.count, "total": self.total,
                "min": self.min if self.count else None, "max": self.max,
                "buckets": {str(k): v for k, v in self.buckets.items()}}

    def merge(self, other: Union["Histogram", Dict[str, Any]]) -> None:
        """Fold another histogram (or its ``to_dict``) into this one."""
        if isinstance(other, Histogram):
            other = other.to_dict()
        if not other["count"]:
            return
        self.count += int(other["count"])
        self.total += float(other["total"])
        self.min = min(self.min, float(other["min"]))
        self.max = max(self.max, float(other["max"]))
        for key, n in other["buckets"].items():
            key = int(key)
            self.buckets[key] = self.buckets.get(key, 0) + int(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(n={self.count}, mean={self.mean:.3g}s, "
                f"max={self.max:.3g}s)")


class _Span:
    """The live context manager behind :meth:`ObsLog.span`."""

    __slots__ = ("_log", "_name", "_category", "_args", "_wall", "_t0")

    def __init__(self, log: "ObsLog", name: str, category: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._log = log
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> "_Span":
        # Wall-clock anchors the Chrome-trace timeline only; it never
        # reaches cache keys or results.
        self._wall = time.time()  # repro: noqa[DET002]
        self._log._stack.append(0.0)  # children's duration accumulator
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        log = self._log
        child_time = log._stack.pop()
        depth = len(log._stack)
        if depth:
            log._stack[-1] += duration
        log.spans.append(SpanRecord(
            name=self._name, category=self._category, start=self._wall,
            duration=duration, self_time=max(0.0, duration - child_time),
            pid=log._pid, tid=threading.get_ident(), depth=depth,
            args=self._args))
        return None  # never swallow exceptions


class _BoundedSpans(deque):
    """Ring of the newest ``max_spans`` span records.

    Every producer reaches spans through ``append``/``extend`` (the
    span context manager, ``merge_dict``, the serve app), so overriding
    those two is enough to enforce the bound.  Not built on
    ``deque(maxlen=...)`` because eviction must *fold* the dropped
    record into the owning log's streaming aggregates, and ``maxlen``
    drops silently.  ``popleft`` keeps eviction O(1) per append.

    A small lock serialises writers: in serve mode the event-loop
    thread appends request spans while the dispatch thread merges
    worker payloads.  The unbounded campaign path never constructs
    this class and pays nothing.
    """

    def __init__(self, log: "ObsLog", max_spans: int,
                 initial: Iterable[SpanRecord] = ()) -> None:
        super().__init__()
        self._log = log
        self._max = max(1, int(max_spans))
        self._lock = threading.Lock()
        self.extend(initial)

    def append(self, record: SpanRecord) -> None:
        with self._lock:
            while len(self) >= self._max:
                self._log._fold_evicted(super().popleft())
            super().append(record)

    def extend(self, records: Iterable[SpanRecord]) -> None:
        for record in records:
            self.append(record)


@dataclass
class ObsLog:
    """Spans, counters and histograms of one (part of a) run.

    Mergeable across processes: workers build their own log and the
    parent folds :meth:`to_dict` payloads in with :meth:`merge_dict`.

    With ``max_spans`` set, only the newest ``max_spans`` span records
    are retained; older ones fold into :attr:`evicted_aggregates` (see
    the module docstring).  Counters and histograms are never bounded —
    they are cumulative by contract and small by construction.
    """

    spans: List[SpanRecord] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    _stack: List[float] = field(default_factory=list, repr=False,
                                compare=False)
    _pid: int = field(default_factory=os.getpid, repr=False,
                      compare=False)
    #: Retention bound for span records; ``None`` = unbounded capture.
    max_spans: Optional[int] = None
    #: Spans dropped by the retention bound (0 in campaign mode).
    evicted_spans: int = field(default=0, compare=False)
    #: Streaming per-name aggregates of evicted spans, in the same
    #: ``{"calls", "total_s", "self_s", "max_s"}`` shape as
    #: :func:`repro.obs.export.span_aggregates`.
    evicted_aggregates: Dict[str, Dict[str, float]] = field(
        default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.max_spans is not None:
            self.spans = _BoundedSpans(  # type: ignore[assignment]
                self, self.max_spans, self.spans)

    #: Real recorder — lets callers branch on ``obs.enabled`` when an
    #: instrumentation block itself costs something to set up.
    enabled = True

    # ------------------------------------------------------------------
    def span(self, name: str, *, category: str = "",
             **attrs: Any) -> _Span:
        """A context manager timing one labelled region."""
        return _Span(self, name, category, attrs or None)

    def count(self, name: str, n: int = 1) -> None:
        """Bump counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(seconds)

    def _fold_evicted(self, record: SpanRecord) -> None:
        """Fold one retention-evicted span into streaming aggregates."""
        self.evicted_spans += 1
        agg = self.evicted_aggregates.get(record.name)
        if agg is None:
            agg = self.evicted_aggregates[record.name] = {
                "calls": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0}
        agg["calls"] += 1
        agg["total_s"] += record.duration
        agg["self_s"] += record.self_time
        if record.duration > agg["max_s"]:
            agg["max_s"] = record.duration

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able/picklable snapshot for shipping across processes.

        The wire format only grows the ``evicted_*`` keys when the
        retention bound actually dropped something, so unbounded
        campaign payloads are byte-identical to before retention
        existed.
        """
        doc: Dict[str, Any] = {
            "spans": [s.to_list() for s in self.spans],
            "counters": dict(self.counters),
            "histograms": {k: h.to_dict()
                           for k, h in self.histograms.items()},
        }
        if self.evicted_spans:
            doc["evicted_spans"] = self.evicted_spans
            doc["evicted_aggregates"] = {
                name: dict(agg)
                for name, agg in self.evicted_aggregates.items()}
        return doc

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` payload (e.g. from a worker) in."""
        self.spans.extend(SpanRecord.from_list(row)
                          for row in payload.get("spans", ()))
        for name, n in payload.get("counters", {}).items():
            self.count(name, int(n))
        for name, hist in payload.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)
        self.evicted_spans += int(payload.get("evicted_spans", 0))
        for name, agg in payload.get("evicted_aggregates", {}).items():
            mine_agg = self.evicted_aggregates.get(name)
            if mine_agg is None:
                mine_agg = self.evicted_aggregates[name] = {
                    "calls": 0, "total_s": 0.0, "self_s": 0.0,
                    "max_s": 0.0}
            mine_agg["calls"] += agg["calls"]
            mine_agg["total_s"] += agg["total_s"]
            mine_agg["self_s"] += agg["self_s"]
            mine_agg["max_s"] = max(mine_agg["max_s"], agg["max_s"])

    def merge(self, other: "ObsLog") -> None:
        """Fold another in-process log in."""
        self.merge_dict(other.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ObsLog":
        log = cls()
        log.merge_dict(payload)
        return log

    # ------------------------------------------------------------------
    def summary_line(self) -> str:
        """One-line overview (span/counter totals), for stderr."""
        total = sum(s.duration for s in self.spans if s.depth == 0)
        evicted = (f" (+{self.evicted_spans} evicted)"
                   if self.evicted_spans else "")
        return (f"[obs] {len(self.spans)} spans{evicted} ({total:.3f} s "
                f"at top level), {len(self.counters)} counters, "
                f"{len(self.histograms)} histograms")


class _NullSpan:
    """Shared, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullObs:
    """API-compatible no-op recorder — the disabled-mode fast path.

    Every method body is a constant return; calling these in a hot loop
    costs one attribute lookup and one call, which keeps disabled-mode
    overhead far under the 2% budget.  Use the :data:`NULL_OBS`
    singleton rather than instantiating.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, *, category: str = "",
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None


NULL_OBS = NullObs()


def live(obs: Optional[ObsLog]) -> Union[ObsLog, NullObs]:
    """Normalise an optional log: ``None`` becomes :data:`NULL_OBS`."""
    return obs if obs is not None else NULL_OBS
