"""Live telemetry over :class:`~repro.obs.log.ObsLog`: rolling windows,
quantile estimation and Prometheus text exposition.

:mod:`repro.obs.log` records *since-boot* cumulative state: counters
only grow, histograms only accumulate.  That contract is what makes
logs mergeable across workers, but an operator watching a long-running
``repro serve`` needs the derivative, not the integral — requests per
second *now*, the p99 over the *last minute*.  This module derives the
live view without touching the recorder:

- :class:`WindowAggregator` keeps a short ring of (monotonic-time,
  counters, histogram-state) snapshots of one log and reports rates and
  latency quantiles over the sliding window between the oldest retained
  snapshot and the newest.  Snapshots are taken lazily on scrape (a
  Prometheus poll or a ``repro top`` refresh *is* the sampling clock),
  are bounded in number (``max_samples``) and hold only small dicts, so
  a week of scraping costs constant memory.
- :func:`quantile_from_buckets` estimates quantiles from the
  power-of-two latency buckets the histograms already carry: the
  observation at quantile ``q`` lies in a known ``[2**(e-1), 2**e)``
  interval, and linear interpolation inside it bounds the relative
  error by the bucket width (a factor of two, tested in
  ``tests/obs``).
- :func:`render_prometheus` writes the whole state — counters,
  histograms in cumulative ``le`` form, caller-supplied gauges and the
  window's rate/quantile gauges — in the Prometheus text exposition
  format (version 0.0.4), and :func:`parse_prometheus` /
  :func:`validate_exposition` read it back; the parser feeds ``repro
  top`` and the validator gates CI (``tools/validate_metrics.py``).

Exposition is non-finite-safe by construction: an empty histogram's
``min`` is ``math.inf`` in-process, but no NaN or infinity is ever
written — empty families render their zero counts only.
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, \
    Tuple

from .log import Histogram, ObsLog

__all__ = [
    "bucket_bounds", "quantile_from_buckets", "histogram_quantiles",
    "WindowAggregator", "prometheus_name", "render_prometheus",
    "parse_prometheus", "validate_exposition",
]


# ----------------------------------------------------------------------
# Quantile estimation from power-of-two buckets
# ----------------------------------------------------------------------
def bucket_bounds(exponent: int) -> Tuple[float, float]:
    """The ``[lo, hi)`` seconds interval of one histogram bucket.

    The underflow bucket (non-positive observations, a timer-resolution
    artefact) maps to the degenerate ``(0.0, 0.0)``.
    """
    if exponent == Histogram.UNDERFLOW:
        return 0.0, 0.0
    return 2.0 ** (exponent - 1), 2.0 ** exponent


def quantile_from_buckets(buckets: Mapping[int, int], q: float) -> float:
    """Estimate the ``q``-quantile (seconds) of bucketed observations.

    The rank-``q`` observation lies in a known power-of-two interval;
    midpoint-rank linear interpolation inside that interval returns a
    value *strictly inside* it, so the estimate is never off by more
    than the bucket width (relative error < 2x for positive
    observations).  Returns ``0.0`` for an empty bucket set.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(buckets.values())
    if total == 0:
        return 0.0
    rank = max(1.0, q * total)
    seen = 0
    last_hi = 0.0
    for exponent in sorted(buckets):
        n = buckets[exponent]
        if n <= 0:
            continue
        lo, hi = bucket_bounds(exponent)
        if seen + n >= rank:
            # Midpoint convention: the k-th of n observations sits at
            # (k - 0.5) / n through the bucket, never on its edges.
            fraction = (rank - seen - 0.5) / n
            return lo + fraction * (hi - lo)
        seen += n
        last_hi = hi
    return last_hi  # rounding fell off the end: the top bucket's edge


def histogram_quantiles(hist: Histogram,
                        qs: Iterable[float] = (0.5, 0.9, 0.99),
                        ) -> Dict[float, float]:
    """Per-quantile estimates for one histogram (empty → all zeros)."""
    return {q: quantile_from_buckets(hist.buckets, q) for q in qs}


# ----------------------------------------------------------------------
# Rolling-window aggregation
# ----------------------------------------------------------------------
#: One histogram's cumulative state inside a snapshot.
_HistState = Tuple[int, float, Dict[int, int]]


class WindowAggregator:
    """Sliding-window rates and quantiles over one log's cumulative state.

    Snapshots are cheap (small dict copies) and taken explicitly via
    :meth:`sample` — the serve app samples on every ``/metrics`` and
    ``/stats`` scrape, so the scraper's poll interval is the effective
    resolution.  At most ``max_samples`` snapshots are retained and
    samples closer than ``window_seconds / max_samples`` to the
    previous one are coalesced, so memory is constant no matter how
    aggressively the endpoint is polled.

    All window arithmetic is deltas between the newest snapshot and the
    oldest retained one; with fewer than two snapshots every rate is
    0.0 and every quantile falls back to the since-boot buckets.
    """

    def __init__(self, log: ObsLog, *, window_seconds: float = 60.0,
                 max_samples: int = 120) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.log = log
        self.window_seconds = float(window_seconds)
        self.max_samples = max(2, int(max_samples))
        self._min_spacing = self.window_seconds / self.max_samples
        self._samples: Deque[
            Tuple[float, Dict[str, int], Dict[str, _HistState]]] = deque()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def sample(self, now: Optional[float] = None) -> None:
        """Snapshot the log's cumulative state (monotonic-clock stamped)."""
        if now is None:
            now = time.monotonic()
        hists = {name: (h.count, h.total, dict(h.buckets))
                 for name, h in self.log.histograms.items()}
        counters = dict(self.log.counters)
        with self._lock:
            if (self._samples
                    and now - self._samples[-1][0] < self._min_spacing):
                return
            self._samples.append((now, counters, hists))
            cutoff = now - self.window_seconds
            # Keep one sample at or before the cutoff as the baseline,
            # so the window really spans ~window_seconds.
            while (len(self._samples) > 2
                   and self._samples[1][0] <= cutoff):
                self._samples.popleft()
            while len(self._samples) > self.max_samples:
                self._samples.popleft()

    @property
    def samples_retained(self) -> int:
        """Snapshots currently held (bounded by ``max_samples``)."""
        return len(self._samples)

    def _edges(self) -> Optional[Tuple[
            Tuple[float, Dict[str, int], Dict[str, _HistState]],
            Tuple[float, Dict[str, int], Dict[str, _HistState]]]]:
        with self._lock:
            if len(self._samples) < 2:
                return None
            return self._samples[0], self._samples[-1]

    # ------------------------------------------------------------------
    def elapsed_seconds(self) -> float:
        """Span of the current window (0.0 until two samples exist)."""
        edges = self._edges()
        if edges is None:
            return 0.0
        return edges[1][0] - edges[0][0]

    def rates(self) -> Dict[str, float]:
        """Per-counter increase rate (1/s) over the window."""
        edges = self._edges()
        if edges is None:
            return {}
        (t0, old, _), (t1, new, _) = edges
        elapsed = t1 - t0
        if elapsed <= 0.0:
            return {}
        return {name: max(0, value - old.get(name, 0)) / elapsed
                for name, value in new.items()}

    def bucket_deltas(self, name: str) -> Dict[int, int]:
        """Window-local bucket counts of histogram ``name``.

        Falls back to the since-boot buckets before two samples exist,
        so early scrapes still see a latency shape.
        """
        edges = self._edges()
        if edges is None:
            hist = self.log.histograms.get(name)
            return dict(hist.buckets) if hist is not None else {}
        (_, _, old), (_, _, new) = edges
        if name not in new:
            return {}
        old_buckets = old.get(name, (0, 0.0, {}))[2]
        deltas = {
            e: n - old_buckets.get(e, 0)
            for e, n in new[name][2].items()
            if n - old_buckets.get(e, 0) > 0
        }
        return deltas

    def quantiles(self, name: str,
                  qs: Iterable[float] = (0.5, 0.9, 0.99),
                  ) -> Dict[float, float]:
        """Window-local quantile estimates of histogram ``name``."""
        deltas = self.bucket_deltas(name)
        return {q: quantile_from_buckets(deltas, q) for q in qs}

    def counts(self, name: str) -> Tuple[int, float]:
        """Window-local (count, total-seconds) of histogram ``name``."""
        edges = self._edges()
        if edges is None:
            hist = self.log.histograms.get(name)
            if hist is None:
                return 0, 0.0
            return hist.count, hist.total
        (_, _, old), (_, _, new) = edges
        if name not in new:
            return 0, 0.0
        count, total = new[name][0], new[name][1]
        old_count, old_total = old.get(name, (0, 0.0, {}))[:2]
        return max(0, count - old_count), max(0.0, total - old_total)

    # ------------------------------------------------------------------
    def document(self) -> Dict[str, Any]:
        """The JSON ``window`` block of ``/stats``."""
        quantile_block = {}
        for name in sorted(self.log.histograms):
            count, total = self.counts(name)
            entry: Dict[str, Any] = {"count": count,
                                     "total_seconds": total}
            for q, value in self.quantiles(name).items():
                entry[f"p{int(q * 100)}_seconds"] = value
            quantile_block[name] = entry
        return {
            "window_seconds": self.window_seconds,
            "elapsed_seconds": self.elapsed_seconds(),
            "samples": self.samples_retained,
            "rates_per_second": {k: v for k, v in
                                 sorted(self.rates().items())},
            "latency": quantile_block,
        }


# ----------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)
# ----------------------------------------------------------------------
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)(?:\s+\d+)?$")
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def prometheus_name(name: str, *, namespace: str = "repro") -> str:
    """Sanitize a dotted obs name into a Prometheus metric name."""
    flat = _NAME_SANITIZE.sub("_", name)
    return f"{namespace}_{flat}" if namespace else flat


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    """One sample value; non-finite input is a caller bug by contract."""
    if isinstance(value, bool):  # bool is an int subclass — be explicit
        value = int(value)
    if isinstance(value, int):
        return str(value)
    if not math.isfinite(value):
        raise ValueError(f"non-finite sample value {value!r}")
    return repr(float(value))


def _histogram_lines(family: str, hist_doc: Mapping[str, Any],
                     labels: str) -> List[str]:
    """Cumulative ``le`` bucket lines plus ``_sum``/``_count``.

    ``hist_doc`` is a :meth:`Histogram.to_dict` payload (bucket keys may
    be strings).  The underflow bucket's observations are ``<= 0`` and
    therefore belong in *every* finite ``le`` bucket.
    """
    count = int(hist_doc["count"])
    total = float(hist_doc["total"])
    buckets = {int(k): int(v) for k, v in hist_doc["buckets"].items()}
    underflow = buckets.pop(Histogram.UNDERFLOW, 0)
    lines = []
    cumulative = underflow
    prefix = "{" + labels + "," if labels else "{"
    for exponent in sorted(buckets):
        cumulative += buckets[exponent]
        le = _format_value(2.0 ** exponent)
        lines.append(f'{family}_bucket{prefix}le="{le}"}} {cumulative}')
    lines.append(f'{family}_bucket{prefix}le="+Inf"}} {count}')
    if not math.isfinite(total):
        total = 0.0  # never emit a non-finite exposition value
    suffix = "{" + labels + "}" if labels else ""
    lines.append(f"{family}_sum{suffix} {_format_value(total)}")
    lines.append(f"{family}_count{suffix} {count}")
    return lines


def render_prometheus(
    log: ObsLog,
    *,
    gauges: Optional[Mapping[str, float]] = None,
    extra_counters: Optional[Mapping[str, int]] = None,
    window: Optional[WindowAggregator] = None,
    namespace: str = "repro",
) -> str:
    """The log's full state in the Prometheus text exposition format.

    Args:
        log: the cumulative recorder; its counters render as
            ``<namespace>_<name>_total`` counter families and its
            histograms as ``<namespace>_<name>_seconds`` histogram
            families with cumulative power-of-two ``le`` buckets.
        gauges: point-in-time values (queue depths, in-flight requests,
            cache bytes); non-finite values are skipped, never written.
        extra_counters: monotonic totals tracked outside the log (cache
            hit/eviction counters, admission totals).
        window: optional :class:`WindowAggregator` (sampled by the
            caller); renders per-counter rate gauges and per-histogram
            p50/p90/p99 gauges labelled by origin name and quantile.
        namespace: metric-name prefix (default ``repro``).
    """
    out: List[str] = []

    counters: Dict[str, int] = dict(log.counters)
    for name, value in (extra_counters or {}).items():
        counters[name] = counters.get(name, 0) + int(value)
    for name in sorted(counters):
        metric = prometheus_name(name, namespace=namespace) + "_total"
        out.append(f"# HELP {metric} Cumulative since-boot count of "
                   f"{name}.")
        out.append(f"# TYPE {metric} counter")
        out.append(f"{metric} {int(counters[name])}")

    for name in sorted(log.histograms):
        family = prometheus_name(name, namespace=namespace) + "_seconds"
        out.append(f"# HELP {family} Since-boot latency of {name} "
                   f"(power-of-two buckets).")
        out.append(f"# TYPE {family} histogram")
        out.extend(_histogram_lines(
            family, log.histograms[name].to_dict(), ""))

    for name in sorted(gauges or {}):
        value = (gauges or {})[name]
        if value is None or not math.isfinite(float(value)):
            continue
        metric = prometheus_name(name, namespace=namespace)
        out.append(f"# HELP {metric} Point-in-time gauge of {name}.")
        out.append(f"# TYPE {metric} gauge")
        out.append(f"{metric} {_format_value(value)}")

    if window is not None:
        rate_metric = f"{namespace}_window_rate_per_second"
        out.append(f"# HELP {rate_metric} Counter increase rate over "
                   f"the sliding window.")
        out.append(f"# TYPE {rate_metric} gauge")
        for name, rate in sorted(window.rates().items()):
            label = _escape_label(name)
            out.append(f'{rate_metric}{{name="{label}"}} '
                       f"{_format_value(rate)}")
        q_metric = f"{namespace}_window_latency_seconds"
        out.append(f"# HELP {q_metric} Latency quantile estimates over "
                   f"the sliding window.")
        out.append(f"# TYPE {q_metric} gauge")
        for name in sorted(log.histograms):
            label = _escape_label(name)
            for q, value in sorted(window.quantiles(name).items()):
                out.append(
                    f'{q_metric}{{name="{label}",quantile="{q:g}"}} '
                    f"{_format_value(value)}")
        span_metric = f"{namespace}_window_span_seconds"
        out.append(f"# HELP {span_metric} Width of the sliding window "
                   f"actually covered by samples.")
        out.append(f"# TYPE {span_metric} gauge")
        out.append(f"{span_metric} "
                   f"{_format_value(window.elapsed_seconds())}")

    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# Parsing and validation (repro top, tools/validate_metrics.py, tests)
# ----------------------------------------------------------------------
def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse a text exposition into families.

    Returns ``{family_name: {"type": str|None, "help": str|None,
    "samples": [(metric_name, labels_dict, value), ...]}}`` where a
    histogram's ``_bucket``/``_sum``/``_count`` samples all belong to
    the base family, as in the exposition format spec.

    Raises:
        ValueError: on an unparseable line — the caller (validator,
            ``repro top``) treats that as a hard failure.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family_of(metric: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = metric[: -len(suffix)] if metric.endswith(suffix) \
                else None
            if base and families.get(base, {}).get("type") == "histogram":
                return base
        return metric

    def entry(name: str) -> Dict[str, Any]:
        return families.setdefault(
            name, {"type": None, "help": None, "samples": []})

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "HELP":
                entry(parts[2])["help"] = parts[3]
            elif len(parts) >= 4 and parts[1] == "TYPE":
                entry(parts[2])["type"] = parts[3].strip()
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample "
                             f"{raw!r}")
        metric = match.group("name")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(label_text):
                labels[pair.group("key")] = (
                    pair.group("value").replace(r"\"", '"')
                    .replace(r"\n", "\n").replace(r"\\", "\\"))
                consumed += len(pair.group(0))
            stripped = re.sub(r"[,\s]", "", label_text)
            matched = re.sub(r"[,\s]", "", "".join(
                p.group(0) for p in _LABEL_PAIR.finditer(label_text)))
            if stripped != matched:
                raise ValueError(
                    f"line {lineno}: malformed labels {label_text!r}")
        value_text = match.group("value")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"line {lineno}: non-numeric value "
                             f"{value_text!r}") from None
        entry(family_of(metric))["samples"].append(
            (metric, labels, value))
    return families


def validate_exposition(text: str) -> List[str]:
    """Check an exposition document; returns failures (empty = valid).

    Beyond parseability this enforces the contracts our dashboards and
    CI rely on: every sample value finite, counters named ``*_total``
    and typed, histogram buckets cumulative and consistent with their
    ``_count``, and a terminating newline.
    """
    failures: List[str] = []
    if text and not text.endswith("\n"):
        failures.append("exposition must end with a newline")
    try:
        families = parse_prometheus(text)
    except ValueError as exc:
        return failures + [str(exc)]
    if not families:
        failures.append("empty exposition: no metric families")
    for name, family in families.items():
        if not _METRIC_NAME.match(name):
            failures.append(f"invalid metric name {name!r}")
        kind = family["type"]
        if kind is None:
            failures.append(f"{name}: missing # TYPE line")
            continue
        samples = family["samples"]
        for metric, _labels, value in samples:
            if not math.isfinite(value):
                failures.append(f"{metric}: non-finite value {value}")
        if kind == "counter":
            if not name.endswith("_total"):
                failures.append(f"{name}: counter must end in _total")
            for _metric, _labels, value in samples:
                if value < 0:
                    failures.append(f"{name}: negative counter {value}")
        elif kind == "histogram":
            failures.extend(_check_histogram(name, samples))
        elif kind not in ("gauge", "summary", "untyped"):
            failures.append(f"{name}: unknown type {kind!r}")
    return failures


def _check_histogram(name: str,
                     samples: List[Tuple[str, Dict[str, str], float]],
                     ) -> List[str]:
    failures: List[str] = []
    buckets: List[Tuple[float, float]] = []
    count: Optional[float] = None
    for metric, labels, value in samples:
        if metric == f"{name}_bucket":
            le = labels.get("le")
            if le is None:
                failures.append(f"{name}: bucket sample without le")
                continue
            buckets.append((math.inf if le == "+Inf" else float(le),
                            value))
        elif metric == f"{name}_count":
            count = value
    if not any(math.isinf(le) for le, _ in buckets):
        failures.append(f"{name}: missing le=\"+Inf\" bucket")
    if count is None:
        failures.append(f"{name}: missing _count sample")
    ordered = sorted(buckets)
    for (_, prev), (le, cur) in zip(ordered, ordered[1:]):
        if cur < prev:
            failures.append(
                f"{name}: non-cumulative buckets (le={le:g} count "
                f"{cur:g} < {prev:g})")
            break
    if (count is not None and ordered
            and ordered[-1][1] != count):
        failures.append(
            f"{name}: +Inf bucket {ordered[-1][1]:g} != _count "
            f"{count:g}")
    if not any(metric == f"{name}_sum" for metric, _, _ in samples):
        failures.append(f"{name}: missing _sum sample")
    return failures
