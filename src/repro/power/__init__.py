"""Power and energy substrate: technology constants, the analytic CMOS
power model, discrete DVS operating points, and the deep-sleep cost model.
"""

from .bodybias import ABBLadder, optimal_body_bias
from .dvs import DVSLadder, OperatingPoint, continuous_critical_frequency
from .model import PowerModel
from .shutdown import DEFAULT_SLEEP, SleepModel
from .technology import TECH_70NM, Technology

__all__ = [
    "ABBLadder",
    "optimal_body_bias",
    "DVSLadder",
    "OperatingPoint",
    "PowerModel",
    "SleepModel",
    "Technology",
    "TECH_70NM",
    "DEFAULT_SLEEP",
    "continuous_critical_frequency",
]
