"""Adaptive body biasing (ABB) — the DVS+ABB extension.

The paper fixes the body bias at ``Vbs = -0.7 V`` and cites the combined
DVS+ABB line of work (Martin et al., ICCAD 2002; Andrei et al., DATE
2004; Yan et al., ICCAD 2003) as the natural extension: when the supply
voltage is scaled down, re-optimising the body bias trades sub-threshold
leakage (more reverse bias -> higher Vth -> exponentially less leakage)
against speed (higher Vth -> lower frequency) and junction leakage
(``|Vbs| * Ij``).

:class:`ABBLadder` builds a DVS ladder in which every supply-voltage
step carries the *energy-per-cycle-optimal* body bias, chosen over a
discrete grid.  It is a drop-in replacement for
:class:`~repro.power.dvs.DVSLadder` in a
:class:`~repro.core.platform.Platform`, so every heuristic runs
unchanged on an ABB-capable processor — the basis of the DVS+ABB
ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from .dvs import DVSLadder, _make_point
from .model import PowerModel
from .technology import TECH_70NM, Technology

__all__ = ["ABBLadder", "optimal_body_bias"]


def optimal_body_bias(tech: Technology, vdd: float, *,
                      vbs_min: float = -1.0, vbs_max: float = 0.0,
                      vbs_step: float = 0.05,
                      min_frequency_hz: float = 0.0) -> float:
    """Body bias minimising energy per cycle at supply ``vdd``.

    Searches the discrete grid ``[vbs_min, vbs_max]`` (ABB hardware
    offers a few discrete wells, not a continuum).  Biases at which the
    device no longer conducts (frequency 0) or falls below
    ``min_frequency_hz`` are excluded — pass the fixed-bias frequency to
    get *performance-neutral* ABB.

    Raises:
        ValueError: if no grid point satisfies the constraints, or the
            grid is empty/inverted.
    """
    if vbs_min > vbs_max:
        raise ValueError(f"vbs_min {vbs_min} above vbs_max {vbs_max}")
    if vbs_step <= 0:
        raise ValueError("vbs_step must be positive")
    model = PowerModel(tech)
    n = int(np.floor((vbs_max - vbs_min) / vbs_step)) + 1
    grid = vbs_min + vbs_step * np.arange(n)
    freq = np.asarray(model.frequency(np.full(n, vdd), grid))
    ok = (freq > 0.0) & (freq >= min_frequency_hz * (1.0 - 1e-9))
    if not np.any(ok):
        raise ValueError(
            f"no feasible body bias in [{vbs_min}, {vbs_max}] "
            f"at vdd={vdd} (min frequency {min_frequency_hz:g} Hz)")
    energy = np.asarray(model.energy_per_cycle(np.full(n, vdd), grid))
    energy = np.where(ok, energy, np.inf)
    return float(grid[int(np.argmin(energy))])


class ABBLadder(DVSLadder):
    """A DVS ladder with a per-step energy-optimal body bias.

    Construction mirrors :class:`DVSLadder` (supply steps of
    ``vdd_step`` from ``vdd_max`` down), but each point's body bias is
    chosen by :func:`optimal_body_bias` instead of being fixed at the
    technology's ``vbs``.  Note the resulting maximum frequency can
    differ from the fixed-bias ladder's: at full supply the optimal
    bias may trade a little speed for a lot of leakage.

    Args:
        tech: technology constants.
        vdd_step: supply-voltage step (default: the paper's 0.05 V).
        vdd_max: highest supply voltage (default ``tech.vdd0``).
        vbs_min, vbs_max, vbs_step: the body-bias grid.
        performance_neutral: when true, each step's bias may not reduce
            the frequency below the fixed-bias value at the same supply
            — the ladder keeps the paper's speed grid and only sheds
            leakage.
    """

    def __init__(self, tech: Technology = TECH_70NM, *,
                 vdd_step: float = 0.05, vdd_max: float | None = None,
                 vbs_min: float = -1.0, vbs_max: float = 0.0,
                 vbs_step: float = 0.05,
                 performance_neutral: bool = False) -> None:
        if vdd_step <= 0:
            raise ValueError(f"vdd_step must be positive, got {vdd_step}")
        self.tech = tech
        self.model = PowerModel(tech)
        self.vdd_step = vdd_step
        self.vbs_grid = (vbs_min, vbs_max, vbs_step)
        self.performance_neutral = performance_neutral
        vmax = tech.vdd0 if vdd_max is None else vdd_max
        points = []
        vdd = vmax
        while vdd > 0:
            floor = float(self.model.frequency(vdd)) \
                if performance_neutral else 0.0
            try:
                vbs = optimal_body_bias(tech, vdd, vbs_min=vbs_min,
                                        vbs_max=vbs_max,
                                        vbs_step=vbs_step,
                                        min_frequency_hz=floor)
            except ValueError:
                break  # no feasible bias left at this supply
            point = _make_point(self.model, vdd, vbs)
            if point.frequency <= 0.0:
                break
            points.append(point)
            vdd = round(vdd - vdd_step, 10)
        if not points:
            raise ValueError("no operating point has a positive frequency")
        points.sort(key=lambda p: p.frequency)
        self._points = tuple(points)
        self._frequencies = np.array([p.frequency for p in self._points])
