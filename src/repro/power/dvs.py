"""Discrete dynamic voltage scaling (DVS) operating points.

The paper scales the supply voltage in discrete 0.05 V steps
(Section 4.3).  This module materialises that ladder as a tuple of
:class:`OperatingPoint` objects sorted by ascending frequency, and locates
the *critical* point — the frequency below which the energy per cycle
starts to increase again (Section 3.3; Fig. 2b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .model import PowerModel
from .technology import TECH_70NM, Technology

__all__ = ["OperatingPoint", "DVSLadder", "continuous_critical_frequency"]


@dataclass(frozen=True, slots=True, order=True)
class OperatingPoint:
    """One (frequency, voltage) setting of the processor.

    Ordered by frequency so that a sorted container of points is a
    frequency ladder.  All power/energy figures are precomputed because the
    schedulers evaluate them in tight loops.
    """

    frequency: float          #: operating frequency (Hz)
    vdd: float                #: supply voltage (V)
    active_power: float       #: P_AC + P_DC + P_on while executing (W)
    idle_power: float         #: P_DC + P_on while idle-but-on (W)
    energy_per_cycle: float   #: active_power / frequency (J)
    vbs: float = -0.7         #: body-bias voltage (V); fixed except for ABB

    @property
    def normalized(self) -> float:
        """Frequency normalized to this ladder's technology maximum.

        Only meaningful relative to the ladder that produced the point;
        stored implicitly via :meth:`DVSLadder.normalized`.
        """
        raise AttributeError(
            "use DVSLadder.normalized(point); a point alone does not know fmax")


def _make_point(model: PowerModel, vdd: float,
                vbs: float | None = None) -> OperatingPoint:
    return OperatingPoint(
        frequency=float(model.frequency(vdd, vbs)),
        vdd=float(vdd),
        active_power=float(model.active_power(vdd, vbs)),
        idle_power=float(model.idle_power(vdd, vbs)),
        energy_per_cycle=float(model.energy_per_cycle(vdd, vbs)),
        vbs=model.tech.vbs if vbs is None else float(vbs),
    )


class DVSLadder(Sequence[OperatingPoint]):
    """The discrete set of DVS operating points of a technology.

    Points are built from ``vdd_max`` downwards in ``vdd_step`` decrements
    while the resulting frequency stays positive, then stored in
    *ascending frequency* order.  Iteration, ``len`` and indexing follow
    that order, so ``ladder[-1]`` is the full-speed point.

    Args:
        tech: technology constants (defaults to the 70 nm process).
        vdd_step: voltage step; the paper uses 0.05 V.
        vdd_max: highest supply voltage; defaults to ``tech.vdd0``.

    Example:
        >>> ladder = DVSLadder()
        >>> round(ladder.fmax / 1e9, 1)
        3.1
        >>> round(ladder.critical_point().vdd, 2)
        0.7
    """

    def __init__(self, tech: Technology = TECH_70NM, *,
                 vdd_step: float = 0.05, vdd_max: float | None = None) -> None:
        if vdd_step <= 0:
            raise ValueError(f"vdd_step must be positive, got {vdd_step}")
        self.tech = tech
        self.model = PowerModel(tech)
        self.vdd_step = vdd_step
        vmax = tech.vdd0 if vdd_max is None else vdd_max
        n_steps = int(np.floor((vmax - tech.min_vdd) / vdd_step)) + 1
        voltages = vmax - vdd_step * np.arange(n_steps)
        voltages = voltages[self.model.frequency(voltages) > 0.0]
        if voltages.size == 0:
            raise ValueError("no operating point has a positive frequency")
        points = [_make_point(self.model, v) for v in np.sort(voltages)]
        self._points: tuple[OperatingPoint, ...] = tuple(points)
        self._frequencies = np.array([p.frequency for p in self._points])

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(  # type: ignore[override]
            self, i: "int | slice"
    ) -> "OperatingPoint | Sequence[OperatingPoint]":
        return self._points[i]

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    # -- Queries -----------------------------------------------------------
    @property
    def fmax(self) -> float:
        """Highest available frequency (Hz)."""
        return self._points[-1].frequency

    @property
    def fmin(self) -> float:
        """Lowest available (positive) frequency (Hz)."""
        return self._points[0].frequency

    @property
    def max_point(self) -> OperatingPoint:
        """The full-speed operating point."""
        return self._points[-1]

    def normalized(self, point: OperatingPoint) -> float:
        """Frequency of ``point`` normalized to this ladder's maximum."""
        return point.frequency / self.fmax

    def slowest_at_least(self, f_required: float) -> OperatingPoint:
        """Slowest point with ``frequency >= f_required``.

        This is the "stretch" primitive: given the minimum frequency that
        still meets the deadline, pick the most-scaled feasible setting.

        Raises:
            ValueError: if even the fastest point is too slow.
        """
        idx = int(np.searchsorted(self._frequencies, f_required, side="left"))
        if idx >= len(self._points):
            raise ValueError(
                f"required frequency {f_required/1e9:.3f} GHz exceeds "
                f"fmax {self.fmax/1e9:.3f} GHz")
        return self._points[idx]

    def at_or_above(self, f_required: float) -> tuple[OperatingPoint, ...]:
        """All feasible points (``frequency >= f_required``), ascending."""
        idx = int(np.searchsorted(self._frequencies, f_required, side="left"))
        return self._points[idx:]

    def critical_point(self) -> OperatingPoint:
        """The discrete point minimising energy per cycle (Fig. 2b).

        For the 70 nm ladder with 0.05 V steps this is ``vdd = 0.7 V``,
        i.e. a normalized frequency of 0.41 as the paper reports.
        """
        return min(self._points, key=lambda p: p.energy_per_cycle)

    def best_point(self, f_required: float) -> OperatingPoint:
        """Most energy-efficient feasible point for a frequency floor.

        Returns the critical point when it is fast enough, otherwise the
        slowest feasible point (which is then also the most efficient
        feasible one, because energy/cycle decreases monotonically above
        the critical frequency).
        """
        crit = self.critical_point()
        if crit.frequency >= f_required:
            return crit
        return self.slowest_at_least(f_required)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DVSLadder({len(self)} points, "
                f"{self.fmin/1e9:.3f}..{self.fmax/1e9:.3f} GHz, "
                f"step {self.vdd_step} V)")


def continuous_critical_frequency(tech: Technology = TECH_70NM,
                                  *, samples: int = 20001) -> float:
    """Critical frequency with a continuous voltage range (Hz).

    Located by a dense vectorized sweep of the energy-per-cycle curve —
    cheap (one numpy pass) and robust, since the curve is unimodal.  For
    the 70 nm constants this lands at ≈0.38 of the maximum frequency,
    matching Section 3.3.
    """
    model = PowerModel(tech)
    voltages = np.linspace(tech.min_vdd + 1e-6, tech.vdd0, samples)
    energy = np.asarray(model.energy_per_cycle(voltages))
    return float(model.frequency(voltages[int(np.argmin(energy))]))
