r"""Analytic power/energy model of a DVS-capable processor.

Implements the equations of Section 3.2 of the paper:

.. math::

    P       &= P_{AC} + P_{DC} + P_{on} \\
    P_{AC}  &= a\,C_{eff}\,V_{dd}^2\,f \\
    P_{DC}  &= L_g\,(V_{dd}\,I_{subn} + |V_{bs}|\,I_j) \\
    I_{subn}&= K_3\,e^{K_4 V_{dd}}\,e^{K_5 V_{bs}} \\
    f       &= (V_{dd} - V_{th})^{\\alpha} / (L_d K_6) \\
    V_{th}  &= V_{th1} - K_1 V_{dd} - K_2 V_{bs}

All public functions accept scalars or numpy arrays for ``vdd`` and are
fully vectorized; scalars in produce Python floats out.

Note on :math:`L_g`: the paper's Table 1 lists the gate count
``Lg = 4.0e6`` but the prose formula for :math:`P_{DC}` omits it.  Without
the per-gate multiplier the leakage power would be ~1e-7 W, contradicting
Fig. 2 where :math:`P_{DC}` is comparable to :math:`P_{AC}` (~0.7 W at
full speed).  Multiplying by ``Lg`` — as Martin et al. (ICCAD 2002), the
source of the model, do — reproduces every anchor the paper reports
(3.1 GHz at 1.0 V, discrete critical point 0.41 at 0.7 V, 1.7 M idle-cycle
breakeven at half speed), so we follow Martin et al.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .technology import TECH_70NM, Technology

ArrayLike = Union[float, np.ndarray]

__all__ = ["PowerModel"]


def _match(x: ArrayLike, value: np.ndarray) -> ArrayLike:
    """Return ``value`` as a float when the input was scalar."""
    if np.isscalar(x) or (isinstance(x, np.ndarray) and x.ndim == 0):
        return float(value)
    return value


class PowerModel:
    """Power and energy of one processor as a function of supply voltage.

    The model is stateless; one instance can be shared freely.  The
    expensive sweeps used by the experiments rely on the vectorized numpy
    code paths (pass an array of voltages and get arrays back).

    Args:
        tech: technology constants; defaults to the paper's 70 nm process.
    """

    def __init__(self, tech: Technology = TECH_70NM) -> None:
        self.tech = tech

    # ------------------------------------------------------------------
    # Device-level relations
    # ------------------------------------------------------------------
    def threshold_voltage(self, vdd: ArrayLike,
                          vbs: ArrayLike | None = None) -> ArrayLike:
        """Threshold voltage ``Vth(Vdd, Vbs)`` (V).

        ``vbs`` defaults to the technology's fixed body bias; pass a
        value to model adaptive body biasing (ABB).
        """
        t = self.tech
        v = np.asarray(vdd, dtype=float)
        b = t.vbs if vbs is None else np.asarray(vbs, dtype=float)
        return _match(vdd, t.vth1 - t.k1 * v - t.k2 * b)

    def frequency(self, vdd: ArrayLike,
                  vbs: ArrayLike | None = None) -> ArrayLike:
        """Operating frequency at ``(vdd, vbs)`` via the alpha-power law (Hz).

        Voltages at or below the conduction threshold map to 0 Hz rather
        than raising — convenient for vectorized ladder construction.
        """
        t = self.tech
        v = np.asarray(vdd, dtype=float)
        overdrive = np.maximum(v - self.threshold_voltage(v, vbs), 0.0)
        return _match(vdd, overdrive ** t.alpha / (t.l_d * t.k6))

    def subthreshold_current(self, vdd: ArrayLike,
                             vbs: ArrayLike | None = None) -> ArrayLike:
        """Sub-threshold leakage current per gate ``Isubn(Vdd, Vbs)`` (A)."""
        t = self.tech
        v = np.asarray(vdd, dtype=float)
        b = t.vbs if vbs is None else np.asarray(vbs, dtype=float)
        return _match(vdd, t.k3 * np.exp(t.k4 * v) * np.exp(t.k5 * b))

    # ------------------------------------------------------------------
    # Power components (W)
    # ------------------------------------------------------------------
    def dynamic_power(self, vdd: ArrayLike,
                      vbs: ArrayLike | None = None) -> ArrayLike:
        """Switching power ``P_AC = a * Ceff * Vdd^2 * f(Vdd, Vbs)`` (W)."""
        t = self.tech
        v = np.asarray(vdd, dtype=float)
        f = np.asarray(self.frequency(v, vbs), dtype=float)
        return _match(vdd, t.activity * t.c_eff * v * v * f)

    def static_power(self, vdd: ArrayLike,
                     vbs: ArrayLike | None = None) -> ArrayLike:
        """Leakage power ``P_DC = Lg * (Vdd*Isubn + |Vbs|*Ij)`` (W)."""
        t = self.tech
        v = np.asarray(vdd, dtype=float)
        b = t.vbs if vbs is None else np.asarray(vbs, dtype=float)
        isubn = np.asarray(self.subthreshold_current(v, vbs), dtype=float)
        return _match(vdd, t.l_g * (v * isubn + np.abs(b) * t.i_j))

    @property
    def on_power(self) -> float:
        """Intrinsic power ``P_on`` needed to keep a processor on (W)."""
        return self.tech.p_on

    def active_power(self, vdd: ArrayLike,
                     vbs: ArrayLike | None = None) -> ArrayLike:
        """Total power while executing: ``P_AC + P_DC + P_on`` (W)."""
        v = np.asarray(vdd, dtype=float)
        total = (np.asarray(self.dynamic_power(v, vbs), dtype=float)
                 + np.asarray(self.static_power(v, vbs), dtype=float)
                 + self.tech.p_on)
        return _match(vdd, total)

    def idle_power(self, vdd: ArrayLike,
                   vbs: ArrayLike | None = None) -> ArrayLike:
        """Power of an idle-but-on processor: ``P_DC + P_on`` (W).

        No switching activity means no dynamic component; leakage and the
        intrinsic on-power remain.  This is the quantity that makes
        Schedule-and-Stretch pay for over-provisioned processors.
        """
        v = np.asarray(vdd, dtype=float)
        total = np.asarray(self.static_power(v, vbs), dtype=float) \
            + self.tech.p_on
        return _match(vdd, total)

    # ------------------------------------------------------------------
    # Energy (J)
    # ------------------------------------------------------------------
    def energy_per_cycle(self, vdd: ArrayLike,
                         vbs: ArrayLike | None = None) -> ArrayLike:
        """Active energy per clock cycle ``P(Vdd) / f(Vdd)`` (J).

        Undefined (``inf``) at voltages with zero frequency.
        """
        v = np.asarray(vdd, dtype=float)
        f = np.asarray(self.frequency(v, vbs), dtype=float)
        p = np.asarray(self.active_power(v, vbs), dtype=float)
        with np.errstate(divide="ignore"):
            e = np.where(f > 0.0, p / np.where(f > 0.0, f, 1.0), np.inf)
        return _match(vdd, e)

    def active_energy(self, vdd: ArrayLike, cycles: ArrayLike) -> ArrayLike:
        """Energy to execute ``cycles`` clock cycles at ``vdd`` (J)."""
        e = np.asarray(self.energy_per_cycle(vdd), dtype=float)
        c = np.asarray(cycles, dtype=float)
        out = e * c
        if np.isscalar(vdd) and np.isscalar(cycles):
            return float(out)
        return out

    # ------------------------------------------------------------------
    # Convenience anchors
    # ------------------------------------------------------------------
    @property
    def max_frequency(self) -> float:
        """Frequency at the nominal supply voltage (Hz); ≈3.09 GHz at 70 nm."""
        return float(self.frequency(self.tech.vdd0))

    def normalized_frequency(self, vdd: ArrayLike) -> ArrayLike:
        """``f(vdd) / f(vdd0)`` — a dimensionless ratio in [0, 1]; the
        x-axis of the paper's Figs. 2 and 3."""
        f = np.asarray(self.frequency(vdd), dtype=float)
        return _match(vdd, f / self.max_frequency)

    def vdd_for_frequency(self, f: float, *, tol: float = 1e-9) -> float:
        """Invert the alpha-power law: smallest ``vdd`` (V) giving frequency ``f``.

        Closed form: ``(Vdd - Vth(Vdd))^alpha = f * Ld * K6`` is linear in
        ``Vdd`` once the overdrive is isolated, because ``Vth`` is itself
        linear in ``Vdd``.

        Raises:
            ValueError: if ``f`` exceeds what any physical voltage reaches
                (no upper clamp is applied) or is negative.
        """
        if f < 0.0:
            raise ValueError(f"frequency must be non-negative, got {f}")
        t = self.tech
        if f == 0.0:
            return t.min_vdd
        overdrive = (f * t.l_d * t.k6) ** (1.0 / t.alpha)
        # Vdd - (vth1 - k1*Vdd - k2*vbs) = overdrive
        vdd = (overdrive + t.vth1 - t.k2 * t.vbs) / (1.0 + t.k1)
        if not np.isfinite(vdd):
            raise ValueError(f"cannot reach frequency {f:g} Hz")
        # Guard against rounding making frequency(vdd) fall a hair short.
        if self.frequency(vdd) < f:
            vdd += tol
        return float(vdd)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PowerModel(fmax={self.max_frequency/1e9:.3f} GHz)"
