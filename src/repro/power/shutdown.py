"""Processor shutdown (deep sleep) cost model.

Section 3.4 of the paper: a sleeping processor draws 50 µW and a full
shutdown/resume pair costs 483 µJ (supply switching plus re-warming caches
and predictors).  Shutting down during an idle gap only pays off when the
gap is longer than the *breakeven* interval

.. math:: t_{be} = E_{overhead} / (P_{idle} - P_{sleep}),

which in cycles at half the maximum frequency is ≈1.7 million (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .dvs import OperatingPoint

ArrayLike = Union[float, np.ndarray]

__all__ = ["SleepModel", "DEFAULT_SLEEP"]


@dataclass(frozen=True, slots=True)
class SleepModel:
    """Deep-sleep parameters and the gap-energy arithmetic built on them.

    Attributes:
        sleep_power: power drawn in the sleep state (W).
        overhead_energy: energy of one shutdown+resume pair (J).
    """

    sleep_power: float = 50e-6
    overhead_energy: float = 483e-6

    def __post_init__(self) -> None:
        if self.sleep_power < 0:
            raise ValueError(f"sleep_power must be >= 0, got {self.sleep_power}")
        if self.overhead_energy < 0:
            raise ValueError(
                f"overhead_energy must be >= 0, got {self.overhead_energy}")

    # ------------------------------------------------------------------
    def breakeven_time(self, idle_power_watts: ArrayLike) -> ArrayLike:
        """Minimum idle duration for shutdown to save energy (s).

        ``inf`` when idling is no more expensive than sleeping (then
        shutdown can never pay for its overhead).
        """
        p = np.asarray(idle_power_watts, dtype=float)
        saving = p - self.sleep_power
        with np.errstate(divide="ignore"):
            t = np.where(saving > 0.0,
                         self.overhead_energy / np.where(saving > 0.0, saving, 1.0),
                         np.inf)
        if np.isscalar(idle_power_watts):
            return float(t)
        return t

    def breakeven_cycles(self, point: OperatingPoint) -> float:
        """Minimum idle gap in clock cycles at ``point`` (Fig. 3's y-axis)."""
        return float(self.breakeven_time(point.idle_power)) * point.frequency

    # ------------------------------------------------------------------
    def gap_energy(self, duration_seconds: ArrayLike,
                   idle_power_watts: float) -> ArrayLike:
        """Energy spent in an idle gap under the optimal on/off decision (J).

        A gap longer than the breakeven interval is spent asleep
        (overhead + sleep power); shorter gaps stay idle-but-on.
        Vectorized over ``duration_seconds``.
        """
        t = np.asarray(duration_seconds, dtype=float)
        if np.any(t < 0):
            raise ValueError("gap duration must be non-negative")
        stay_on = t * idle_power_watts
        shut_down = self.overhead_energy + t * self.sleep_power
        e = np.minimum(stay_on, shut_down)
        if np.isscalar(duration_seconds):
            return float(e)
        return e

    def would_shut_down(self, duration_seconds: ArrayLike,
                        idle_power_watts: float) -> ArrayLike:
        """Whether the optimal decision for a gap is to shut down."""
        t = np.asarray(duration_seconds, dtype=float)
        result = (self.overhead_energy
                  + t * self.sleep_power) < t * idle_power_watts
        if np.isscalar(duration_seconds):
            return bool(result)
        return result


#: The paper's sleep parameters (Jejurikar et al., DAC 2004).
DEFAULT_SLEEP = SleepModel()
