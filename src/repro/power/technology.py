"""Technology constants for the analytic CMOS power model.

The model (and every numeric constant) comes from Martin et al., "Combined
dynamic voltage scaling and adaptive body biasing for lower power
microprocessors under dynamic workloads" (ICCAD 2002), as used by
Jejurikar et al. (DAC 2004) and by de Langen & Juurlink (Table 1 of the
paper).  All quantities are in SI units unless noted otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping


@dataclass(frozen=True, slots=True)
class Technology:
    """Process/circuit constants of the analytic CMOS power model.

    The defaults (see :data:`TECH_70NM`) reproduce the paper's Table 1, a
    70 nm process whose maximum operating frequency is 3.1 GHz at
    ``vdd = 1.0 V`` with a body bias of −0.7 V.

    Attributes:
        k1, k2: threshold-voltage coefficients, ``Vth = vth1 - k1*Vdd - k2*Vbs``.
        k3, k4, k5: sub-threshold leakage coefficients,
            ``Isubn = k3 * exp(k4*Vdd) * exp(k5*Vbs)`` (amperes per gate).
        k6: technology constant in the alpha-power frequency law.
        k7: body-bias charge-pump coefficient (unused here; listed in the
            paper's Table 1 for completeness).
        vdd0: nominal supply voltage (V); also the maximum supply used.
        vbs: body-to-source bias voltage (V), fixed at −0.7 V in the paper.
        alpha: velocity-saturation exponent of the alpha-power law.
        vth1: zero-bias threshold-voltage constant (V).
        i_j: reverse-bias junction leakage current per gate (A).
        c_eff: effective switched capacitance per cycle (F).
        l_d: logic depth (gates on the critical path).
        l_g: number of gates contributing to leakage.
        p_on: intrinsic power to keep a processor on (W).
        activity: switching activity factor ``a`` in
            ``P_AC = a * c_eff * Vdd^2 * f``.
    """

    k1: float = 0.063
    k2: float = 0.153
    k3: float = 5.38e-7
    k4: float = 1.83
    k5: float = 4.19
    k6: float = 5.26e-12
    k7: float = -0.144
    vdd0: float = 1.0
    vbs: float = -0.7
    alpha: float = 1.5
    vth1: float = 0.244
    i_j: float = 4.8e-10
    c_eff: float = 0.43e-9
    l_d: float = 37.0
    l_g: float = 4.0e6
    p_on: float = 0.1
    activity: float = 1.0

    def with_overrides(self, **overrides: float) -> "Technology":
        """Return a copy with the given fields replaced.

        Useful for sensitivity studies (e.g. scaling ``l_g`` to model a
        leakier process) without mutating the shared default.
        """
        return replace(self, **overrides)

    @property
    def min_vdd(self) -> float:
        """Smallest supply voltage with a positive operating frequency.

        The alpha-power law requires ``Vdd > Vth(Vdd)``; with
        ``Vth = vth1 - k1*Vdd - k2*vbs`` this solves to
        ``Vdd > (vth1 - k2*vbs) / (1 + k1)``.
        """
        return (self.vth1 - self.k2 * self.vbs) / (1.0 + self.k1)

    def as_dict(self) -> Mapping[str, float]:
        """Expose the constants as a plain mapping (for reports/serialisation)."""
        return {
            "K1": self.k1, "K2": self.k2, "K3": self.k3, "K4": self.k4,
            "K5": self.k5, "K6": self.k6, "K7": self.k7,
            "Vdd0": self.vdd0, "Vbs": self.vbs, "alpha": self.alpha,
            "Vth1": self.vth1, "Ij": self.i_j, "Ceff": self.c_eff,
            "Ld": self.l_d, "Lg": self.l_g, "Pon": self.p_on,
            "activity": self.activity,
        }


#: The paper's Table 1 — 70 nm technology constants.
TECH_70NM = Technology()
