"""Runtime substrate: discrete-event execution of static schedules with
actual task times and online DVS policies (slack reclamation).
"""

from .simulator import (
    DispatchContext,
    FrequencyPolicy,
    SimulationResult,
    fixed_frequency_policy,
    simulate,
)
from .slack_reclaim import greedy_reclaim_policy, \
    leakage_aware_reclaim_policy

__all__ = [
    "simulate",
    "SimulationResult",
    "DispatchContext",
    "FrequencyPolicy",
    "fixed_frequency_policy",
    "greedy_reclaim_policy",
    "leakage_aware_reclaim_policy",
]
