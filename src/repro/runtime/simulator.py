"""Discrete-event execution of a static schedule with actual task times.

The scheduling model works with worst-case execution times (Section 3.1:
weights are upper bounds).  At run time tasks usually finish early,
creating *dynamic slack* that an online policy can reclaim by slowing
later tasks — the technique of Zhu, Melhem & Childers (TPDS 2003), the
paper from which S&S's schedule-then-stretch idea originates.

:func:`simulate` replays a static schedule (assignment + per-processor
order fixed at design time) with actual cycle counts and a pluggable
per-dispatch frequency policy, returning the realised timing and energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional

import numpy as np

from ..core.energy import EnergyBreakdown
from ..core.platform import Platform, default_platform
from ..power.dvs import OperatingPoint
from ..sched.schedule import Schedule

__all__ = ["DispatchContext", "FrequencyPolicy", "SimulationResult",
           "simulate", "fixed_frequency_policy"]


@dataclass(frozen=True)
class DispatchContext:
    """Information available to an online policy when a task dispatches.

    Attributes:
        task: the task id being dispatched.
        processor: where it runs.
        now: current wall-clock time (s).
        planned_start: the task's start in the static plan (s), i.e.
            where it would begin if every earlier task used its full
            worst-case budget at the planned frequency.
        remaining_wcet_cycles: worst-case cycles of this task.
        deadline: the task's absolute deadline (s).
    """

    task: Hashable
    processor: int
    now: float
    planned_start: float
    remaining_wcet_cycles: float
    deadline: float


FrequencyPolicy = Callable[[DispatchContext], OperatingPoint]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated execution.

    Attributes:
        energy: realised energy (busy at the per-task chosen points;
            idle/sleep across the realised gaps, up to the deadline).
        finish_seconds: realised finish time per dense node index.
        task_points: the operating point each task actually used.
        makespan_seconds: completion time of the last task.
        deadline_misses: tasks that finished after their deadline.
    """

    energy: EnergyBreakdown
    finish_seconds: np.ndarray
    task_points: Mapping[Hashable, OperatingPoint]
    makespan_seconds: float
    deadline_misses: tuple

    @property
    def total_energy(self) -> float:
        return self.energy.total


def fixed_frequency_policy(point: OperatingPoint) -> FrequencyPolicy:
    """The offline behaviour: every task runs at the planned point."""

    def policy(ctx: DispatchContext) -> OperatingPoint:
        return point

    return policy


def simulate(schedule: Schedule, point: OperatingPoint,
             deadlines: np.ndarray, *,
             actual_cycles: Optional[Mapping[Hashable, float]] = None,
             policy: Optional[FrequencyPolicy] = None,
             platform: Optional[Platform] = None,
             use_sleep: bool = True) -> SimulationResult:
    """Execute ``schedule`` with actual task durations and a DVS policy.

    Args:
        schedule: the static plan (cycle units = worst-case cycles).
        point: the planned common operating point (used for the planned
            timeline and as the default policy).
        deadlines: per-task deadlines in reference cycles (at
            ``platform.fmax``), as produced by
            :func:`repro.sched.deadlines.task_deadlines`.
        actual_cycles: realised cycle count per task; defaults to the
            worst case.  Must not exceed the worst case.
        policy: per-dispatch frequency choice; defaults to the fixed
            planned point.
        platform: for the energy model; defaults to the paper's.
        use_sleep: apply the PS gap rule to realised idle gaps.

    Returns:
        A :class:`SimulationResult`.

    Raises:
        ValueError: if an actual cycle count exceeds its worst case.
    """
    platform = platform or default_platform()
    graph = schedule.graph
    w = graph.weights_array
    policy = policy or fixed_frequency_policy(point)
    d_seconds = np.asarray(deadlines, dtype=float) / platform.fmax
    window = float(d_seconds.max())

    actual = w.copy()
    if actual_cycles is not None:
        actual = np.array(actual)
        for v, cycles in actual_cycles.items():
            i = graph.index_of(v)
            if cycles > w[i] * (1.0 + 1e-9):
                raise ValueError(
                    f"task {v!r}: actual cycles {cycles:g} exceed the "
                    f"worst case {w[i]:g}")
            actual[i] = float(cycles)

    # Planned timeline at the planned point (for policies that compare
    # against the plan, like slack reclamation), per dense node index.
    planned = np.empty(graph.n)
    for v in graph.node_ids:
        planned[graph.index_of(v)] = \
            schedule.placement(v).start / point.frequency

    finish = np.zeros(graph.n)
    start = np.zeros(graph.n)
    task_points: Dict[Hashable, OperatingPoint] = {}
    proc_free: Dict[int, float] = {}
    # Same interleaving logic as multifreq.retime: original cycle start
    # order is consistent with both the processor order and precedence.
    topo_rank = {v: i for i, v in enumerate(graph.topo_indices)}
    order = sorted(
        (pl for p in range(schedule.n_processors)
         for pl in schedule.processor_tasks(p)),
        key=lambda pl: (pl.start, topo_rank[graph.index_of(pl.task)]))
    preds = graph.pred_indices
    for pl in order:
        v = graph.index_of(pl.task)
        ready = max((finish[u] for u in preds[v]), default=0.0)
        now = max(ready, proc_free.get(pl.processor, 0.0))
        ctx = DispatchContext(
            task=pl.task, processor=pl.processor, now=now,
            planned_start=planned[v],
            remaining_wcet_cycles=float(w[v]),
            deadline=float(d_seconds[v]))
        p = policy(ctx)
        task_points[pl.task] = p
        start[v] = now
        finish[v] = now + actual[v] / p.frequency
        proc_free[pl.processor] = finish[v]

    # Energy: busy per task at its own point; per-processor gaps from
    # the realised timeline, window = the latest deadline.
    busy = sum(actual[graph.index_of(v)] * task_points[v].energy_per_cycle
               for v in graph.node_ids)
    idle = sleep_e = overhead = 0.0
    n_shut = 0
    sleep = platform.sleep if use_sleep else None
    for proc in range(schedule.n_processors):
        tasks = schedule.processor_tasks(proc)
        if not tasks:
            continue
        # The processor idles at the *planned* point between tasks (it
        # has no work to run, its setting is whatever the last task
        # used; the planned point is the conservative choice).
        idle_power = point.idle_power
        t = 0.0
        gaps = []
        for pl in sorted(tasks, key=lambda pl: start[graph.index_of(pl.task)]):
            v = graph.index_of(pl.task)
            if start[v] > t + 1e-15:
                gaps.append(start[v] - t)
            t = finish[v]
        if window > t:
            gaps.append(window - t)
        for gap in gaps:
            if sleep is not None and sleep.would_shut_down(gap, idle_power):
                sleep_e += gap * sleep.sleep_power
                overhead += sleep.overhead_energy
                n_shut += 1
            else:
                idle += gap * idle_power
    energy = EnergyBreakdown(busy=busy, idle=idle, sleep=sleep_e,
                             overhead=overhead, n_shutdowns=n_shut)
    misses = tuple(
        graph.id_of(i) for i in range(graph.n)
        if finish[i] > d_seconds[i] * (1.0 + 1e-9))
    return SimulationResult(
        energy=energy, finish_seconds=finish, task_points=task_points,
        makespan_seconds=float(finish.max()), deadline_misses=misses)
