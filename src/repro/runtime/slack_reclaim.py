"""Online greedy slack reclamation (Zhu, Melhem & Childers, TPDS 2003).

When a task is dispatched *earlier* than the static plan anticipated
(because earlier tasks finished under their worst-case budgets), the
gap between now and the latest time the task could still start —
bounded by its own planned start plus the planned slack — is dynamic
slack.  Greedy reclamation gives all of it to the current task: the
task may run slow enough to finish where the plan would have finished
it, never later, so every downstream guarantee of the static plan is
preserved.

Two policies are provided:

* :func:`greedy_reclaim_policy` — classic per-task reclamation down to
  the ladder's slowest point that still finishes by the planned finish
  time.
* :func:`leakage_aware_reclaim_policy` — the same, but never below the
  critical frequency: below it, energy per cycle rises again, so a
  leakage-aware reclaimer stops at the critical speed and leaves the
  rest of the slack to the shutdown mechanism (the paper's §3.3
  insight applied online).
"""

from __future__ import annotations

from ..power.dvs import DVSLadder, OperatingPoint
from .simulator import DispatchContext, FrequencyPolicy

__all__ = ["greedy_reclaim_policy", "leakage_aware_reclaim_policy"]


def _reclaim(ctx: DispatchContext, planned_point: OperatingPoint,
             ladder: DVSLadder, floor_frequency: float) -> OperatingPoint:
    planned_finish = ctx.planned_start \
        + ctx.remaining_wcet_cycles / planned_point.frequency
    budget = planned_finish - ctx.now
    if budget <= 0:
        return planned_point  # running at/behind plan: no slack
    f_needed = ctx.remaining_wcet_cycles / budget
    f_needed = max(f_needed, floor_frequency)
    if f_needed >= planned_point.frequency:
        return planned_point
    try:
        return ladder.slowest_at_least(f_needed * (1.0 - 1e-12))
    except ValueError:  # pragma: no cover - budget > 0 implies feasible
        return planned_point


def greedy_reclaim_policy(planned_point: OperatingPoint,
                          ladder: DVSLadder) -> FrequencyPolicy:
    """Give each dispatched task all currently available slack."""

    def policy(ctx: DispatchContext) -> OperatingPoint:
        return _reclaim(ctx, planned_point, ladder, 0.0)

    return policy


def leakage_aware_reclaim_policy(planned_point: OperatingPoint,
                                 ladder: DVSLadder) -> FrequencyPolicy:
    """Greedy reclamation, floored at the critical frequency.

    Below the critical speed the energy per cycle increases again
    (Fig. 2b), so a leakage-aware reclaimer never scales past it —
    remaining slack is more valuable as shutdown time.
    """
    floor = ladder.critical_point().frequency

    def policy(ctx: DispatchContext) -> OperatingPoint:
        return _reclaim(ctx, planned_point, ladder, floor)

    return policy
