"""Scheduling substrate: list scheduling with pluggable priorities,
deadline assignment, schedule structures, and validation.
"""

from .deadlines import InfeasibleDeadlineError, task_deadlines
from .gantt import render_gantt
from .insertion import insertion_schedule
from .jit import HAVE_NUMBA, JIT_ACTIVE
from .list_scheduler import list_schedule
from .priorities import PRIORITY_POLICIES, PriorityPolicy, priority_keys
from .schedule import Placement, Schedule
from .validate import ScheduleInvariantError, check_deadlines, validate_schedule

__all__ = [
    "Placement",
    "Schedule",
    "list_schedule",
    "insertion_schedule",
    "HAVE_NUMBA",
    "JIT_ACTIVE",
    "render_gantt",
    "task_deadlines",
    "InfeasibleDeadlineError",
    "priority_keys",
    "PriorityPolicy",
    "PRIORITY_POLICIES",
    "validate_schedule",
    "check_deadlines",
    "ScheduleInvariantError",
]
