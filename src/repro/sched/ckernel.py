"""Optional C accelerator for the list-scheduler event loop.

:mod:`repro.sched.jit` re-expresses the ``heapq`` event loop of
:mod:`repro.sched.list_scheduler` over flat arrays so numba can compile
it.  This module carries the same kernel one step further for
environments *without* numba (the common case for the bundled
toolchain): the identical array kernel, written in ~100 lines of C,
compiled on first use with the system C compiler and loaded through
:mod:`ctypes`.  No third-party package is required — when no compiler
is available (or compilation, loading, or the import-time self-test
fails for any reason) the module degrades silently and the scheduler
keeps its pure-Python loop.

Determinism: the kernel is a line-for-line port of
``repro.sched.jit._schedule_arrays`` — the same three strictly totally
ordered binary min-heaps, the same lexicographic ``(a, b, c)``
comparisons on exact float64 values, and the only floating-point
arithmetic is the same ``finish = time + w[v]`` IEEE-754 double
addition.  Pop sequences of a correct min-heap over strictly ordered
entries are unique, so the C kernel's output arrays are *identical* to
the ``heapq`` path's (asserted by an import-time self-test here and by
the differential suite in ``tests/sched/test_ckernel.py``).  The
``REPRO_NO_CKERNEL`` gate therefore selects between bitwise-identical
backends and can never change results, reports, or cache bytes.

The compiled object is cached under ``~/.cache/repro`` keyed by a hash
of the C source, so each source revision compiles once per machine;
the write is atomic (``os.replace``), so concurrent workers race
benignly.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional, Tuple

import numpy as np

from .jit import schedule_kernel_python

__all__ = ["CKERNEL_ACTIVE", "schedule_kernel_c"]

# Backend selection only — both backends are bitwise-identical, so this
# flag cannot affect results, reports, or cache bytes.
_DISABLED = bool(os.environ.get("REPRO_NO_CKERNEL"))  # repro: noqa[DET003]

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

typedef int64_t i64;

/* Lexicographic (a, b, c) < (a, b, c) — tuple order, unrolled.  Exact
 * float64 comparisons; entries are strictly totally ordered (tasks and
 * processor ids are unique), so heap pop order is deterministic. */
static int less3(double a1, i64 b1, i64 c1, double a2, i64 b2, i64 c2) {
    if (a1 != a2) return a1 < a2;
    if (b1 != b2) return b1 < b2;
    return c1 < c2;
}

static void push3(double *ha, i64 *hb, i64 *hc, i64 *size,
                  double a, i64 b, i64 c) {
    i64 i = (*size)++;
    ha[i] = a; hb[i] = b; hc[i] = c;
    while (i > 0) {
        i64 parent = (i - 1) >> 1;
        if (less3(ha[i], hb[i], hc[i], ha[parent], hb[parent], hc[parent])) {
            double ta = ha[i]; ha[i] = ha[parent]; ha[parent] = ta;
            i64 tb = hb[i]; hb[i] = hb[parent]; hb[parent] = tb;
            i64 tc = hc[i]; hc[i] = hc[parent]; hc[parent] = tc;
            i = parent;
        } else {
            break;
        }
    }
}

static void pop3(double *ha, i64 *hb, i64 *hc, i64 *size,
                 double *a, i64 *b, i64 *c) {
    *a = ha[0]; *b = hb[0]; *c = hc[0];
    i64 n = --(*size);
    ha[0] = ha[n]; hb[0] = hb[n]; hc[0] = hc[n];
    i64 i = 0;
    for (;;) {
        i64 left = 2 * i + 1;
        if (left >= n) break;
        i64 smallest = left;
        i64 right = left + 1;
        if (right < n && less3(ha[right], hb[right], hc[right],
                               ha[left], hb[left], hc[left]))
            smallest = right;
        if (less3(ha[smallest], hb[smallest], hc[smallest],
                  ha[i], hb[i], hc[i])) {
            double ta = ha[i]; ha[i] = ha[smallest]; ha[smallest] = ta;
            i64 tb = hb[i]; hb[i] = hb[smallest]; hb[smallest] = tb;
            i64 tc = hc[i]; hc[i] = hc[smallest]; hc[smallest] = tc;
            i = smallest;
        } else {
            break;
        }
    }
}

/* The event loop of repro.sched.jit._schedule_arrays, verbatim. */
int repro_list_schedule(i64 n, i64 n_processors,
                        const double *keys, const double *w,
                        const i64 *succ_flat, const i64 *succ_offsets,
                        const i64 *in_degrees,
                        double *starts, double *finishes, i64 *procs) {
    i64 heap_doubles = 2 * n + n_processors;
    i64 heap_ints = 2 * (2 * n + n_processors) + n;
    double *da = (double *)malloc((size_t)heap_doubles * sizeof(double));
    i64 *ia = (i64 *)malloc((size_t)heap_ints * sizeof(i64));
    if (da == NULL || ia == NULL) {
        free(da); free(ia);
        return -1;
    }
    double *r_a = da, *q_a = da + n, *f_a = da + 2 * n;
    i64 *r_b = ia, *r_c = ia + n;
    i64 *q_b = ia + 2 * n, *q_c = ia + 3 * n;
    i64 *f_b = ia + 4 * n, *f_c = f_b + n_processors;
    i64 *n_pending = f_c + n_processors;
    i64 r_n = 0, q_n = 0, f_n = n_processors;
    i64 v, p, scheduled = 0;
    double time = 0.0, finish, pa, ignored;

    for (p = 0; p < n_processors; p++) {
        f_a[p] = (double)p;  /* ascending order is already a min-heap */
        f_b[p] = 0; f_c[p] = 0;
    }
    for (v = 0; v < n; v++) {
        n_pending[v] = in_degrees[v];
        if (n_pending[v] == 0)
            push3(r_a, r_b, r_c, &r_n, keys[v], v, 0);
    }

    while (scheduled < n) {
        while (r_n > 0 && f_n > 0) {
            pop3(r_a, r_b, r_c, &r_n, &ignored, &v, &p);
            pop3(f_a, f_b, f_c, &f_n, &pa, &p, &p);
            p = (i64)pa;
            starts[v] = time;
            finish = time + w[v];
            finishes[v] = finish;
            procs[v] = p;
            push3(q_a, q_b, q_c, &q_n, finish, v, p);
            scheduled++;
        }
        if (q_n == 0)
            break;  /* all remaining tasks were sources already dispatched */
        pop3(q_a, q_b, q_c, &q_n, &time, &v, &p);
        for (;;) {
            i64 si;
            push3(f_a, f_b, f_c, &f_n, (double)p, 0, 0);
            for (si = succ_offsets[v]; si < succ_offsets[v + 1]; si++) {
                i64 s = succ_flat[si];
                if (--n_pending[s] == 0)
                    push3(r_a, r_b, r_c, &r_n, keys[s], s, 0);
            }
            if (!(q_n > 0 && q_a[0] <= time))
                break;
            pop3(q_a, q_b, q_c, &q_n, &time, &v, &p);
        }
    }
    free(da);
    free(ia);
    return 0;
}
"""


def _compile_cached() -> Optional[str]:
    """Compile the kernel into the per-user cache; path or ``None``.

    The object name embeds a hash of the C source, so stale objects are
    never reused across source revisions; concurrent builders race
    benignly through an atomic ``os.replace``.
    """
    tag = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache_dir = os.path.join(
        os.path.expanduser("~"), ".cache", "repro")
    so_path = os.path.join(cache_dir, f"listsched-{tag}.so")
    if os.path.exists(so_path):
        return so_path
    os.makedirs(cache_dir, exist_ok=True)
    fd, c_path = tempfile.mkstemp(suffix=".c", dir=cache_dir)
    try:
        with os.fdopen(fd, "w") as f:
            f.write(_SOURCE)
        tmp_so = c_path[:-2] + ".so"
        subprocess.run(
            ["cc", "-O2", "-fPIC", "-shared", "-o", tmp_so, c_path],
            check=True, capture_output=True, timeout=120)
        os.replace(tmp_so, so_path)
    finally:
        try:
            os.remove(c_path)
        except OSError:
            pass
        try:
            os.remove(c_path[:-2] + ".so")
        except OSError:
            pass
    return so_path


def _self_test(fn) -> bool:
    """Differentially test the loaded kernel against the Python one.

    A fork–join graph on two processors exercises every code path:
    ready-queue ties, a stall (three ready tasks, two processors), the
    simultaneous-completion drain, and processor reuse.
    """
    keys = np.array([0.0, 3.0, 1.0, 2.0, 4.0])
    w = np.array([2.0, 3.0, 2.0, 2.0, 1.0])
    succ_flat = np.array([1, 2, 3, 4, 4, 4], dtype=np.intp)
    succ_offsets = np.array([0, 3, 4, 5, 6, 6], dtype=np.intp)
    in_degrees = np.array([0, 1, 1, 1, 3], dtype=np.intp)
    want = schedule_kernel_python(keys, w, succ_flat, succ_offsets,
                                  in_degrees.copy(), 2)
    got = fn(keys, w, succ_flat, succ_offsets, in_degrees, 2)
    return all(np.array_equal(a, b) for a, b in zip(want, got))


def _load():
    if _DISABLED:
        return None
    try:
        path = _compile_cached()
        lib = ctypes.CDLL(path)
        raw = lib.repro_list_schedule
        f64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
        i64 = np.ctypeslib.ndpointer(dtype=np.intp, flags="C_CONTIGUOUS")
        raw.restype = ctypes.c_int
        raw.argtypes = [ctypes.c_int64, ctypes.c_int64,
                        f64, f64, i64, i64, i64, f64, f64, i64]

        def kernel(keys: np.ndarray, w: np.ndarray,
                   succ_flat: np.ndarray, succ_offsets: np.ndarray,
                   in_degrees: np.ndarray, n_processors: int
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            n = keys.shape[0]
            starts = np.zeros(n)
            finishes = np.zeros(n)
            procs = np.zeros(n, dtype=np.intp)
            rc = raw(n, n_processors, keys, w, succ_flat, succ_offsets,
                     in_degrees, starts, finishes, procs)
            if rc != 0:  # pragma: no cover - malloc failure
                raise MemoryError("C scheduler kernel allocation failed")
            return starts, finishes, procs

        if not _self_test(kernel):  # pragma: no cover - defends builds
            return None
        return kernel
    except Exception:  # pragma: no cover - no compiler, bad toolchain...
        return None


_kernel = _load()

#: True when :func:`schedule_kernel_c` dispatches to compiled code.
CKERNEL_ACTIVE = _kernel is not None


def schedule_kernel_c(keys: np.ndarray, w: np.ndarray,
                      succ_flat: np.ndarray, succ_offsets: np.ndarray,
                      in_degrees: np.ndarray, n_processors: int
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the C array kernel; only callable when :data:`CKERNEL_ACTIVE`.

    Same signature and same bitwise-identical ``(start, finish,
    processor)`` arrays as :func:`repro.sched.jit.schedule_kernel`.
    """
    if _kernel is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("C scheduler kernel is not available")
    return _kernel(np.ascontiguousarray(keys, dtype=np.float64),
                   np.ascontiguousarray(w, dtype=np.float64),
                   succ_flat, succ_offsets,
                   np.ascontiguousarray(in_degrees, dtype=np.intp),
                   n_processors)
