"""Per-task deadline assignment.

The EDF list scheduler needs a deadline for every task, but the
application model supplies only a graph-level deadline ``D`` (or, for
unrolled KPNs, deadlines on output tasks).  Deadlines are propagated
backwards: a task must finish early enough that every successor can
still meet *its* deadline — the classic as-late-as-possible (ALAP)
assignment.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

import numpy as np

from ..graphs.dag import TaskGraph

__all__ = ["task_deadlines", "InfeasibleDeadlineError"]


class InfeasibleDeadlineError(ValueError):
    """The deadline is shorter than the critical path — no schedule can
    meet it even on infinitely many processors at the reference speed."""


def task_deadlines(graph: TaskGraph, deadline_cycles: float, *,
                   overrides: Optional[Mapping[Hashable, float]] = None,
                   check_feasible: bool = True) -> np.ndarray:
    """ALAP deadline (cycles) per dense node index.

    Args:
        graph: the task graph.
        deadline_cycles: graph-level deadline in cycles at the
            reference
            frequency; every task must finish by it.
        overrides: optional tighter deadlines for specific tasks (e.g.
            KPN output nodes).  Values above ``deadline_cycles`` are clamped.
        check_feasible: when true, raise if some task's deadline is below
            its earliest possible finish (top level), i.e. not even an
            ideal schedule could meet it.

    Returns:
        Array ``d`` with ``d[i]`` = latest finish time of node ``i``.

    Raises:
        InfeasibleDeadlineError: see ``check_feasible``.
        KeyError: if an override references an unknown task.
    """
    if deadline_cycles <= 0:
        raise ValueError(f"deadline must be positive, got {deadline_cycles}")
    # The propagation runs on plain Python floats: elementwise ndarray
    # indexing dominated this function's profile, and float64 list
    # arithmetic is the identical IEEE operation.
    dl = [float(deadline_cycles)] * graph.n
    if overrides:
        for task, value in overrides.items():
            if value <= 0:
                raise ValueError(
                    f"override deadline for {task!r} must be positive")
            i = graph.index_of(task)  # raises KeyError for unknown tasks
            dl[i] = min(dl[i], float(value))

    w = graph.weights_list
    succs = graph.succ_indices
    for v in reversed(graph.topo_indices):
        dv = dl[v]
        for s in succs[v]:
            latest = dl[s] - w[s]
            if latest < dv:
                dv = latest
        dl[v] = dv
    d = np.array(dl)

    if check_feasible:
        # Earliest finish = top level; computed inline to avoid a cycle
        # with the analysis module at import time.
        tl = [0.0] * graph.n
        preds = graph.pred_indices
        for v in graph.topo_indices:
            best = 0.0
            for p in preds[v]:
                if tl[p] > best:
                    best = tl[p]
            tl[v] = best + w[v]
        tl = np.array(tl)
        bad = np.nonzero(tl > d + 1e-9)[0]
        if bad.size:
            worst = int(bad[np.argmax(tl[bad] - d[bad])])
            raise InfeasibleDeadlineError(
                f"task {graph.id_of(worst)!r} cannot finish before its "
                f"deadline {d[worst]:g} (earliest finish {tl[worst]:g}); "
                f"deadline below the critical path?")
    return d
