"""ASCII Gantt rendering of schedules (for the worked examples)."""

from __future__ import annotations

from .schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, *, width: int = 72,
                 horizon_cycles: float | None = None) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    Each processor gets one row; tasks are drawn as ``[label ]`` blocks
    proportional to their duration.  ``horizon_cycles`` extends the
    time axis beyond the makespan (e.g. to the deadline).
    """
    span = horizon_cycles if horizon_cycles is not None \
        else schedule.makespan
    if span <= 0:
        raise ValueError("schedule has zero span")
    scale = width / span
    ids = schedule.graph.node_ids
    starts = schedule.start_times
    finishes = schedule.finish_times
    lines = []
    for proc in schedule.employed_processor_ids:
        row = [" "] * (int(span * scale) + 1)
        for i in schedule.tasks_on(proc).tolist():
            a = int(starts[i] * scale)
            b = max(a + 1, int(finishes[i] * scale))
            label = str(ids[i])
            block = list("[" + label[: max(0, b - a - 2)].ljust(b - a - 2,
                                                                "=") + "]"
                         if b - a >= 2 else "|")
            row[a:a + len(block)] = block
        lines.append(f"P{proc}: " + "".join(row).rstrip())
    axis = f"     0{'cycles'.rjust(int(span * scale) - 5)}= {span:g}"
    lines.append(axis)
    return "\n".join(lines)
