"""ASCII Gantt rendering of schedules (for the worked examples)."""

from __future__ import annotations

from .schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, *, width: int = 72,
                 horizon: float | None = None) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    Each processor gets one row; tasks are drawn as ``[label ]`` blocks
    proportional to their duration.  ``horizon`` (cycles) extends the
    time axis beyond the makespan (e.g. to the deadline).
    """
    span = horizon if horizon is not None else schedule.makespan
    if span <= 0:
        raise ValueError("schedule has zero span")
    scale = width / span
    lines = []
    for proc in range(schedule.n_processors):
        tasks = schedule.processor_tasks(proc)
        if not tasks:
            continue
        row = [" "] * (int(span * scale) + 1)
        for pl in tasks:
            a = int(pl.start * scale)
            b = max(a + 1, int(pl.finish * scale))
            label = str(pl.task)
            block = list("[" + label[: max(0, b - a - 2)].ljust(b - a - 2,
                                                                "=") + "]"
                         if b - a >= 2 else "|")
            row[a:a + len(block)] = block
        lines.append(f"P{proc}: " + "".join(row).rstrip())
    axis = f"     0{'cycles'.rjust(int(span * scale) - 5)}= {span:g}"
    lines.append(axis)
    return "\n".join(lines)
