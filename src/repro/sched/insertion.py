"""Insertion-based list scheduling.

An alternative to the event-driven scheduler of
:mod:`repro.sched.list_scheduler`: tasks are placed one at a time in
global priority order, and each task may be *inserted into an idle gap*
left earlier on any processor (classic insertion-based list scheduling,
as in HEFT).  Gap filling can shorten makespans on graphs where the
work-conserving greedy leaves early holes — one of the "other
scheduling algorithms" Section 4.4 asks about.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple, Union

import numpy as np

from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from .priorities import PriorityPolicy, priority_keys
from .schedule import Schedule

__all__ = ["insertion_schedule"]


def _earliest_fit(intervals: List[Tuple[float, float]], starts: List[float],
                  ready: float, duration: float) -> float:
    """Earliest start >= ready of a length-``duration`` slot.

    ``intervals`` is the processor's busy list, sorted by start, with
    ``starts`` the parallel list of interval starts.  Intervals that end
    before ``ready`` cannot constrain the fit (the busy list is
    non-overlapping), so the scan begins at the last interval starting
    at or before ``ready`` instead of index 0.
    """
    t = ready
    first = bisect_right(starts, ready) - 1
    if first < 0:
        first = 0
    for s, e in intervals[first:]:
        if t + duration <= s:
            return t
        if e > t:
            t = e
    return t


def insertion_schedule(graph: TaskGraph, n_processors: int,
                       deadlines: Optional[np.ndarray] = None, *,
                       policy: Union[str, PriorityPolicy] = "edf",
                       obs: Optional[ObsLog] = None) -> Schedule:
    """Schedule by priority-ordered placement with gap insertion.

    Tasks are taken in a topologically consistent global priority order
    (priority key, then topological rank); each is placed on the
    processor offering the earliest feasible start, considering idle
    gaps between already-placed tasks.  ``obs`` records the build span
    and the number of gap-fit insertion attempts.

    Args / returns: as :func:`repro.sched.list_scheduler.list_schedule`.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    o = live(obs)
    with o.span("sched.insertion_schedule", category="sched",
                tasks=graph.n, procs=n_processors):
        schedule, attempts = _insertion_schedule(
            graph, n_processors, deadlines, policy)
    o.count("sched.schedules_built")
    o.count("sched.insertion_attempts", attempts)
    return schedule


def _insertion_schedule(graph: TaskGraph, n_processors: int,
                        deadlines: Optional[np.ndarray],
                        policy: Union[str, PriorityPolicy]
                        ) -> Tuple[Schedule, int]:
    """Body of :func:`insertion_schedule` plus its fit-attempt count."""
    n = graph.n
    if deadlines is None:
        deadlines = np.zeros(n)
    keys = priority_keys(graph, deadlines, policy).tolist()
    topo_rank = [0] * n
    for rank, v in enumerate(graph.topo_indices):
        topo_rank[v] = rank

    # Global order: must respect precedence, so sort primarily by a
    # monotone-along-edges key.  Priority keys are not generally
    # monotone (e.g. LPT), so order by (key, topo) among *available*
    # tasks instead: a simple repeated selection over a ready set.
    w = graph.weights_list
    preds = graph.pred_indices
    succs = graph.succ_indices
    pending = list(graph.in_degrees)
    ready = [(keys[v], topo_rank[v], v) for v in range(n)
             if not pending[v]]
    heapq.heapify(ready)

    busy: List[List[Tuple[float, float]]] = [[] for _ in range(n_processors)]
    busy_starts: List[List[float]] = [[] for _ in range(n_processors)]
    starts = [0.0] * n
    finishes = [0.0] * n
    procs = [0] * n
    placed = 0
    attempts = 0
    while ready:
        _, _, v = heapq.heappop(ready)
        ready_time = max((finishes[u] for u in preds[v]), default=0.0)
        best_start = np.inf
        best_proc = 0
        for p in range(n_processors):
            s = _earliest_fit(busy[p], busy_starts[p], ready_time, w[v])
            attempts += 1
            if s < best_start - 1e-15:
                best_start = s
                best_proc = p
            if best_start <= ready_time:  # cannot start earlier
                break
        starts[v] = best_start
        finishes[v] = best_start + w[v]
        interval = (best_start, finishes[v])
        lo = bisect_left(busy_starts[best_proc], best_start)
        busy[best_proc].insert(lo, interval)  # insert keeping start order
        busy_starts[best_proc].insert(lo, best_start)
        procs[v] = best_proc
        placed += 1
        for s_ in succs[v]:
            pending[s_] -= 1
            if not pending[s_]:
                heapq.heappush(ready, (keys[s_], topo_rank[s_], s_))
    if placed != n:
        raise RuntimeError("insertion scheduler failed to place all tasks")

    return Schedule.from_arrays(graph, n_processors,
                                np.array(starts), np.array(finishes),
                                np.array(procs, dtype=np.intp)), attempts
