"""Array-native list-scheduler kernel, numba-JIT'd when available.

The ``heapq`` event loop in :mod:`repro.sched.list_scheduler` is the
campaign's dominant cost after the energy sweeps were vectorized (PR 4's
profiles).  This module re-expresses that loop over flat numpy arrays —
three array-backed binary min-heaps and a CSR successor walk — in a form
``numba.njit`` can compile to machine code.  When numba is installed
and ``REPRO_NO_NUMBA`` is unset, :func:`schedule_kernel` dispatches to
the compiled kernel; otherwise the same function body runs as plain
Python (and :mod:`repro.sched.list_scheduler` keeps its ``heapq`` loop,
which is faster than an interpreted array heap).

Determinism: every heap holds *strictly totally ordered* entries —
``(priority key, task)`` pairs and ``(finish, task, processor)``
triples are unique because tasks are, and the free-processor heap holds
distinct ids — so the pop sequence of any correct min-heap is the same.
The kernel therefore produces arrays *identical* to the ``heapq`` path
(asserted by ``tests/sched/test_jit_fallback.py``): the only
floating-point arithmetic, ``finish = time + w[v]``, is the same
float64 addition in both.

The ``REPRO_NO_NUMBA`` gate is read once at import; it selects between
bitwise-identical kernels and can never change results or cache bytes.
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

__all__ = ["HAVE_NUMBA", "JIT_ACTIVE", "schedule_kernel",
           "schedule_kernel_python"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit
    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

# Backend selection only — both backends are bitwise-identical, so this
# flag cannot affect results, reports, or cache bytes.
_DISABLED = bool(os.environ.get("REPRO_NO_NUMBA"))  # repro: noqa[DET003]

#: True when :func:`schedule_kernel` dispatches to compiled code.
JIT_ACTIVE = HAVE_NUMBA and not _DISABLED


def _heap_less(a1: float, b1: int, c1: int,
               a2: float, b2: int, c2: int) -> bool:
    """Lexicographic ``(a, b, c) < (a, b, c)`` — tuple order, unrolled."""
    if a1 != a2:
        return a1 < a2
    if b1 != b2:
        return b1 < b2
    return c1 < c2


def _heap_push(ha: np.ndarray, hb: np.ndarray, hc: np.ndarray,
               size: int, a: float, b: int, c: int) -> int:
    """Push ``(a, b, c)`` onto the parallel-array heap; new size."""
    i = size
    ha[i] = a
    hb[i] = b
    hc[i] = c
    while i > 0:
        parent = (i - 1) >> 1
        if _heap_less(ha[i], hb[i], hc[i],
                      ha[parent], hb[parent], hc[parent]):
            ha[i], ha[parent] = ha[parent], ha[i]
            hb[i], hb[parent] = hb[parent], hb[i]
            hc[i], hc[parent] = hc[parent], hc[i]
            i = parent
        else:
            break
    return size + 1


def _heap_pop(ha: np.ndarray, hb: np.ndarray, hc: np.ndarray,
              size: int) -> Tuple[float, int, int, int]:
    """Pop the minimum; returns ``(a, b, c, new size)``."""
    a0 = ha[0]
    b0 = hb[0]
    c0 = hc[0]
    size -= 1
    ha[0] = ha[size]
    hb[0] = hb[size]
    hc[0] = hc[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        smallest = left
        right = left + 1
        if right < size and _heap_less(ha[right], hb[right], hc[right],
                                       ha[left], hb[left], hc[left]):
            smallest = right
        if _heap_less(ha[smallest], hb[smallest], hc[smallest],
                      ha[i], hb[i], hc[i]):
            ha[i], ha[smallest] = ha[smallest], ha[i]
            hb[i], hb[smallest] = hb[smallest], hb[i]
            hc[i], hc[smallest] = hc[smallest], hc[i]
            i = smallest
        else:
            break
    return a0, b0, c0, size


def _schedule_arrays(keys: np.ndarray, w: np.ndarray,
                     succ_flat: np.ndarray, succ_offsets: np.ndarray,
                     in_degrees: np.ndarray, n_processors: int
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The list-scheduler event loop over flat arrays.

    Mirrors ``repro.sched.list_scheduler._list_schedule`` exactly:
    dispatch the smallest ``(key, task)`` among ready tasks to the
    lowest free processor, advance to the next completion, and drain
    every completion at that same timestamp before dispatching again.
    Returns ``(start, finish, processor)`` arrays in cycles.
    """
    n = keys.shape[0]
    starts = np.zeros(n)
    finishes = np.zeros(n)
    procs = np.zeros(n, dtype=np.intp)
    n_pending = in_degrees.copy()

    # Ready heap: (priority key, task, 0).
    r_a = np.empty(n)
    r_b = np.empty(n, dtype=np.intp)
    r_c = np.zeros(n, dtype=np.intp)
    r_n = 0
    # Running heap: (finish time, task, processor).
    q_a = np.empty(n)
    q_b = np.empty(n, dtype=np.intp)
    q_c = np.empty(n, dtype=np.intp)
    q_n = 0
    # Free-processor heap: (processor id, 0, 0) — ids < 2**53 are exact
    # as float64, so the primary slot alone orders them.
    f_a = np.empty(n_processors)
    f_b = np.zeros(n_processors, dtype=np.intp)
    f_c = np.zeros(n_processors, dtype=np.intp)
    for p in range(n_processors):
        f_a[p] = p  # ascending order is already a valid min-heap
    f_n = n_processors

    for v in range(n):
        if n_pending[v] == 0:
            r_n = _heap_push(r_a, r_b, r_c, r_n, keys[v], v, 0)

    time = 0.0
    scheduled = 0
    while scheduled < n:
        while r_n > 0 and f_n > 0:
            _, v, _, r_n = _heap_pop(r_a, r_b, r_c, r_n)
            pa, _, _, f_n = _heap_pop(f_a, f_b, f_c, f_n)
            p = int(pa)
            starts[v] = time
            finish = time + w[v]
            finishes[v] = finish
            procs[v] = p
            q_n = _heap_push(q_a, q_b, q_c, q_n, finish, v, p)
            scheduled += 1
        if q_n == 0:
            break  # all remaining tasks were sources already dispatched
        time, v, p, q_n = _heap_pop(q_a, q_b, q_c, q_n)
        while True:
            f_n = _heap_push(f_a, f_b, f_c, f_n, float(p), 0, 0)
            for si in range(succ_offsets[v], succ_offsets[v + 1]):
                s = succ_flat[si]
                n_pending[s] -= 1
                if n_pending[s] == 0:
                    r_n = _heap_push(r_a, r_b, r_c, r_n, keys[s], s, 0)
            if not (q_n > 0 and q_a[0] <= time):
                break
            _, v, p, q_n = _heap_pop(q_a, q_b, q_c, q_n)
    return starts, finishes, procs


#: The kernel as plain Python — always available, used by the
#: differential tests and as the dispatch target when numba is absent.
schedule_kernel_python = _schedule_arrays

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _heap_less = _njit(cache=True, inline="always")(_heap_less)
    _heap_push = _njit(cache=True)(_heap_push)
    _heap_pop = _njit(cache=True)(_heap_pop)
    _schedule_compiled = _njit(cache=True)(_schedule_arrays)
else:
    _schedule_compiled = _schedule_arrays


def schedule_kernel(keys: np.ndarray, w: np.ndarray,
                    succ_flat: np.ndarray, succ_offsets: np.ndarray,
                    in_degrees: np.ndarray, n_processors: int
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the array kernel on the active backend.

    Compiled when :data:`JIT_ACTIVE`, interpreted otherwise; both
    produce identical ``(start, finish, processor)`` arrays (cycles).
    """
    fn = _schedule_compiled if JIT_ACTIVE else schedule_kernel_python
    return fn(np.ascontiguousarray(keys, dtype=np.float64),
              np.ascontiguousarray(w, dtype=np.float64),
              succ_flat, succ_offsets,
              np.ascontiguousarray(in_degrees, dtype=np.intp),
              n_processors)
