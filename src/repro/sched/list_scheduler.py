"""Event-driven non-preemptive list scheduler.

Implements the paper's LS-EDF (Section 4): a work-conserving simulation
in which, whenever a processor is free and tasks are ready (all
predecessors finished), the ready task with the best priority key is
dispatched.  All ties are broken deterministically (priority key, then
dense node index; lowest-numbered free processor first), so schedules
are reproducible and "employed processors" is meaningful — tasks pack
onto low-numbered processors instead of spreading across all of them.

The hot loop uses flat arrays and ``heapq`` — no per-event object churn —
so scheduling a 5000-task graph onto hundreds of processors stays in the
tens of milliseconds.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Union

import numpy as np

from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from .priorities import PriorityPolicy, priority_keys
from .schedule import Placement, Schedule

__all__ = ["list_schedule"]


def list_schedule(graph: TaskGraph, n_processors: int,
                  deadlines: Optional[np.ndarray] = None, *,
                  policy: Union[str, PriorityPolicy] = "edf",
                  obs: Optional[ObsLog] = None) -> Schedule:
    """Schedule ``graph`` on ``n_processors`` identical processors.

    Args:
        graph: the task graph (weights in cycles).
        n_processors: number of available processors (>= 1).
        deadlines: per-task deadline vector for deadline-based policies
            (EDF).  May be omitted for structural policies; EDF then
            falls back to bottom-level-free zeros, which degenerates to
            index order — pass real deadlines for meaningful EDF.
        policy: priority policy name or callable (see
            :mod:`repro.sched.priorities`).
        obs: optional :class:`~repro.obs.ObsLog` recording a
            per-schedule build span and dispatch counters (no effect on
            the schedule).

    Returns:
        A :class:`Schedule` in cycle units.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    o = live(obs)
    with o.span("sched.list_schedule", category="sched",
                tasks=graph.n, procs=n_processors):
        schedule = _list_schedule(graph, n_processors, deadlines, policy)
    o.count("sched.schedules_built")
    o.count("sched.tasks_dispatched", graph.n)
    return schedule


def _list_schedule(graph: TaskGraph, n_processors: int,
                   deadlines: Optional[np.ndarray],
                   policy: Union[str, PriorityPolicy]) -> Schedule:
    """The uninstrumented scheduler body — see :func:`list_schedule`."""
    n = graph.n
    if deadlines is None:
        deadlines = np.zeros(n)
    keys = priority_keys(graph, deadlines, policy)

    w = graph.weights_array
    succs = graph.succ_indices
    n_pending = np.array([len(p) for p in graph.pred_indices])

    ready: List[tuple] = [(keys[v], v) for v in range(n) if n_pending[v] == 0]
    heapq.heapify(ready)
    # (finish_time, task, proc); tie-handling drains equal timestamps.
    running: List[tuple] = []
    free_procs = list(range(n_processors))  # min-heap: lowest id first
    heapq.heapify(free_procs)

    starts = np.empty(n)
    finishes = np.empty(n)
    procs = np.empty(n, dtype=int)
    time = 0.0
    scheduled = 0
    while scheduled < n:
        while ready and free_procs:
            _, v = heapq.heappop(ready)
            p = heapq.heappop(free_procs)
            starts[v] = time
            finishes[v] = time + w[v]
            procs[v] = p
            heapq.heappush(running, (finishes[v], v, p))
            scheduled += 1
        if not running:
            break  # all remaining tasks were sources already dispatched
        # Advance to the next completion and drain everything that
        # completes at that same instant, so simultaneous releases
        # compete on priority rather than pop order.
        time, v, p = heapq.heappop(running)
        _complete(v, p, free_procs, ready, keys, n_pending, succs)
        while running and running[0][0] <= time:
            _, v2, p2 = heapq.heappop(running)
            _complete(v2, p2, free_procs, ready, keys, n_pending, succs)

    placements = [
        Placement(task=graph.id_of(v), processor=int(procs[v]),
                  start=float(starts[v]), finish=float(finishes[v]))
        for v in range(n)
    ]
    return Schedule(graph, n_processors, placements)


def _complete(v: int, p: int, free_procs: list, ready: list,
              keys: np.ndarray, n_pending: np.ndarray, succs) -> None:
    heapq.heappush(free_procs, p)
    for s in succs[v]:
        n_pending[s] -= 1
        if n_pending[s] == 0:
            heapq.heappush(ready, (keys[s], s))
