"""Event-driven non-preemptive list scheduler.

Implements the paper's LS-EDF (Section 4): a work-conserving simulation
in which, whenever a processor is free and tasks are ready (all
predecessors finished), the ready task with the best priority key is
dispatched.  All ties are broken deterministically (priority key, then
dense node index; lowest-numbered free processor first), so schedules
are reproducible and "employed processors" is meaningful — tasks pack
onto low-numbered processors instead of spreading across all of them.

The hot loop uses flat arrays and ``heapq`` — no per-event object churn —
so scheduling a 5000-task graph onto hundreds of processors stays in the
tens of milliseconds.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Union

import numpy as np

from ..graphs.dag import TaskGraph
from ..obs import ObsLog, live
from .ckernel import CKERNEL_ACTIVE, schedule_kernel_c
from .jit import JIT_ACTIVE, schedule_kernel
from .priorities import PriorityPolicy, priority_keys
from .schedule import Schedule

__all__ = ["list_schedule"]


def list_schedule(graph: TaskGraph, n_processors: int,
                  deadlines: Optional[np.ndarray] = None, *,
                  policy: Union[str, PriorityPolicy] = "edf",
                  obs: Optional[ObsLog] = None) -> Schedule:
    """Schedule ``graph`` on ``n_processors`` identical processors.

    Args:
        graph: the task graph (weights in cycles).
        n_processors: number of available processors (>= 1).
        deadlines: per-task deadline vector for deadline-based policies
            (EDF).  May be omitted for structural policies; EDF then
            falls back to bottom-level-free zeros, which degenerates to
            index order — pass real deadlines for meaningful EDF.
        policy: priority policy name or callable (see
            :mod:`repro.sched.priorities`).
        obs: optional :class:`~repro.obs.ObsLog` recording a
            per-schedule build span and dispatch counters (no effect on
            the schedule).

    Returns:
        A :class:`Schedule` in cycle units.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    o = live(obs)
    with o.span("sched.list_schedule", category="sched",
                tasks=graph.n, procs=n_processors):
        schedule = _list_schedule(graph, n_processors, deadlines, policy)
    o.count("sched.schedules_built")
    o.count("sched.tasks_dispatched", graph.n)
    return schedule


def _list_schedule(graph: TaskGraph, n_processors: int,
                   deadlines: Optional[np.ndarray],
                   policy: Union[str, PriorityPolicy]) -> Schedule:
    """The uninstrumented scheduler body — see :func:`list_schedule`."""
    n = graph.n
    if deadlines is None:
        deadlines = np.zeros(n)
    if JIT_ACTIVE or CKERNEL_ACTIVE:
        # A compiled array kernel replays this exact event loop over
        # flat heaps (numba: repro.sched.jit; ctypes C:
        # repro.sched.ckernel); its pop order — and hence every array
        # it returns — is identical to the heapq path's.
        kernel = schedule_kernel if JIT_ACTIVE else schedule_kernel_c
        key_arr = priority_keys(graph, deadlines, policy)
        succ_flat, succ_offsets = graph.succ_csr
        starts_a, finishes_a, procs_a = kernel(
            key_arr, graph.weights_array, succ_flat, succ_offsets,
            np.asarray(graph.in_degrees, dtype=np.intp), n_processors)
        return Schedule.from_arrays(graph, n_processors,
                                    starts_a, finishes_a, procs_a)
    # The event loop runs on plain Python scalars and lists: elementwise
    # numpy indexing and per-event helper calls dominated its profile.
    keys = priority_keys(graph, deadlines, policy).tolist()
    w = graph.weights_list
    succs = graph.succ_indices
    n_pending = list(graph.in_degrees)

    ready: List[tuple] = [(keys[v], v) for v in range(n) if not n_pending[v]]
    heapq.heapify(ready)
    # (finish_time, task, proc); tie-handling drains equal timestamps.
    running: List[tuple] = []
    free_procs = list(range(n_processors))  # min-heap: lowest id first
    heapq.heapify(free_procs)

    starts = [0.0] * n
    finishes = [0.0] * n
    procs = [0] * n
    heappush, heappop = heapq.heappush, heapq.heappop
    time = 0.0
    scheduled = 0
    while scheduled < n:
        while ready and free_procs:
            _, v = heappop(ready)
            p = heappop(free_procs)
            starts[v] = time
            finish = time + w[v]
            finishes[v] = finish
            procs[v] = p
            heappush(running, (finish, v, p))
            scheduled += 1
        if not running:
            break  # all remaining tasks were sources already dispatched
        # Advance to the next completion and drain everything that
        # completes at that same instant, so simultaneous releases
        # compete on priority rather than pop order.
        time, v, p = heappop(running)
        while True:
            heappush(free_procs, p)
            for s in succs[v]:
                n_pending[s] -= 1
                if not n_pending[s]:
                    heappush(ready, (keys[s], s))
            if not (running and running[0][0] <= time):
                break
            _, v, p = heappop(running)

    return Schedule.from_arrays(graph, n_processors,
                                np.array(starts), np.array(finishes),
                                np.array(procs, dtype=np.intp))
