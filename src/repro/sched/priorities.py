"""Priority policies for the list scheduler.

A policy maps a (graph, deadline vector) pair to a numeric key per task;
the scheduler always dispatches the *smallest* key among ready tasks.
EDF is the paper's policy; the alternatives exist for the Section 4.4
question ("could another scheduling algorithm do better?") and the
corresponding ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..graphs.analysis import bottom_levels
from ..graphs.dag import TaskGraph

__all__ = ["PriorityPolicy", "priority_keys", "PRIORITY_POLICIES"]

PriorityPolicy = Callable[[TaskGraph, np.ndarray], np.ndarray]


def edf(graph: TaskGraph, deadlines: np.ndarray) -> np.ndarray:
    """Earliest deadline first — the paper's LS-EDF policy."""
    return np.asarray(deadlines, dtype=float)


def hlfet(graph: TaskGraph, deadlines: np.ndarray) -> np.ndarray:
    """Highest level first (HLFET): longest remaining path goes first."""
    return -bottom_levels(graph)


def fifo(graph: TaskGraph, deadlines: np.ndarray) -> np.ndarray:
    """Topological-order tie-break only (arrival order)."""
    keys = np.empty(graph.n)
    for rank, v in enumerate(graph.topo_indices):
        keys[v] = rank
    return keys


def largest_task_first(graph: TaskGraph, deadlines: np.ndarray) -> np.ndarray:
    """Heaviest ready task first (LPT-style)."""
    return -graph.weights_array.astype(float)


def smallest_task_first(graph: TaskGraph, deadlines: np.ndarray) -> np.ndarray:
    """Lightest ready task first (SPT-style; a deliberately weak policy)."""
    return graph.weights_array.astype(float)


def random_policy(seed: int = 0) -> PriorityPolicy:
    """A seeded random priority (baseline noise floor for ablations)."""

    def _random(graph: TaskGraph, deadlines: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(np.random.SeedSequence((seed, graph.n)))
        return rng.permutation(graph.n).astype(float)

    _random.__name__ = f"random_{seed}"
    return _random


#: Registry used by the ablation benchmarks and the CLI.
PRIORITY_POLICIES: Dict[str, PriorityPolicy] = {
    "edf": edf,
    "hlfet": hlfet,
    "fifo": fifo,
    "lpt": largest_task_first,
    "spt": smallest_task_first,
    "random": random_policy(0),
}


def priority_keys(graph: TaskGraph, deadlines: np.ndarray,
                  policy: "str | PriorityPolicy" = "edf") -> np.ndarray:
    """Resolve ``policy`` (name or callable) and compute its keys.

    Raises:
        KeyError: for an unknown policy name.
        ValueError: if the policy returns a wrong-shaped key vector.
    """
    fn = PRIORITY_POLICIES[policy] if isinstance(policy, str) else policy
    keys = np.asarray(fn(graph, deadlines), dtype=float)
    if keys.shape != (graph.n,):
        raise ValueError(
            f"policy {getattr(fn, '__name__', fn)!r} returned shape "
            f"{keys.shape}, expected ({graph.n},)")
    return keys
