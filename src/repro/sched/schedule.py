"""Schedule data structures.

A :class:`Schedule` maps every task of a graph to a processor and a
``[start, finish)`` interval measured in *cycles* (the task weights'
unit).  Because all processors share one operating frequency that is
constant over the whole schedule (the paper's execution model), the same
cycle-level schedule is valid at every frequency — wall-clock times are
obtained by dividing by ``f``.  That lets the heuristics schedule once
and sweep operating points cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..graphs.dag import TaskGraph

__all__ = ["Placement", "Schedule"]


@dataclass(frozen=True, slots=True)
class Placement:
    """Assignment of one task: processor and cycle interval."""

    task: Hashable
    processor: int
    start: float     #: start time (cycles)
    finish: float    #: finish time (cycles); ``start + weight``


class Schedule:
    """A complete non-preemptive schedule of a task graph.

    Args:
        graph: the scheduled task graph.
        n_processors: number of processors the scheduler was given.  The
            number actually *employed* (that received at least one task)
            may be smaller; see :attr:`employed_processors`.
        placements: one placement per task.

    The constructor performs no validation beyond indexing; use
    :func:`repro.sched.validate.validate_schedule` to check precedence
    and overlap invariants.
    """

    __slots__ = ("graph", "n_processors", "_by_task", "_by_proc",
                 "_finish", "makespan")

    def __init__(self, graph: TaskGraph, n_processors: int,
                 placements: Sequence[Placement]) -> None:
        if n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        self.graph = graph
        self.n_processors = n_processors
        self._by_task: Dict[Hashable, Placement] = {}
        by_proc: List[List[Placement]] = [[] for _ in range(n_processors)]
        finish = np.zeros(graph.n)
        for pl in placements:
            if pl.task in self._by_task:
                raise ValueError(f"task {pl.task!r} placed twice")
            if not 0 <= pl.processor < n_processors:
                raise ValueError(
                    f"placement on processor {pl.processor} out of range")
            self._by_task[pl.task] = pl
            by_proc[pl.processor].append(pl)
            finish[graph.index_of(pl.task)] = pl.finish
        if len(self._by_task) != graph.n:
            missing = set(graph.node_ids) - set(self._by_task)
            raise ValueError(f"unplaced tasks: {sorted(map(str, missing))[:5]}")
        for lst in by_proc:
            lst.sort(key=lambda p: p.start)
        self._by_proc: Tuple[Tuple[Placement, ...], ...] = tuple(
            tuple(lst) for lst in by_proc)
        self._finish = finish
        self._finish.setflags(write=False)
        self.makespan: float = float(finish.max()) if graph.n else 0.0

    # ------------------------------------------------------------------
    def placement(self, task: Hashable) -> Placement:
        """The placement of ``task``."""
        return self._by_task[task]

    def processor_tasks(self, proc: int) -> Tuple[Placement, ...]:
        """Placements on ``proc``, ordered by start time."""
        return self._by_proc[proc]

    @property
    def finish_times(self) -> np.ndarray:
        """Finish time (cycles) per dense node index."""
        return self._finish

    @property
    def employed_processors(self) -> int:
        """Number of processors that execute at least one task."""
        return sum(1 for lst in self._by_proc if lst)

    def busy_cycles(self, proc: int) -> float:
        """Total executing cycles on ``proc``."""
        return float(sum(p.finish - p.start for p in self._by_proc[proc]))

    def idle_gaps(self, proc: int, horizon: float) -> List[Tuple[float, float]]:
        """Idle intervals on ``proc`` within ``[0, horizon]`` (cycles).

        Includes the leading gap before the first task and the trailing
        gap up to ``horizon``.  An entirely unused processor yields a
        single full-horizon gap.

        Raises:
            ValueError: if ``horizon`` is before the processor's last
                finish time (the schedule would not fit).
        """
        gaps: List[Tuple[float, float]] = []
        t = 0.0
        for pl in self._by_proc[proc]:
            if pl.start > t:
                gaps.append((t, pl.start))
            t = pl.finish
        # Relative tolerance: horizons come from seconds-to-cycles
        # round trips, so representation error scales with magnitude.
        tol = 1e-9 * max(1.0, abs(t))
        if horizon < t - tol:
            raise ValueError(
                f"horizon {horizon:g} is before processor {proc}'s last "
                f"finish {t:g}")
        if horizon > t + tol:
            gaps.append((t, horizon))
        return gaps

    def gap_lengths(self, proc: int, horizon: float) -> np.ndarray:
        """Lengths (cycles) of the idle gaps of ``proc`` (vector form)."""
        gaps = self.idle_gaps(proc, horizon)
        return np.array([b - a for a, b in gaps]) if gaps else np.empty(0)

    def required_reference_frequency(self, deadlines: np.ndarray) -> float:
        """Smallest frequency multiplier meeting per-task deadlines.

        ``deadlines`` is indexed by dense node index, in the same cycle
        units as the weights (i.e. cycles *at the reference frequency*).
        The schedule meets them when run at ``f >= r * f_ref`` where
        ``r = max(finish / deadline)`` is the returned ratio.

        Returns ``inf`` if any deadline is non-positive while its finish
        time is positive.
        """
        d = np.asarray(deadlines, dtype=float)
        if d.shape != self._finish.shape:
            raise ValueError("deadline vector has wrong length")
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(d > 0, self._finish / np.where(d > 0, d, 1.0),
                              np.where(self._finish > 0, np.inf, 0.0))
        return float(ratios.max()) if ratios.size else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Schedule({self.graph.name!r}, procs={self.n_processors}, "
                f"employed={self.employed_processors}, "
                f"makespan={self.makespan:g})")
