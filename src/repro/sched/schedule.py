"""Schedule data structures — the array-native schedule kernel.

A :class:`Schedule` maps every task of a graph to a processor and a
``[start, finish)`` interval measured in *cycles* (the task weights'
unit).  Because all processors share one operating frequency that is
constant over the whole schedule (the paper's execution model), the same
cycle-level schedule is valid at every frequency — wall-clock times are
obtained by dividing by ``f``.  That lets the heuristics schedule once
and sweep operating points cheaply.

Internally a schedule is *array-native*: dense per-task ``starts`` /
``finishes`` / ``procs`` vectors plus a per-processor CSR layout
(``lexsort`` order + offset bounds) from which per-processor busy-cycle
totals, last-finish times and **internal** idle-gap lengths are
precomputed once at construction.  Internal gaps (the leading gap and
the gaps between consecutive tasks of one processor) are frequency
-invariant in cycles; only the trailing gap up to the horizon depends on
the operating point, which is what makes the one-shot DVS-ladder sweep
of :func:`repro.core.energy.schedule_energy_sweep` possible.

:class:`Placement` objects are a *lazily materialized view*: the
schedulers build schedules through :meth:`Schedule.from_arrays` without
ever creating them, and callers that iterate placements (validation,
rendering, the simulator) pay for the objects only on first access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..graphs.dag import TaskGraph

__all__ = ["Placement", "Schedule"]


@dataclass(frozen=True, slots=True)
class Placement:
    """Assignment of one task: processor and cycle interval."""

    task: Hashable
    processor: int
    start: float     #: start time (cycles)
    finish: float    #: finish time (cycles); ``start + weight``


class Schedule:
    """A complete non-preemptive schedule of a task graph.

    Args:
        graph: the scheduled task graph.
        n_processors: number of processors the scheduler was given.  The
            number actually *employed* (that received at least one task)
            may be smaller; see :attr:`employed_processors`.
        placements: one placement per task.

    The placement-sequence constructor validates indexing (every task
    placed exactly once, processors in range); use
    :func:`repro.sched.validate.validate_schedule` to check precedence
    and overlap invariants.  The schedulers use the zero-copy
    :meth:`from_arrays` fast path instead.
    """

    __slots__ = (
        "graph", "n_processors", "makespan",
        # dense per-task arrays (indexed by dense node index)
        "_starts", "_finish", "_procs",
        # CSR layout: task order sorted by (proc, start) + offsets
        "_order", "_bounds",
        # per-processor precomputations
        "_proc_busy", "_proc_last", "_employed", "_employed_ids",
        # internal idle gaps, flat with per-processor offsets
        "_gap_lo", "_gap_hi", "_gap_len", "_gap_bounds",
        # lazily materialized Placement views
        "_by_task", "_by_proc",
    )

    def __init__(self, graph: TaskGraph, n_processors: int,
                 placements: Sequence[Placement]) -> None:
        if n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        by_task: Dict[Hashable, Placement] = {}
        by_proc: List[List[Placement]] = [[] for _ in range(n_processors)]
        for pl in placements:
            if pl.task in by_task:
                raise ValueError(f"task {pl.task!r} placed twice")
            if not 0 <= pl.processor < n_processors:
                raise ValueError(
                    f"placement on processor {pl.processor} out of range")
            by_task[pl.task] = pl
            by_proc[pl.processor].append(pl)
        if len(by_task) != graph.n:
            missing = set(graph.node_ids) - set(by_task)
            raise ValueError(f"unplaced tasks: {sorted(map(str, missing))[:5]}")
        for lst in by_proc:
            lst.sort(key=lambda p: p.start)

        n = graph.n
        starts = np.empty(n)
        finishes = np.empty(n)
        procs = np.empty(n, dtype=np.intp)
        order = np.empty(n, dtype=np.intp)
        index_of = graph.index_of
        k = 0
        for lst in by_proc:
            for pl in lst:
                i = index_of(pl.task)
                starts[i] = pl.start
                finishes[i] = pl.finish
                procs[i] = pl.processor
                order[k] = i
                k += 1
        # The per-processor lists were built anyway: keep them as the
        # already-materialized view (ties in start keep sequence order,
        # exactly as the stable per-processor sort left them).
        self._by_task = by_task
        self._by_proc = tuple(tuple(lst) for lst in by_proc)
        self._init_arrays(graph, n_processors, starts, finishes, procs, order)

    @classmethod
    def from_arrays(cls, graph: TaskGraph, n_processors: int,
                    starts: np.ndarray, finishes: np.ndarray,
                    procs: np.ndarray) -> "Schedule":
        """Zero-copy construction from dense per-task arrays.

        ``starts``, ``finishes`` and ``procs`` are indexed by dense node
        index (``graph.index_of``).  The arrays are adopted as-is (no
        copy when they are contiguous and of the right dtype) and frozen
        — the caller must hand over ownership.  No ``Placement`` objects
        are built; the placement view materializes lazily on first
        access.

        Raises:
            ValueError: on wrong-length arrays or out-of-range
                processor ids.
        """
        if n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        starts = np.ascontiguousarray(starts, dtype=float)
        finishes = np.ascontiguousarray(finishes, dtype=float)
        procs = np.ascontiguousarray(procs, dtype=np.intp)
        n = graph.n
        if starts.shape != (n,) or finishes.shape != (n,) \
                or procs.shape != (n,):
            raise ValueError(
                f"schedule arrays must have shape ({n},), got "
                f"{starts.shape}/{finishes.shape}/{procs.shape}")
        if n and (int(procs.min()) < 0 or int(procs.max()) >= n_processors):
            bad = int(procs.min()) if int(procs.min()) < 0 else int(procs.max())
            raise ValueError(f"placement on processor {bad} out of range")
        self = cls.__new__(cls)
        self._by_task = None
        self._by_proc = None
        # lexsort is stable: within one processor, equal starts keep
        # dense-index order — the same order the schedulers emit.
        order = np.lexsort((starts, procs))
        self._init_arrays(graph, n_processors, starts, finishes, procs, order)
        return self

    def _init_arrays(self, graph: TaskGraph, n_processors: int,
                     starts: np.ndarray, finishes: np.ndarray,
                     procs: np.ndarray, order: np.ndarray) -> None:
        """Shared kernel: adopt dense arrays + (proc, start)-sorted order."""
        self.graph = graph
        self.n_processors = n_processors
        self._starts = starts
        self._finish = finishes
        self._procs = procs
        self._order = order
        for a in (starts, finishes, procs, order):
            a.setflags(write=False)

        n = graph.n
        sorted_procs = procs[order]
        sorted_starts = starts[order]
        sorted_finishes = finishes[order]
        bounds = np.searchsorted(sorted_procs, np.arange(n_processors + 1))
        self._bounds = bounds
        nonempty = bounds[1:] > bounds[:-1]

        # Busy cycles per processor: cumulative-sum differences over the
        # (proc, start)-sorted duration vector.  Exact for the integer
        # cycle weights of every bundled workload.
        prefix = np.empty(n + 1)
        prefix[0] = 0.0
        np.cumsum(sorted_finishes - sorted_starts, out=prefix[1:])
        self._proc_busy = prefix[bounds[1:]] - prefix[bounds[:-1]]

        # Last finish time per processor (in start order), 0.0 if unused.
        last = np.zeros(n_processors)
        last[nonempty] = sorted_finishes[bounds[1:][nonempty] - 1]
        self._proc_last = last

        self._employed = int(np.count_nonzero(nonempty))
        self._employed_ids = tuple(np.nonzero(nonempty)[0].tolist())

        # Internal idle gaps: before each task, the processor is idle
        # from the previous finish (or 0.0 at the head of the row) to
        # the task's start.  These are frequency-invariant in cycles.
        prev = np.empty(n)
        if n:
            prev[1:] = sorted_finishes[:-1]
            prev[bounds[:-1][nonempty]] = 0.0
        keep = sorted_starts > prev
        self._gap_lo = prev[keep]
        self._gap_hi = sorted_starts[keep]
        self._gap_len = self._gap_hi - self._gap_lo
        self._gap_bounds = np.searchsorted(sorted_procs[keep],
                                           np.arange(n_processors + 1))
        for a in (self._proc_busy, self._proc_last, self._gap_lo,
                  self._gap_hi, self._gap_len):
            a.setflags(write=False)
        self.makespan = float(finishes.max()) if n else 0.0

    # ------------------------------------------------------------------
    # Lazily materialized Placement view
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        ids = self.graph.node_ids
        starts, finishes = self._starts, self._finish
        order, bounds = self._order, self._bounds
        by_task: Dict[Hashable, Placement] = {}
        by_proc = []
        for p in range(self.n_processors):
            row = []
            for i in order[bounds[p]:bounds[p + 1]].tolist():
                pl = Placement(task=ids[i], processor=p,
                               start=float(starts[i]),
                               finish=float(finishes[i]))
                row.append(pl)
                by_task[ids[i]] = pl
            by_proc.append(tuple(row))
        self._by_task = by_task
        self._by_proc = tuple(by_proc)

    def placement(self, task: Hashable) -> Placement:
        """The placement of ``task``."""
        if self._by_task is None:
            self._materialize()
        return self._by_task[task]

    def processor_tasks(self, proc: int) -> Tuple[Placement, ...]:
        """Placements on ``proc``, ordered by start time."""
        if self._by_proc is None:
            self._materialize()
        return self._by_proc[proc]

    # ------------------------------------------------------------------
    # Array-level kernel surface (no Placement objects involved)
    # ------------------------------------------------------------------
    @property
    def start_times(self) -> np.ndarray:
        """Start time (cycles) per dense node index."""
        return self._starts

    @property
    def finish_times(self) -> np.ndarray:
        """Finish time (cycles) per dense node index."""
        return self._finish

    @property
    def task_processors(self) -> np.ndarray:
        """Processor id per dense node index."""
        return self._procs

    @property
    def employed_processors(self) -> int:
        """Number of processors that execute at least one task.

        Cached at construction — the search loops read it on every
        Phase-2 iteration.
        """
        return self._employed

    @property
    def employed_processor_ids(self) -> Tuple[int, ...]:
        """Ids of the processors that execute at least one task."""
        return self._employed_ids

    def is_employed(self, proc: int) -> bool:
        """Whether ``proc`` executes at least one task."""
        return self._bounds[proc + 1] > self._bounds[proc]

    def tasks_on(self, proc: int) -> np.ndarray:
        """Dense node indices on ``proc``, ordered by start time."""
        return self._order[self._bounds[proc]:self._bounds[proc + 1]]

    @property
    def proc_busy_cycles(self) -> np.ndarray:
        """Total executing cycles per processor (vector form)."""
        return self._proc_busy

    @property
    def proc_last_finish(self) -> np.ndarray:
        """Last finish time (cycles) per processor; 0.0 when unused."""
        return self._proc_last

    @property
    def internal_gap_cycles(self) -> Tuple[np.ndarray, np.ndarray]:
        """Internal idle-gap lengths (cycles) in CSR form.

        Returns ``(flat, offsets)``: gap lengths of processor ``p`` are
        ``flat[offsets[p]:offsets[p+1]]``, ordered by gap start.  The
        leading gap before a processor's first task is included; the
        horizon-dependent trailing gap is not (see
        :meth:`gap_lengths`).
        """
        return self._gap_len, self._gap_bounds

    def busy_cycles(self, proc: int) -> float:
        """Total executing cycles on ``proc``."""
        return float(self._proc_busy[proc])

    def idle_gaps(self, proc: int,
                  horizon_cycles: float) -> List[Tuple[float, float]]:
        """Idle intervals on ``proc`` within ``[0, horizon_cycles]``.

        Includes the leading gap before the first task and the trailing
        gap up to ``horizon_cycles``.  An entirely unused processor
        yields a single full-horizon gap.

        Raises:
            ValueError: if ``horizon_cycles`` is before the processor's
                last finish time (the schedule would not fit).
        """
        g0, g1 = self._gap_bounds[proc], self._gap_bounds[proc + 1]
        gaps = list(zip(self._gap_lo[g0:g1].tolist(),
                        self._gap_hi[g0:g1].tolist()))
        t = float(self._proc_last[proc])
        # Relative tolerance: horizons come from seconds-to-cycles
        # round trips, so representation error scales with magnitude.
        tol = 1e-9 * max(1.0, abs(t))
        if horizon_cycles < t - tol:
            raise ValueError(
                f"horizon {horizon_cycles:g} is before processor "
                f"{proc}'s last finish {t:g}")
        if horizon_cycles > t + tol:
            gaps.append((t, horizon_cycles))
        return gaps

    def gap_lengths(self, proc: int, horizon_cycles: float) -> np.ndarray:
        """Lengths (cycles) of the idle gaps of ``proc`` (vector form).

        Internal gaps come from the precomputed kernel arrays; only the
        trailing gap is computed against ``horizon_cycles``.
        """
        internal = self._gap_len[self._gap_bounds[proc]:
                                 self._gap_bounds[proc + 1]]
        t = float(self._proc_last[proc])
        tol = 1e-9 * max(1.0, abs(t))
        if horizon_cycles < t - tol:
            raise ValueError(
                f"horizon {horizon_cycles:g} is before processor "
                f"{proc}'s last finish {t:g}")
        if horizon_cycles > t + tol:
            return np.append(internal, horizon_cycles - t)
        return internal

    def required_reference_frequency(self, deadlines: np.ndarray) -> float:
        """Smallest frequency multiplier meeting per-task deadlines.

        ``deadlines`` is indexed by dense node index, in the same cycle
        units as the weights (i.e. cycles *at the reference frequency*).
        The schedule meets them when run at ``f >= r * f_ref`` where
        ``r = max(finish / deadline)`` is the returned ratio.

        Returns ``inf`` if any deadline is non-positive while its finish
        time is positive.
        """
        d = np.asarray(deadlines, dtype=float)
        if d.shape != self._finish.shape:
            raise ValueError("deadline vector has wrong length")
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(d > 0, self._finish / np.where(d > 0, d, 1.0),
                              np.where(self._finish > 0, np.inf, 0.0))
        return float(ratios.max()) if ratios.size else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Schedule({self.graph.name!r}, procs={self.n_processors}, "
                f"employed={self.employed_processors}, "
                f"makespan={self.makespan:g})")
