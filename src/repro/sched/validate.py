"""Schedule validation.

Every schedule the heuristics produce is checked against the execution
model's invariants in the test suite, and the experiments validate their
final schedules too — a wrong schedule would silently corrupt every
energy number downstream.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .schedule import Schedule

__all__ = ["ScheduleInvariantError", "validate_schedule", "check_deadlines"]

_EPS = 1e-6


class ScheduleInvariantError(AssertionError):
    """A schedule violates the execution model."""


def validate_schedule(schedule: Schedule) -> None:
    """Check all structural invariants of ``schedule``.

    * every task appears exactly once (enforced at construction; the
      interval and duration are re-checked here);
    * each task runs for exactly its weight;
    * intervals on one processor do not overlap;
    * no task starts before all its predecessors have finished;
    * no negative times.

    Raises:
        ScheduleInvariantError: on the first violated invariant, with a
            message naming the offending task(s).
    """
    graph = schedule.graph
    ids = graph.node_ids
    starts = schedule.start_times.tolist()
    finishes = schedule.finish_times.tolist()
    weights = graph.weights_list
    problems: List[str] = []

    # Dense-index iteration over the kernel arrays — no Placement
    # materialization.  Report the first violated invariant only, in
    # the same (task, then per-processor overlap) order as always.
    for i in range(graph.n):
        v = ids[i]
        start, finish, w = starts[i], finishes[i], weights[i]
        if start < -_EPS:
            problems.append(f"task {v!r} starts at negative time {start:g}")
        dur = finish - start
        if abs(dur - w) > _EPS * max(1.0, w):
            problems.append(
                f"task {v!r} runs {dur:g} cycles, weight is {w:g}")
        for u in graph.pred_indices[i]:
            if finishes[u] > start + _EPS:
                problems.append(
                    f"task {v!r} starts at {start:g} before predecessor "
                    f"{ids[u]!r} finishes at {finishes[u]:g}")
        if problems:
            break

    if not problems:
        for proc in range(schedule.n_processors):
            row = schedule.tasks_on(proc).tolist()
            for a, b in zip(row, row[1:]):
                if finishes[a] > starts[b] + _EPS:
                    problems.append(
                        f"processor {proc}: {ids[a]!r} (ends "
                        f"{finishes[a]:g}) overlaps {ids[b]!r} "
                        f"(starts {starts[b]:g})")
                    break
            if problems:
                break

    if problems:
        raise ScheduleInvariantError(problems[0])


def check_deadlines(schedule: Schedule, deadlines: np.ndarray,
                    *, frequency_ratio: float = 1.0) -> Optional[str]:
    """Check per-task deadlines at a frequency ``ratio * f_ref``.

    Returns ``None`` when all deadlines are met, otherwise a message
    naming the first late task.  ``deadlines`` is in reference cycles.
    """
    if frequency_ratio <= 0:
        raise ValueError("frequency_ratio must be positive")
    d = np.asarray(deadlines, dtype=float)
    finish = schedule.finish_times / frequency_ratio
    late = np.nonzero(finish > d * (1.0 + _EPS))[0]
    if late.size == 0:
        return None
    v = int(late[np.argmax(finish[late] - d[late])])
    return (f"task {schedule.graph.id_of(v)!r} finishes at "
            f"{finish[v]:g} > deadline {d[v]:g} "
            f"(frequency ratio {frequency_ratio:g})")
