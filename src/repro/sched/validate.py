"""Schedule validation.

Every schedule the heuristics produce is checked against the execution
model's invariants in the test suite, and the experiments validate their
final schedules too — a wrong schedule would silently corrupt every
energy number downstream.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .schedule import Schedule

__all__ = ["ScheduleInvariantError", "validate_schedule", "check_deadlines"]

_EPS = 1e-6


class ScheduleInvariantError(AssertionError):
    """A schedule violates the execution model."""


def validate_schedule(schedule: Schedule) -> None:
    """Check all structural invariants of ``schedule``.

    * every task appears exactly once (enforced at construction; the
      interval and duration are re-checked here);
    * each task runs for exactly its weight;
    * intervals on one processor do not overlap;
    * no task starts before all its predecessors have finished;
    * no negative times.

    Raises:
        ScheduleInvariantError: on the first violated invariant, with a
            message naming the offending task(s).
    """
    graph = schedule.graph
    problems: List[str] = []

    for v in graph.node_ids:
        pl = schedule.placement(v)
        if pl.start < -_EPS:
            problems.append(f"task {v!r} starts at negative time {pl.start:g}")
        dur = pl.finish - pl.start
        if abs(dur - graph.weight(v)) > _EPS * max(1.0, graph.weight(v)):
            problems.append(
                f"task {v!r} runs {dur:g} cycles, weight is {graph.weight(v):g}")
        for u in graph.predecessors(v):
            pu = schedule.placement(u)
            if pu.finish > pl.start + _EPS:
                problems.append(
                    f"task {v!r} starts at {pl.start:g} before predecessor "
                    f"{u!r} finishes at {pu.finish:g}")
        if problems:
            break

    if not problems:
        for proc in range(schedule.n_processors):
            tasks = schedule.processor_tasks(proc)
            for a, b in zip(tasks, tasks[1:]):
                if a.finish > b.start + _EPS:
                    problems.append(
                        f"processor {proc}: {a.task!r} (ends {a.finish:g}) "
                        f"overlaps {b.task!r} (starts {b.start:g})")
                    break
            if problems:
                break

    if problems:
        raise ScheduleInvariantError(problems[0])


def check_deadlines(schedule: Schedule, deadlines: np.ndarray,
                    *, frequency_ratio: float = 1.0) -> Optional[str]:
    """Check per-task deadlines at a frequency ``ratio * f_ref``.

    Returns ``None`` when all deadlines are met, otherwise a message
    naming the first late task.  ``deadlines`` is in reference cycles.
    """
    if frequency_ratio <= 0:
        raise ValueError("frequency_ratio must be positive")
    d = np.asarray(deadlines, dtype=float)
    finish = schedule.finish_times / frequency_ratio
    late = np.nonzero(finish > d * (1.0 + _EPS))[0]
    if late.size == 0:
        return None
    v = int(late[np.argmax(finish[late] - d[late])])
    return (f"task {schedule.graph.id_of(v)!r} finishes at "
            f"{finish[v]:g} > deadline {d[v]:g} "
            f"(frequency ratio {frequency_ratio:g})")
