"""Scheduling-as-a-service: the async batch server over the exec cache.

The ROADMAP's millions-of-users direction: a long-running asyncio
HTTP/JSON service (stdlib only — ``asyncio`` plus a minimal HTTP/1.1
layer) that answers schedule requests out of the PR-1 content-addressed
:class:`~repro.exec.cache.ResultCache` and computes misses through the
PR-6 batched kernel path.  The division of labour:

- :mod:`repro.serve.protocol` — request/response JSON schema; parsing
  ends in the cache's :func:`~repro.exec.cache.instance_digest`, so the
  wire protocol and the store share one notion of instance identity.
- :mod:`repro.serve.admission` — bounded in-flight window; overload is
  shed with 429 instead of queued into unbounded latency.
- :mod:`repro.serve.batcher` — dedupes identical in-flight requests
  onto one future and coalesces compatible misses into single
  :func:`~repro.core.suite.paper_suite_batch` pool dispatches via
  :func:`~repro.exec.runner.evaluate_suite_instances`.
- :mod:`repro.serve.app` — the :class:`ScheduleServer` HTTP front:
  warm hits answered without touching a worker, ``/stats`` and the
  Prometheus ``/metrics`` exposition as live service dashboards, a
  readiness ``/healthz``, per-request :mod:`repro.obs` spans carrying
  minted ``request_id`` correlation through the batcher into the pool
  workers.
- :mod:`repro.serve.top` — the ``repro top`` terminal dashboard that
  polls ``/stats`` and renders live QPS, hit/shed/dedupe rates and
  window latency quantiles.

Start one with ``python -m repro serve --cache-dir CACHE``; drive it
with ``tools/load_test.py`` and watch it with ``python -m repro top``.
"""

from .admission import AdmissionController
from .app import ScheduleServer
from .batcher import ScheduleBatcher
from .protocol import ProtocolError, ScheduleRequest, parse_request
from .top import fetch_stats, render_frame, run_top

__all__ = [
    "AdmissionController",
    "ScheduleServer",
    "ScheduleBatcher",
    "ProtocolError",
    "ScheduleRequest",
    "parse_request",
    "fetch_stats",
    "render_frame",
    "run_top",
]
