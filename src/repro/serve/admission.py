"""Admission control: a bounded in-flight window with load shedding.

A long-running service must refuse work it cannot finish promptly —
queueing without bound turns overload into unbounded latency for
*every* client ("Power-aware scheduling for makespan and flow" frames
exactly this latency/throughput trade-off).  The controller admits at
most ``max_pending`` requests into the parse→lookup→dispatch pipeline;
request ``max_pending + 1`` is shed immediately with a 429-style
response and a retry hint, costing the server one refused socket write
instead of a queue slot.

Purely event-loop-local state: the server handles admission on the
asyncio thread, so plain integers suffice — no locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["AdmissionController"]


@dataclass
class AdmissionController:
    """Counting semaphore with shed-instead-of-wait semantics.

    Attributes:
        max_pending: admitted-but-unanswered request ceiling.
        pending: currently admitted requests.
        admitted: total requests ever admitted.
        shed: total requests refused at the door.
        peak_pending: high-water mark of ``pending``.
    """

    max_pending: int = 64
    pending: int = field(default=0, init=False)
    admitted: int = field(default=0, init=False)
    shed: int = field(default=0, init=False)
    peak_pending: int = field(default=0, init=False)

    def try_enter(self) -> bool:
        """Admit one request, or refuse (the caller answers 429)."""
        if self.pending >= self.max_pending:
            self.shed += 1
            return False
        self.pending += 1
        self.admitted += 1
        if self.pending > self.peak_pending:
            self.peak_pending = self.pending
        return True

    def leave(self) -> None:
        """Release one admitted request's slot (response written)."""
        assert self.pending > 0, "leave() without a matching try_enter()"
        self.pending -= 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state for the ``/stats`` dashboard."""
        return {"max_pending": self.max_pending, "pending": self.pending,
                "admitted": self.admitted, "shed": self.shed,
                "peak_pending": self.peak_pending}
