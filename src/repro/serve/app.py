"""The asyncio HTTP/JSON schedule service.

A deliberately small HTTP/1.1 layer over ``asyncio.start_server`` — no
framework, no new dependencies — in front of three endpoints:

* ``POST /v1/schedule`` — parse (:mod:`protocol
  <repro.serve.protocol>`), admit (:mod:`admission
  <repro.serve.admission>`), answer warm hits straight from the
  :class:`~repro.exec.cache.ResultCache` without waking any worker,
  and hand misses to the :class:`~repro.serve.batcher.ScheduleBatcher`
  for deduped, batched dispatch.
* ``GET /stats`` — live counters, latency histograms, rolling-window
  rates/quantiles, admission and batcher state, cache size: the
  service dashboard as JSON (what ``repro top`` polls).
* ``GET /metrics`` — the same state in Prometheus text exposition
  (:func:`repro.obs.metrics.render_prometheus`): since-boot counters,
  cumulative-``le`` latency histograms, point-in-time gauges
  (in-flight requests, batcher queue depth, cache entries/bytes,
  retained spans) and sliding-window rate/quantile gauges.
* ``GET /healthz`` — readiness probe: 200 with per-check detail when
  the service can actually serve (cache directory writable, batcher
  dispatch loop alive), 503 with a reason otherwise.

Every request is minted a ``request_id`` (echoed in the response) and
leaves a ``serve.request`` span in the server's
:class:`~repro.obs.ObsLog` (appended as a closed record — the event
loop interleaves requests, so context-manager nesting would lie about
parentage), which makes a ``--profile`` trace of a serving session
readable by ``repro stats`` like any campaign profile.  The server's
log is retention-bounded (``obs_max_spans``), so a week of traffic
holds constant memory while counters, histograms and evicted-span
aggregates stay exact.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, Optional, Tuple, Union

from ..core.platform import Platform, default_platform
from ..core.results import InfeasibleScheduleError
from ..exec.runner import ExecOptions
from ..obs import ObsLog, WindowAggregator, render_prometheus
from ..obs.log import SpanRecord
from ..sched.deadlines import InfeasibleDeadlineError
from .admission import AdmissionController
from .batcher import ScheduleBatcher
from .protocol import MAX_BODY_BYTES, ProtocolError, encode_error, \
    encode_ok, parse_request

__all__ = ["ScheduleServer"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 411: "Length Required",
            413: "Payload Too Large", 422: "Unprocessable Entity",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: Infeasible instances are a client problem (the deadline cannot be
#: met at any ladder point), not a server fault.
_INFEASIBLE = (InfeasibleScheduleError, InfeasibleDeadlineError)


class _HttpError(Exception):
    """Internal short-circuit carrying a ready error response."""

    def __init__(self, status: int, kind: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.doc = encode_error(kind, detail)


class ScheduleServer:
    """One service instance: HTTP front, cache, batcher, admission.

    Args:
        cache_dir: result-cache root; ``None`` serves every request
            through the batcher (no warm hits, nothing persisted).
        cache_max_bytes: size bound for the cache — the long-running
            mode; LRU entries are evicted and orphaned temp files swept
            as traffic grows the tree past the budget.
        jobs: worker processes per dispatch (1 = compute on the
            dispatch thread, in-process).
        batch_chunk / shm: forwarded to :class:`ExecOptions` — the
            campaign engine's batching and transport knobs.
        max_batch: most instances coalesced into one dispatch.
        window_seconds: linger before dispatching, letting a burst
            coalesce.
        max_pending: admission ceiling; excess requests are shed
            with 429.
        platform: server-wide platform (default: the paper's 70 nm).
        obs: the service's recorder; when absent a retention-bounded
            one (``ObsLog(max_spans=obs_max_spans)``) is created and
            exposed as :attr:`obs` for the stats endpoint and for
            trace export on shutdown.
        obs_max_spans: span-retention bound of the auto-created log
            (ignored when ``obs`` is passed); ``None`` keeps every
            span — campaign semantics, unbounded memory.
        metrics_window_seconds: width of the sliding window behind the
            ``/metrics`` and ``/stats`` rate/quantile gauges.
    """

    def __init__(self, *, cache_dir: Optional[str] = None,
                 cache_max_bytes: Optional[int] = None,
                 jobs: int = 1, batch_chunk: int = 32, shm: bool = True,
                 max_batch: int = 32, window_seconds: float = 0.002,
                 max_pending: int = 64,
                 platform: Optional[Platform] = None,
                 obs: Optional[ObsLog] = None,
                 obs_max_spans: Optional[int] = 50_000,
                 metrics_window_seconds: float = 60.0) -> None:
        self.obs = obs if obs is not None \
            else ObsLog(max_spans=obs_max_spans)
        self.window = WindowAggregator(
            self.obs, window_seconds=metrics_window_seconds)
        self.platform = platform or default_platform()
        # live_obs records the dispatch's pool/worker spans into the
        # service log without switching the execution path the way
        # profile mode would; it also wires the cache's latency
        # histograms in via open_cache().
        self.options = ExecOptions(
            jobs=jobs, cache_dir=cache_dir,
            use_cache=cache_dir is not None, batch=True, shm=shm,
            batch_chunk=batch_chunk, cache_max_bytes=cache_max_bytes,
            live_obs=self.obs)
        self.cache = self.options.open_cache()
        self.admission = AdmissionController(max_pending=max_pending)
        self.batcher = ScheduleBatcher(
            self.options, platform=self.platform, max_batch=max_batch,
            window_seconds=window_seconds, obs=self.obs)
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._request_seq = itertools.count(1)

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 8642) -> Tuple[str, int]:
        """Bind and serve; returns the bound (host, port) — port 0 OK."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Stop accepting, fail queued flights, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        await self.batcher.stop()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                        ConnectionError):
                    break
                method, target, keep_alive, length = \
                    self._parse_head(head)
                if length > MAX_BODY_BYTES:
                    await self._respond(writer, 413, encode_error(
                        "too_large", "request body too large"))
                    break
                body = await reader.readexactly(length) if length else b""
                status, doc = await self._route(method, target, body)
                await self._respond(writer, status, doc)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown closed this connection mid-request; ending the
            # handler normally keeps the teardown quiet.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, bool, int]:
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return "GET", "/__malformed__", False, 0
        method, target, version = parts
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get(
            "connection", "keep-alive" if version == "HTTP/1.1"
            else "close").lower() != "close"
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        return method, target, keep_alive, max(0, length)

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       doc: Union[Dict[str, Any], str]) -> None:
        if isinstance(doc, str):
            # The Prometheus exposition endpoint: preformatted text.
            body = doc.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(doc).encode()
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n").encode()
        writer.write(head + b"\r\n" + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str, body: bytes
                     ) -> Tuple[int, Union[Dict[str, Any], str]]:
        # The document builders are sync on purpose (tests drive them
        # directly) but touch the cache directory, so serving them off
        # the event loop would stall every in-flight request behind a
        # slow disk: hand them to the default executor.
        loop = asyncio.get_running_loop()
        if target == "/healthz":
            ready, doc = await loop.run_in_executor(None, self.readiness)
            return (200 if ready else 503), doc
        if target == "/stats":
            return 200, await loop.run_in_executor(
                None, self.stats_document)
        if target == "/metrics":
            return 200, await loop.run_in_executor(
                None, self.metrics_document)
        if target == "/v1/schedule":
            if method != "POST":
                return 405, encode_error("method_not_allowed",
                                         "use POST /v1/schedule")
            return await self._handle_schedule(body)
        return 404, encode_error("not_found", f"no route for {target}")

    async def _handle_schedule(self, body: bytes
                               ) -> Tuple[int, Dict[str, Any]]:
        wall = time.time()
        t0 = time.perf_counter()
        rid = f"r{next(self._request_seq):08d}"
        self.obs.count("serve.requests")
        if not self.admission.try_enter():
            self.obs.count("serve.shed")
            doc = encode_error(
                "overloaded",
                f"{self.admission.pending} requests already pending; "
                f"retry shortly", request_id=rid)
            self._record_request(wall, time.perf_counter() - t0, 429,
                                 rid)
            return 429, doc
        status = 500
        try:
            status, doc = await self._schedule_admitted(body, rid)
            return status, doc
        finally:
            self.admission.leave()
            dt = time.perf_counter() - t0
            self.obs.observe("serve.request", dt)
            self._record_request(wall, dt, status, rid)

    async def _schedule_admitted(self, body: bytes, rid: str
                                 ) -> Tuple[int, Dict[str, Any]]:
        # parse_request may pull a bundled graph off disk and the warm
        # read hits the cache directory — both block, so both go
        # through the executor.
        loop = asyncio.get_running_loop()
        try:
            request = await loop.run_in_executor(
                None, parse_request, body, self.platform)
        except ProtocolError as exc:
            self.obs.count("serve.bad_requests")
            return 400, encode_error("bad_request", str(exc),
                                     request_id=rid)
        if self.cache is not None:
            payload = await loop.run_in_executor(
                None, self.cache.get, request.key)
            if payload is not None:
                # The service's whole point: a warm instance costs one
                # disk read — no dispatch, no worker, no recompute.
                self.obs.count("serve.warm_hits")
                return 200, encode_ok(request.key, payload, cached=True,
                                      request_id=rid)
        outcome, deduped = await self.batcher.submit(request, rid)
        if isinstance(outcome, BaseException):
            if isinstance(outcome, _INFEASIBLE):
                return 422, encode_error("infeasible", str(outcome),
                                         key=request.key, request_id=rid)
            return 500, encode_error("internal",
                                     f"{type(outcome).__name__}: "
                                     f"{outcome}", key=request.key,
                                     request_id=rid)
        self.obs.count("serve.computed")
        return 200, encode_ok(request.key, outcome, cached=False,
                              deduped=deduped, request_id=rid)

    # ------------------------------------------------------------------
    def _record_request(self, wall: float, duration: float,
                        status: int, rid: str) -> None:
        """Append a closed per-request span (event-loop-safe: no stack)."""
        self.obs.spans.append(SpanRecord(
            name="serve.request", category="serve", start=wall,
            duration=duration, self_time=duration,
            pid=self.obs._pid, tid=threading.get_ident(), depth=0,
            args={"status": status, "request_id": rid}))

    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        """The ``/healthz`` verdict: ``(ready, response document)``.

        Readiness means the service can actually make progress: the
        dispatch loop is alive and (when caching) the cache directory
        accepts writes.  The document always carries the per-check
        booleans and the admission gauge; when not ready it names the
        failing check so an orchestrator's 503 is actionable.
        """
        checks: Dict[str, bool] = {
            "batcher_running": self.batcher.running,
        }
        if self.cache is not None:
            checks["cache_dir_writable"] = self._cache_dir_writable()
        ready = all(checks.values())
        doc: Dict[str, Any] = {
            "ok": ready,
            "checks": checks,
            "pending": self.admission.pending,
            "max_pending": self.admission.max_pending,
        }
        if not ready:
            failing = sorted(k for k, v in checks.items() if not v)
            doc["reason"] = "failed checks: " + ", ".join(failing)
        return ready, doc

    def _cache_dir_writable(self) -> bool:
        """Probe by creating a file — ``os.access`` lies under root."""
        assert self.cache is not None
        try:
            # A fresh server's root may not exist yet; the cache would
            # create it on first put, so the probe does the same.
            self.cache.root.mkdir(parents=True, exist_ok=True)
            fd, probe = tempfile.mkstemp(prefix=".healthz-",
                                         dir=self.cache.root)
        except OSError:
            return False
        os.close(fd)
        try:
            os.unlink(probe)
        except OSError:
            pass
        return True

    def metrics_document(self) -> str:
        """The ``GET /metrics`` Prometheus text exposition."""
        self.window.sample()
        gauges: Dict[str, float] = {
            "serve.inflight_requests": self.admission.pending,
            "serve.queue_depth": self.batcher.queue_depth,
            "obs.spans_retained": len(self.obs.spans),
        }
        extra_counters: Dict[str, int] = {
            "serve.admitted": self.admission.admitted,
            "obs.evicted_spans": self.obs.evicted_spans,
        }
        if self.cache is not None:
            s = self.cache.stats
            extra_counters.update({
                "cache.hits": s.hits, "cache.misses": s.misses,
                "cache.evictions": s.evictions,
                "cache.bytes_read": s.bytes_read,
                "cache.bytes_written": s.bytes_written,
                "cache.tmp_swept": s.tmp_swept,
            })
            entries, nbytes = self.cache.usage()
            gauges["cache.entries"] = entries
            gauges["cache.bytes"] = nbytes
        return render_prometheus(self.obs, gauges=gauges,
                                 extra_counters=extra_counters,
                                 window=self.window)

    def stats_document(self) -> Dict[str, Any]:
        """The ``/stats`` payload — `repro stats` in JSON form.

        ``counters`` and ``latency`` are since-boot cumulative (the
        :class:`~repro.obs.ObsLog` contract); ``window`` is the
        sliding-window view over the same state.
        """
        self.window.sample()
        cache_doc: Dict[str, Any] = {"enabled": self.cache is not None}
        if self.cache is not None:
            s = self.cache.stats
            cache_doc.update(
                hits=s.hits, misses=s.misses, bytes_read=s.bytes_read,
                bytes_written=s.bytes_written, evictions=s.evictions,
                tmp_swept=s.tmp_swept, max_bytes=self.cache.max_bytes,
                bytes=self.cache.total_bytes())
        return {
            "counters": dict(self.obs.counters),
            "latency": {
                name: {"count": h.count, "total_seconds": h.total,
                       "mean_seconds": h.mean,
                       "min_seconds": h.min if h.count else None,
                       "max_seconds": h.max}
                for name, h in sorted(self.obs.histograms.items())},
            "window": self.window.document(),
            "admission": self.admission.snapshot(),
            "batcher": self.batcher.stats.snapshot(),
            "obs": {
                "spans_retained": len(self.obs.spans),
                "max_spans": self.obs.max_spans,
                "evicted_spans": self.obs.evicted_spans,
            },
            "cache": cache_doc,
        }
