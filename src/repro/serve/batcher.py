"""In-flight dedupe and batched dispatch of schedule requests.

The service's compute engine.  Two mechanisms, both keyed by the
content-addressed instance digest:

* **Dedupe** — identical requests arriving while one is queued or in
  flight all await the *same* future; the instance is computed once and
  every waiter gets the one payload.  A flight stays registered until
  its future resolves, so a request arriving mid-computation still
  coalesces.
* **Batching** — queued misses are collected for a short linger window
  (``window_seconds``) and dispatched *together* as one
  :func:`repro.exec.runner.evaluate_suite_instances` call, which chunks
  them through :func:`repro.core.suite.paper_suite_batch` broadcast
  sweeps and (with ``jobs > 1``) the shared-memory pool fan-out — the
  PR-6 campaign engine, now fed by live traffic.  Only requests with
  the same policy share a dispatch (the platform is server-wide);
  mixed-policy bursts dispatch in arrival-order groups.

Dispatches run on a dedicated single worker thread, so the event loop
keeps accepting (and warm-serving) requests while a batch computes.
Cache writes happen inside ``evaluate_suite_instances`` exactly as in a
campaign run, so a served cold request warms both this process and any
concurrent campaign sharing the cache directory.

A per-instance failure (e.g. an infeasible deadline) must not poison
co-batched requests: the batch is retried without the attributed
offender — each retry removes one instance, so the loop is bounded —
and the failing request alone resolves to its exception.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.platform import Platform, default_platform
from ..exec.cache import summarize_results
from ..exec.runner import ExecOptions, evaluate_suite_instances
from ..obs import ObsLog, live
from .protocol import ScheduleRequest

__all__ = ["ScheduleBatcher"]

#: What a flight resolves to: the summaries payload, or the exception
#: that instance raised (kept as a value so abandoned futures never
#: warn about unretrieved exceptions).
FlightResult = Union[List[dict], BaseException]


@dataclass
class _Flight:
    """One unique in-flight instance and everyone waiting on it."""

    request: ScheduleRequest
    future: "asyncio.Future[FlightResult]"
    waiters: int = 1
    #: Correlation ids of every HTTP request riding this flight — the
    #: submitter's plus each deduped joiner's, in arrival order.  They
    #: travel into the dispatch as span attributes so the trace shows
    #: which requests a chunk served, dedupe included.
    request_ids: List[str] = field(default_factory=list)


@dataclass
class BatcherStats:
    """Dispatch counters for the ``/stats`` dashboard."""

    dispatches: int = 0
    empty_dispatches: int = 0
    dispatched_instances: int = 0
    deduped: int = 0
    failed_instances: int = 0
    max_batch_seen: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


class ScheduleBatcher:
    """Dedupe + linger-batch + dispatch, owned by the event loop."""

    def __init__(self, options: ExecOptions, *,
                 platform: Optional[Platform] = None,
                 max_batch: int = 32,
                 window_seconds: float = 0.002,
                 obs: Optional[ObsLog] = None) -> None:
        self.options = options
        self.platform = platform or default_platform()
        self.max_batch = max(1, max_batch)
        self.window_seconds = window_seconds
        self.obs = obs
        self.stats = BatcherStats()
        self._flights: Dict[str, _Flight] = {}
        self._queue: List[str] = []
        self._wake = asyncio.Event()
        self._task: Optional["asyncio.Task[None]"] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-dispatch")

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the dispatch loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop())

    async def stop(self) -> None:
        """Stop dispatching; fail whatever is still queued."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        shutdown = RuntimeError("server shutting down")
        for flight in self._flights.values():
            if not flight.future.done():
                flight.future.set_result(shutdown)
        self._flights.clear()
        self._queue.clear()
        # shutdown(wait=True) joins the dispatch thread — that wait
        # belongs on the default executor, not the event loop.
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown)

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the dispatch loop task is alive (readiness)."""
        return self._task is not None and not self._task.done()

    @property
    def queue_depth(self) -> int:
        """Flights queued but not yet taken into a dispatch (gauge)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    async def submit(self, request: ScheduleRequest,
                     request_id: Optional[str] = None
                     ) -> "tuple[FlightResult, bool]":
        """Resolve one cache-missed request; returns (result, deduped).

        The first request for a key registers a flight and queues it;
        identical requests while that flight is open piggyback on its
        future.  The caller inspects the result: a payload list on
        success, the instance's exception otherwise.  ``request_id``
        (when given) is recorded on the flight for trace correlation —
        every rider's id reaches the dispatch spans, not just the
        opener's.
        """
        flight = self._flights.get(request.key)
        if flight is not None:
            flight.waiters += 1
            if request_id is not None:
                flight.request_ids.append(request_id)
            self.stats.deduped += 1
            live(self.obs).count("serve.deduped")
            return await asyncio.shield(flight.future), True
        loop = asyncio.get_running_loop()
        flight = _Flight(request=request, future=loop.create_future(),
                         request_ids=[request_id]
                         if request_id is not None else [])
        self._flights[request.key] = flight
        self._queue.append(request.key)
        self._wake.set()
        return await asyncio.shield(flight.future), False

    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            if self.window_seconds > 0:
                # Linger: let a concurrent burst coalesce into one
                # batched dispatch instead of N single-instance ones.
                await asyncio.sleep(self.window_seconds)
            batch = self._take_batch()
            if not batch:
                if not self._queue:
                    self._wake.clear()
                continue
            if not self._queue:
                self._wake.clear()
            await self._dispatch(batch)

    def _take_batch(self) -> List[_Flight]:
        """Up to ``max_batch`` queued flights sharing the head's policy."""
        if not self._queue:
            return []
        policy = self._flights[self._queue[0]].request.policy
        batch: List[_Flight] = []
        rest: List[str] = []
        for key in self._queue:
            flight = self._flights[key]
            if (len(batch) < self.max_batch
                    and flight.request.policy == policy):
                batch.append(flight)
            else:
                rest.append(key)
        self._queue = rest
        return batch

    async def _dispatch(self, batch: List[_Flight]) -> None:
        o = live(self.obs)
        self.stats.dispatches += 1
        self.stats.dispatched_instances += len(batch)
        self.stats.max_batch_seen = max(self.stats.max_batch_seen,
                                        len(batch))
        o.count("serve.dispatches")
        o.count("serve.dispatched_instances", len(batch))
        requests = [f.request for f in batch]
        # Snapshot correlation ids on the event loop before handing off:
        # joiners that dedupe onto a flight *after* this point get the
        # payload but arrived too late to be part of this dispatch.
        request_ids = [list(f.request_ids) for f in batch]
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                self._executor, self._compute, requests, request_ids)
        except BaseException as exc:  # defensive: _compute never raises
            outcomes = [exc] * len(batch)
        for flight, outcome in zip(batch, outcomes):
            if isinstance(outcome, BaseException):
                self.stats.failed_instances += 1
                o.count("serve.failed_instances")
            self._flights.pop(flight.request.key, None)
            if not flight.future.done():
                flight.future.set_result(outcome)

    # ------------------------------------------------------------------
    def _compute(self, requests: List[ScheduleRequest],
                 request_ids: Optional[List[List[str]]] = None
                 ) -> List[FlightResult]:
        """Worker-thread body: one batched campaign over the requests.

        Failures are attributed per instance and retried without the
        offender, so one infeasible request cannot fail its batch —
        and each retry re-sends the *surviving* requests' correlation
        ids, so attribution follows the instances, not the batch.
        """
        o = live(self.obs)
        outcomes: List[Optional[FlightResult]] = [None] * len(requests)
        todo = list(range(len(requests)))
        policy = requests[0].policy
        if request_ids is None:
            request_ids = [[] for _ in requests]
        all_ids = [rid for ids in request_ids for rid in ids]
        t0 = time.perf_counter()
        with o.span("serve.dispatch", category="serve",
                    instances=len(requests), policy=policy,
                    request_ids=all_ids):
            while todo:
                instances = [(requests[i].graph,
                              requests[i].deadline_cycles) for i in todo]
                try:
                    results = evaluate_suite_instances(
                        instances, platform=self.platform, policy=policy,
                        options=self.options,
                        request_ids=[request_ids[i] for i in todo])
                except Exception as exc:
                    idx = getattr(exc, "instance_index", None)
                    if idx is None or not 0 <= idx < len(todo):
                        for i in todo:
                            outcomes[i] = exc
                        break
                    outcomes[todo.pop(idx)] = exc
                    o.count("serve.batch_retries")
                    continue
                for i, res in zip(todo, results):
                    # Round-trips exactly: summaries are what the cache
                    # stored and what restore_results rebuilt.
                    outcomes[i] = summarize_results(res)
                break
        o.observe("serve.dispatch_seconds", time.perf_counter() - t0)
        fresh = self.options.instance_seconds
        if fresh:
            o.count("serve.fresh_instances", len(fresh))
            for seconds in fresh:
                o.observe("serve.instance_seconds", seconds)
            fresh.clear()
        assert all(out is not None for out in outcomes)
        return outcomes  # type: ignore[return-value]
