"""Wire protocol of the schedule service: JSON in, JSON out.

One request names one *instance* — exactly the tuple the exec cache is
keyed by: a task graph, a deadline, a priority policy (the platform is
server-wide).  Parsing therefore ends in
:func:`repro.exec.cache.instance_digest`, so the service's dedupe map,
its warm-hit lookups and the on-disk cache all agree on identity by
construction.

Request body (``POST /v1/schedule``)::

    {
      "graph": {"bundled": "fft"}                    // a bundled graph
             | {"name": "g1",                        // or an explicit one
                "weights": [3.1e6, 6.2e6, ...],      //   cycles, node i
                "edges": [[0, 1], [0, 2], ...]},     //   dense indices
      "deadline_cycles": 2.48e7,                     // absolute, or:
      "deadline_factor": 2.0,                        //   x critical path
      "policy": "edf",                               // optional
      "scale": 3.1e6                                 // bundled graphs only
    }

Success response::

    {"key": "<sha256>", "cached": true|false, "deduped": true|false,
     "request_id": "r00000042",       // server-minted correlation id
     "results": [<summary>, ...]}     // one per heuristic, paper order

The ``request_id`` is minted by the server per HTTP request and echoed
on every response (success or error); the same id appears as a span
attribute throughout the service's trace — on the ``serve.request``
span, the batch dispatch that served it, and the worker-side
``exec.chunk``/``exec.instance`` spans — so a Perfetto timeline
correlates wire traffic with pool work.

``results`` carries the exact :func:`repro.exec.cache.summarize_results`
payload — the same JSON the cache stores, so a served answer and a
campaign's cache entry are interchangeable.  Errors are
``{"error": <kind>, "detail": <message>}`` with an HTTP status: 400 for
a malformed request, 429 when admission control sheds, 422 when the
instance itself is infeasible, 500 for anything unexpected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.platform import Platform
from ..exec.cache import instance_digest
from ..graphs.analysis import critical_path_length
from ..graphs.dag import TaskGraph
from ..graphs.datasets import bundled_names, load_bundled
from ..sched.priorities import PRIORITY_POLICIES

__all__ = ["ProtocolError", "ScheduleRequest", "parse_request",
           "encode_ok", "encode_error", "MAX_BODY_BYTES", "MAX_TASKS"]

#: Largest accepted request body; a graph of MAX_TASKS nodes fits well
#: under this with room for edges.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Largest accepted explicit graph — an abuse guard, not a model limit.
MAX_TASKS = 20_000


class ProtocolError(ValueError):
    """A malformed or out-of-contract request (HTTP 400)."""


@dataclass(frozen=True)
class ScheduleRequest:
    """One parsed, cache-addressable schedule request.

    Attributes:
        graph: the (scenario-scaled) task graph.
        deadline_cycles: absolute deadline in cycles.
        policy: named list-scheduling priority policy.
        key: content-addressed cache key of the instance.
    """

    graph: TaskGraph
    deadline_cycles: float
    policy: str
    key: str


def _require(cond: bool, detail: str) -> None:
    if not cond:
        raise ProtocolError(detail)


def _build_graph(spec: Any) -> TaskGraph:
    _require(isinstance(spec, dict), "'graph' must be an object")
    if "bundled" in spec:
        name = spec["bundled"]
        _require(isinstance(name, str), "'graph.bundled' must be a string")
        _require(name in bundled_names(),
                 f"unknown bundled graph {name!r}")
        graph = load_bundled(name)
        scale = spec.get("scale", 1.0)
        _require(isinstance(scale, (int, float)) and scale > 0,
                 "'graph.scale' must be a positive number")
        return graph.scaled(float(scale)) if scale != 1.0 else graph
    _require("weights" in spec,
             "'graph' needs either 'bundled' or 'weights'")
    weights = spec["weights"]
    _require(isinstance(weights, list) and weights,
             "'graph.weights' must be a non-empty list")
    _require(len(weights) <= MAX_TASKS,
             f"graph exceeds the {MAX_TASKS}-task service limit")
    _require(all(isinstance(w, (int, float)) and w >= 0 for w in weights),
             "'graph.weights' must be non-negative numbers")
    edges = spec.get("edges", [])
    _require(isinstance(edges, list), "'graph.edges' must be a list")
    n = len(weights)
    pairs = []
    for e in edges:
        _require(isinstance(e, (list, tuple)) and len(e) == 2,
                 "each edge must be a [u, v] pair")
        u, v = e
        _require(isinstance(u, int) and isinstance(v, int)
                 and 0 <= u < n and 0 <= v < n,
                 f"edge {e!r} references an unknown node")
        pairs.append((u, v))
    name = spec.get("name", "request")
    _require(isinstance(name, str), "'graph.name' must be a string")
    try:
        return TaskGraph({i: float(w) for i, w in enumerate(weights)},
                         pairs, name=name)
    except ValueError as exc:  # cycles, all-zero weights, ...
        raise ProtocolError(f"invalid graph: {exc}") from None


def parse_request(body: bytes, platform: Platform) -> ScheduleRequest:
    """Parse and validate one request body into a keyed instance.

    Raises:
        ProtocolError: on any malformed field — the server answers 400
            with the error's message; nothing is computed or cached.
    """
    _require(len(body) <= MAX_BODY_BYTES, "request body too large")
    try:
        doc = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    _require(isinstance(doc, dict), "request must be a JSON object")
    _require("graph" in doc, "missing 'graph'")
    graph = _build_graph(doc["graph"])

    deadline = doc.get("deadline_cycles")
    factor = doc.get("deadline_factor")
    _require((deadline is None) != (factor is None),
             "exactly one of 'deadline_cycles'/'deadline_factor' "
             "is required")
    if deadline is None:
        _require(isinstance(factor, (int, float)) and factor > 0,
                 "'deadline_factor' must be a positive number")
        deadline = float(factor) * critical_path_length(graph)
    _require(isinstance(deadline, (int, float)) and deadline > 0,
             "'deadline_cycles' must be a positive number")

    policy = doc.get("policy", "edf")
    _require(isinstance(policy, str) and policy in PRIORITY_POLICIES,
             f"unknown policy {policy!r}; "
             f"one of {sorted(PRIORITY_POLICIES)}")

    key = instance_digest(graph, float(deadline), platform, policy)
    return ScheduleRequest(graph=graph, deadline_cycles=float(deadline),
                           policy=policy, key=key)


def encode_ok(key: str, results: List[dict], *, cached: bool,
              deduped: bool = False,
              request_id: Optional[str] = None) -> Dict[str, Any]:
    """The success response document."""
    doc: Dict[str, Any] = {"key": key, "cached": cached,
                           "deduped": deduped, "results": results}
    if request_id is not None:
        doc["request_id"] = request_id
    return doc


def encode_error(kind: str, detail: str,
                 key: Optional[str] = None,
                 request_id: Optional[str] = None) -> Dict[str, Any]:
    """The error response document."""
    doc: Dict[str, Any] = {"error": kind, "detail": detail}
    if key is not None:
        doc["key"] = key
    if request_id is not None:
        doc["request_id"] = request_id
    return doc
