"""``repro top`` — a live terminal dashboard over the serve endpoints.

Polls ``GET /stats`` (the JSON twin of ``/metrics``) at a fixed
interval and renders one compact ANSI frame per poll: request rate,
warm-hit/dedupe/shed percentages, sliding-window latency quantiles,
batcher and admission state, cache size and span-retention health.
Stdlib only (``urllib``), so it runs anywhere the repo does, against
any reachable server.

The renderer is a pure function (:func:`render_frame`) of the fetched
document plus the previous poll — client-side counter deltas back up
the server's window rates when the window has not accumulated two
samples yet — which is what the tests drive, no socket needed.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["fetch_stats", "render_frame", "run_top"]

#: ANSI: clear screen, cursor home — the whole "TUI".
_CLEAR = "\x1b[2J\x1b[H"


def fetch_stats(url: str, *, timeout: float = 5.0) -> Dict[str, Any]:
    """GET ``<url>/stats`` and decode the JSON document.

    ``url`` is the server base (``http://127.0.0.1:8642``); a trailing
    slash or an explicit ``/stats`` suffix both work.
    """
    base = url.rstrip("/")
    if not base.endswith("/stats"):
        base += "/stats"
    with urllib.request.urlopen(base, timeout=timeout) as response:
        return json.loads(response.read().decode())


def _rate(doc: Dict[str, Any], prev: Optional[Dict[str, Any]],
          elapsed: Optional[float], counter: str) -> float:
    """Best-effort per-second rate of one counter.

    Prefers the server's sliding-window rate; falls back to the
    client-side delta between two polls (useful in the first window
    seconds of a fresh server).
    """
    window = doc.get("window", {})
    rate = window.get("rates_per_second", {}).get(counter)
    if rate is not None and window.get("elapsed_seconds", 0) > 0:
        return float(rate)
    if prev is not None and elapsed and elapsed > 0:
        now = doc.get("counters", {}).get(counter, 0)
        before = prev.get("counters", {}).get(counter, 0)
        return max(0, now - before) / elapsed
    return 0.0


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    —"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable


def render_frame(doc: Dict[str, Any],
                 prev: Optional[Dict[str, Any]] = None,
                 elapsed: Optional[float] = None,
                 *, source: str = "") -> str:
    """One dashboard frame (multi-line string) from a ``/stats`` doc."""
    counters = doc.get("counters", {})
    window = doc.get("window", {})
    latency = window.get("latency", {})
    admission = doc.get("admission", {})
    batcher = doc.get("batcher", {})
    cache = doc.get("cache", {})
    obs = doc.get("obs", {})

    requests = counters.get("serve.requests", 0)
    warm = counters.get("serve.warm_hits", 0)
    deduped = counters.get("serve.deduped", 0)
    shed = counters.get("serve.shed", 0)
    computed = counters.get("serve.computed", 0)

    lines: List[str] = []
    title = "repro top"
    if source:
        title += f" — {source}"
    lines.append(title)
    lines.append("=" * max(40, len(title)))

    qps = _rate(doc, prev, elapsed, "serve.requests")
    lines.append(f"requests   {requests:>10d} total   "
                 f"{qps:8.1f} req/s")
    lines.append(f"  warm hits {_pct(warm, requests)}   "
                 f"deduped {_pct(deduped, requests)}   "
                 f"shed {_pct(shed, requests)}   "
                 f"computed {computed}")

    req_window = latency.get("serve.request", {})
    if req_window:
        lines.append(
            f"latency    p50 {1e3 * req_window.get('p50_seconds', 0):8.2f} ms"
            f"   p90 {1e3 * req_window.get('p90_seconds', 0):8.2f} ms"
            f"   p99 {1e3 * req_window.get('p99_seconds', 0):8.2f} ms"
            f"   (window {window.get('window_seconds', 0):.0f}s)")

    span = window.get("elapsed_seconds", 0.0)
    busy = latency.get("serve.dispatch_seconds", {}).get(
        "total_seconds", 0.0)
    if span:
        # Fraction of the window the dispatch thread spent computing —
        # the service's single-worker occupancy.
        lines.append(f"occupancy  {_pct(min(busy, span), span)} "
                     f"dispatch-thread busy over the window")

    lines.append(
        f"admission  {admission.get('pending', 0)}/"
        f"{admission.get('max_pending', 0)} pending   "
        f"peak {admission.get('peak_pending', 0)}   "
        f"shed {admission.get('shed', 0)}")
    lines.append(
        f"batcher    {batcher.get('dispatches', 0)} dispatches   "
        f"max batch {batcher.get('max_batch_seen', 0)}   "
        f"failed {batcher.get('failed_instances', 0)}")
    if cache.get("enabled"):
        lines.append(
            f"cache      {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses   "
            f"{_fmt_bytes(cache.get('bytes', 0))}   "
            f"evictions {cache.get('evictions', 0)}")
    if obs:
        bound = obs.get("max_spans")
        lines.append(
            f"obs        {obs.get('spans_retained', 0)} spans retained"
            f" (bound {bound if bound is not None else '∞'})   "
            f"{obs.get('evicted_spans', 0)} evicted")
    return "\n".join(lines)


def run_top(url: str, *, interval_seconds: float = 2.0,
            iterations: Optional[int] = None,
            out: Optional[TextIO] = None) -> int:
    """Poll ``url`` and redraw until interrupted (or ``iterations``).

    Returns a process exit code: 0 on a clean exit (including Ctrl-C),
    1 when the very first poll fails (server unreachable).
    """
    out = out if out is not None else sys.stdout
    clear = _CLEAR if out.isatty() else ""
    prev: Optional[Dict[str, Any]] = None
    prev_t: Optional[float] = None
    polled = 0
    while iterations is None or polled < iterations:
        try:
            doc = fetch_stats(url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if prev is None:
                print(f"repro top: cannot reach {url}: {exc}",
                      file=sys.stderr)
                return 1
            doc = prev  # transient blip: keep the last good frame
        now = time.monotonic()
        elapsed = now - prev_t if prev_t is not None else None
        frame = render_frame(doc, prev, elapsed, source=url)
        print(f"{clear}{frame}", file=out, flush=True)
        prev, prev_t = doc, now
        polled += 1
        if iterations is not None and polled >= iterations:
            break
        try:
            time.sleep(interval_seconds)
        except KeyboardInterrupt:
            break
    return 0
