"""Trace-level simulation substrate: processor power-state machines,
power traces, and the execution engine that cross-validates the
analytic energy accounting.
"""

from .engine import execute
from .render import render_trace
from .states import DEFAULT_TRANSITIONS, ProcState, TransitionModel
from .trace import PowerTrace, TraceSegment

__all__ = [
    "execute",
    "render_trace",
    "PowerTrace",
    "TraceSegment",
    "ProcState",
    "TransitionModel",
    "DEFAULT_TRANSITIONS",
]
