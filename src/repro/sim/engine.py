"""Trace-level execution of a schedule at one operating point.

:func:`execute` turns a cycle-level schedule plus an operating point
into a full :class:`~repro.sim.trace.PowerTrace`: RUN segments for
tasks, IDLE segments for short gaps, and TRANS_DOWN/SLEEP/TRANS_UP
triples for gaps worth sleeping through, with the wake initiated early
enough to hide the resume latency (Section 3.4).

With zero transition latencies the integrated trace energy equals the
analytic accounting of :func:`repro.core.energy.schedule_energy`
exactly — the cross-validation the test suite enforces.  With real
latencies the sleepable span of each gap shrinks and very short gaps
become unsleepable even when the lumped arithmetic said otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.platform import Platform, default_platform
from ..power.dvs import OperatingPoint
from ..sched.schedule import Schedule
from .states import DEFAULT_TRANSITIONS, ProcState, TransitionModel
from .trace import PowerTrace, TraceSegment

__all__ = ["execute"]


def _gap_segments(proc: int, a: float, b: float, point: OperatingPoint,
                  platform: Platform, shutdown: bool,
                  trans: TransitionModel) -> List[TraceSegment]:
    """Segments covering an idle gap ``[a, b]`` of one processor."""
    duration = b - a
    segs: List[TraceSegment] = []
    sleepable = (shutdown
                 and duration >= trans.total_latency
                 and _sleep_saves(duration, point, platform, trans))
    if not sleepable:
        segs.append(TraceSegment(proc, a, b, ProcState.IDLE,
                                 duration * point.idle_power))
        return segs
    t_down_end = a + trans.down_latency
    t_up_start = b - trans.up_latency
    segs.append(TraceSegment(proc, a, t_down_end, ProcState.TRANS_DOWN,
                             trans.energy / 2))
    segs.append(TraceSegment(
        proc, t_down_end, t_up_start, ProcState.SLEEP,
        (t_up_start - t_down_end) * platform.sleep.sleep_power))
    segs.append(TraceSegment(proc, t_up_start, b, ProcState.TRANS_UP,
                             trans.energy / 2))
    return segs


def _sleep_saves(duration: float, point: OperatingPoint,
                 platform: Platform, trans: TransitionModel) -> bool:
    """Sleeping vs idling for a gap, with the latency-trimmed span."""
    sleep_span = duration - trans.total_latency
    e_sleep = trans.energy + sleep_span * platform.sleep.sleep_power
    return e_sleep < duration * point.idle_power


def execute(schedule: Schedule, point: OperatingPoint,
            deadline_seconds: float, *,
            platform: Optional[Platform] = None,
            shutdown: bool = True,
            transitions: TransitionModel = DEFAULT_TRANSITIONS
            ) -> PowerTrace:
    """Produce the power trace of running ``schedule`` at ``point``.

    Args:
        schedule: cycle-level schedule.
        point: common operating point of all active processors.
        deadline_seconds: the on-window; the trace spans ``[0, D]``.
        platform: sleep parameters and power model; defaults to the
            paper's.
        shutdown: allow deep sleep during beneficial gaps.
        transitions: sleep transition latencies and lumped energy.

    Raises:
        ValueError: if the schedule does not fit the window at this
            operating point.
    """
    platform = platform or default_platform()
    f = point.frequency
    if schedule.makespan / f > deadline_seconds * (1.0 + 1e-9):
        raise ValueError(
            f"schedule needs {schedule.makespan / f:g} s, window is "
            f"{deadline_seconds:g} s")

    ids = schedule.graph.node_ids
    all_starts = schedule.start_times
    all_finishes = schedule.finish_times
    segments: List[TraceSegment] = []
    for proc in schedule.employed_processor_ids:
        row = schedule.tasks_on(proc)
        row_starts = all_starts[row].tolist()
        row_finishes = all_finishes[row].tolist()
        t = 0.0
        for i, start, finish in zip(row.tolist(), row_starts, row_finishes):
            start_s = start / f
            finish_s = finish / f
            if start_s > t + 1e-15:
                segments.extend(_gap_segments(
                    proc, t, start_s, point, platform, shutdown,
                    transitions))
            cycles = finish - start
            segments.append(TraceSegment(
                proc, start_s, finish_s, ProcState.RUN,
                cycles * point.energy_per_cycle, task=ids[i]))
            t = finish_s
        if deadline_seconds > t + 1e-15:
            segments.extend(_gap_segments(
                proc, t, deadline_seconds, point, platform, shutdown,
                transitions))
    return PowerTrace(segments, deadline_seconds)
