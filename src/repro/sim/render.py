"""ASCII rendering of power traces.

One row per processor; each column is a time slice whose character is
the dominant power state: ``#`` running, ``.`` idle, ``v``/``^`` the
sleep transitions, ``z`` deep sleep, blank off.  Makes shutdown
behaviour visible in a terminal next to the Gantt chart.
"""

from __future__ import annotations

from .states import ProcState
from .trace import PowerTrace

__all__ = ["render_trace"]

_GLYPH = {
    ProcState.RUN: "#",
    ProcState.IDLE: ".",
    ProcState.TRANS_DOWN: "v",
    ProcState.SLEEP: "z",
    ProcState.TRANS_UP: "^",
    ProcState.OFF: " ",
}


def render_trace(trace: PowerTrace, *, width: int = 72) -> str:
    """Render ``trace`` as one ASCII row per employed processor."""
    if width < 8:
        raise ValueError("width must be >= 8")
    dt = trace.horizon / width
    lines = []
    for proc in trace.processors:
        row = []
        segs = trace.segments(proc)
        for col in range(width):
            t0, t1 = col * dt, (col + 1) * dt
            # Dominant state in the slice by overlap duration.
            best_state, best_overlap = ProcState.OFF, 0.0
            for seg in segs:
                overlap = min(seg.end, t1) - max(seg.start, t0)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_state = seg.state
            row.append(_GLYPH[best_state])
        lines.append(f"P{proc}: " + "".join(row))
    lines.append(f"     0{' ' * (width - 12)}t = {trace.horizon:.4g} s")
    lines.append("     # run   . idle   v shutdown   z sleep   ^ wake")
    return "\n".join(lines)
