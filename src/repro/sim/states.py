"""Processor power states and transition model for the trace simulator.

The analytic energy accounting (``repro.core.energy``) treats a
shutdown as an instantaneous event with a lumped 483 µJ cost.  The
trace simulator refines this: a processor is a small state machine

::

    RUN <-> IDLE -> TRANS_DOWN -> SLEEP -> TRANS_UP -> IDLE/RUN

with configurable transition latencies.  The paper notes the wake-up
delay "can be hidden by waking up the processor a short time before the
end of the idle period" — the planner does exactly that, initiating the
wake so the processor is hot when its next task starts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ProcState", "TransitionModel", "DEFAULT_TRANSITIONS"]


class ProcState(enum.Enum):
    """Power state of one processor at one instant."""

    RUN = "run"                #: executing a task
    IDLE = "idle"              #: on, clock gated (P_DC + P_on)
    TRANS_DOWN = "trans_down"  #: saving state / ramping supplies down
    SLEEP = "sleep"            #: deep sleep (50 µW)
    TRANS_UP = "trans_up"      #: restoring state / warming caches
    OFF = "off"                #: never employed in this schedule


@dataclass(frozen=True, slots=True)
class TransitionModel:
    """Latency/energy model of the sleep transitions.

    The lumped shutdown+wake energy (the paper's 483 µJ) is split
    evenly across the two transition segments.  Latencies default to
    zero, which makes the trace energy *exactly* equal to the analytic
    accounting — the cross-validation anchor; realistic sub-millisecond
    latencies shave the sleepable span of each gap.

    Attributes:
        down_latency: seconds to enter deep sleep.
        up_latency: seconds to resume (cache/predictor warm-up).
        energy: total energy of one down+up pair (J).
    """

    down_latency: float = 0.0
    up_latency: float = 0.0
    energy: float = 483e-6

    def __post_init__(self) -> None:
        if self.down_latency < 0 or self.up_latency < 0:
            raise ValueError("transition latencies must be >= 0")
        if self.energy < 0:
            raise ValueError("transition energy must be >= 0")

    @property
    def total_latency(self) -> float:
        """Minimum gap duration that physically fits a sleep episode."""
        return self.down_latency + self.up_latency


#: Instantaneous transitions with the paper's 483 µJ lumped cost.
DEFAULT_TRANSITIONS = TransitionModel()
