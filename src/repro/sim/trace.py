"""Power traces: the trace simulator's output.

A :class:`PowerTrace` is a per-processor sequence of contiguous
:class:`TraceSegment` s covering ``[0, horizon]``, each with a state and
an energy.  Traces support integration (total and by state), occupancy
statistics, and structural validation — the properties the test suite
checks against the analytic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .states import ProcState

__all__ = ["TraceSegment", "PowerTrace"]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class TraceSegment:
    """One contiguous interval of one processor in one power state.

    Attributes:
        processor: processor id.
        start, end: interval bounds (seconds).
        state: the power state.
        energy: energy dissipated over the interval (J).  For
            zero-length transition segments this is the impulse cost.
        task: the task id for RUN segments.
    """

    processor: int
    start: float
    end: float
    state: ProcState
    energy: float
    task: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if self.end < self.start - _EPS:
            raise ValueError(
                f"segment ends ({self.end:g}) before it starts "
                f"({self.start:g})")
        if self.energy < -_EPS:
            raise ValueError("segment energy must be >= 0")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def mean_power(self) -> float:
        """Average power over the segment (inf for impulses)."""
        if self.duration <= 0:
            return float("inf") if self.energy > 0 else 0.0
        return self.energy / self.duration


class PowerTrace:
    """A complete execution trace of a multiprocessor schedule."""

    def __init__(self, segments: Sequence[TraceSegment],
                 horizon: float) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = float(horizon)
        by_proc: Dict[int, List[TraceSegment]] = {}
        for seg in segments:
            by_proc.setdefault(seg.processor, []).append(seg)
        for segs in by_proc.values():
            segs.sort(key=lambda s: (s.start, s.end))
        self._by_proc: Dict[int, Tuple[TraceSegment, ...]] = {
            p: tuple(v) for p, v in by_proc.items()}

    # ------------------------------------------------------------------
    @property
    def processors(self) -> Tuple[int, ...]:
        """Ids of processors with at least one segment."""
        return tuple(sorted(self._by_proc))

    def segments(self, proc: int) -> Tuple[TraceSegment, ...]:
        """The time-ordered segments of ``proc``."""
        return self._by_proc.get(proc, ())

    def energy(self) -> float:
        """Total energy over all processors (J)."""
        return sum(seg.energy for segs in self._by_proc.values()
                   for seg in segs)

    def energy_by_state(self) -> Dict[ProcState, float]:
        """Energy split by power state (J)."""
        out: Dict[ProcState, float] = {}
        for segs in self._by_proc.values():
            for seg in segs:
                out[seg.state] = out.get(seg.state, 0.0) + seg.energy
        return out

    def time_in_state(self, proc: int, state: ProcState) -> float:
        """Total seconds ``proc`` spends in ``state``."""
        return sum(s.duration for s in self.segments(proc)
                   if s.state is state)

    def utilization(self, proc: int) -> float:
        """Fraction of the horizon ``proc`` spends running."""
        return self.time_in_state(proc, ProcState.RUN) / self.horizon

    def state_at(self, proc: int, t: float) -> ProcState:
        """The state of ``proc`` at time ``t`` (OFF if unemployed)."""
        if not 0 <= t <= self.horizon + _EPS:
            raise ValueError(f"time {t:g} outside [0, {self.horizon:g}]")
        for seg in self.segments(proc):
            if seg.start - _EPS <= t < seg.end - _EPS or \
                    (t >= seg.start and seg.end >= self.horizon - _EPS
                     and t <= seg.end + _EPS):
                if seg.duration > 0:
                    return seg.state
        return ProcState.OFF

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants.

        Every employed processor's segments must tile ``[0, horizon]``
        contiguously without overlap (zero-length impulse segments are
        allowed at any boundary).

        Raises:
            AssertionError: naming the first violation.
        """
        for proc, segs in self._by_proc.items():
            timed = [s for s in segs if s.duration > 0]
            if not timed:
                raise AssertionError(
                    f"processor {proc} has only impulse segments")
            if abs(timed[0].start) > _EPS:
                raise AssertionError(
                    f"processor {proc} starts at {timed[0].start:g}, "
                    f"not 0")
            for a, b in zip(timed, timed[1:]):
                if abs(a.end - b.start) > _EPS * max(1.0, self.horizon):
                    raise AssertionError(
                        f"processor {proc}: gap/overlap between "
                        f"{a.state.value} ending {a.end:g} and "
                        f"{b.state.value} starting {b.start:g}")
            if abs(timed[-1].end - self.horizon) > \
                    _EPS * max(1.0, self.horizon):
                raise AssertionError(
                    f"processor {proc} ends at {timed[-1].end:g}, "
                    f"horizon is {self.horizon:g}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = sum(len(s) for s in self._by_proc.values())
        return (f"PowerTrace({len(self._by_proc)} processors, "
                f"{n} segments, E={self.energy():.4g} J)")
