"""Shared utilities: report rendering and unit formatting."""

from .tables import format_percent, format_si, render_series, render_table

__all__ = ["render_table", "render_series", "format_si", "format_percent"]
