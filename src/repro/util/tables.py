"""Plain-text table and series rendering for experiment reports.

The harness reproduces the paper's tables and figures as text: tables as
aligned columns, figure series as ``x<TAB>y...`` blocks that can be
dropped into any plotting tool.  No plotting dependency is required.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "render_series", "render_scatter",
           "format_si", "format_percent"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: str = "") -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with 4 significant digits; everything else via
    ``str``.
    """
    def cell(x: object) -> str:
        if isinstance(x, float):
            return f"{x:.4g}"
        return str(x)

    str_rows: List[List[str]] = [[cell(x) for x in row] for row in rows]
    cols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != cols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {cols}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, s in enumerate(row):
            widths[j] = max(widths[j], len(s))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(s.rjust(w) for s, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(x_label: str, x_values: Sequence[float],
                  series: "dict[str, Sequence[float]]",
                  *, title: str = "") -> str:
    """Render one or more y-series over a shared x-axis as a table."""
    headers = [x_label, *series.keys()]
    n = len(x_values)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x has {n}")
    rows = [[x, *(series[name][i] for name in series)]
            for i, x in enumerate(x_values)]
    return render_table(headers, rows, title=title)


def render_scatter(points: "dict[str, list[tuple[float, float]]]", *,
                   width: int = 64, height: int = 16, title: str = "",
                   x_label: str = "x", y_label: str = "y") -> str:
    """Render labelled (x, y) point sets as an ASCII scatter plot.

    Each series is drawn with the first character of its name;
    overlapping cells show ``*``.  Used by the Fig. 12/13 harness to
    make the energy-vs-parallelism cloud visible in a terminal.
    """
    all_pts = [p for pts in points.values() for p in pts]
    if not all_pts:
        raise ValueError("no points to plot")
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, pts in points.items():
        mark = name[0]
        for x, y in pts:
            col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
            row = min(height - 1,
                      int((y_hi - y) / y_span * (height - 1)))
            grid[row][col] = "*" if grid[row][col] not in (" ", mark) \
                else mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} in [{y_lo:.4g}, {y_hi:.4g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.4g} .. {x_hi:.4g}   legend: "
                 + ", ".join(f"{name[0]}={name}" for name in points))
    return "\n".join(lines)


def format_si(value: float, unit: str = "") -> str:
    """Format with an SI prefix: ``format_si(3.1e9, 'Hz') == '3.1 GHz'``."""
    prefixes = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"),
                (1.0, ""), (1e-3, "m"), (1e-6, "µ"), (1e-9, "n"),
                (1e-12, "p")]
    if value == 0:
        return f"0 {unit}".strip()
    mag = abs(value)
    for scale, prefix in prefixes:
        if mag >= scale:
            return f"{value/scale:.3g} {prefix}{unit}".strip()
    scale, prefix = prefixes[-1]
    return f"{value/scale:.3g} {prefix}{unit}".strip()


def format_percent(ratio: float) -> str:
    """Format a ratio as a percentage with one decimal."""
    return f"{100.0 * ratio:.1f}%"
