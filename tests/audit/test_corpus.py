"""Tests for the corpus sweep and the ``repro audit`` CLI subcommand."""

from repro.audit import audit_corpus
from repro.cli import main


class TestAuditCorpus:
    def test_small_sweep_is_clean(self):
        outcome = audit_corpus(names=["mpeg1", "rand50_000"],
                               deadline_factors=(1.5, 4.0))
        assert outcome.clean
        assert len(outcome.rows) == 4
        assert all(r.checks_passed > 0 and not r.error
                   for r in outcome.rows)
        assert outcome.log.schedules_built > 0

    def test_progress_callback_counts_instances(self):
        seen = []
        audit_corpus(names=["mpeg1"], deadline_factors=(2.0, 4.0),
                     progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_rows_carry_instance_metadata(self):
        outcome = audit_corpus(names=["mpeg1"], deadline_factors=(2.0,))
        (row,) = outcome.rows
        assert row.graph_name == "mpeg1"
        assert row.n_tasks == 15
        assert row.deadline_factor == 2.0


class TestAuditCli:
    def test_exit_zero_and_tables(self, capsys):
        assert main(["audit", "mpeg1",
                     "--deadline-factors", "2.0", "4.0"]) == 0
        out = capsys.readouterr().out
        assert "Invariant audit" in out
        assert "mpeg1" in out
        assert "invariant checks passed" in out
        assert "[audit]" in out

    def test_unknown_graph_surfaces_clearly(self, capsys):
        try:
            main(["audit", "no_such_graph"])
        except FileNotFoundError as exc:
            assert "no_such_graph" in str(exc)
        else:  # pragma: no cover - the load must fail
            raise AssertionError("expected a FileNotFoundError")
