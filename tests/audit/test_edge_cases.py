"""Regression tests for the anomaly and empty-ladder edge cases.

Scheduling anomalies (Graham: more processors can *lengthen* a list
schedule) make feasibility non-monotone in the processor count, which
the LAMPS searches historically assumed away.  Deterministic anomaly
instances are hard to construct organically, so these tests monkeypatch
``repro.core.lamps.list_schedule`` with handcrafted (but structurally
valid) schedules whose makespans follow a chosen non-monotone pattern.
"""

import importlib

import pytest

from repro.audit import AuditLog
from repro.core.energy import EnergyBreakdown
from repro.core.lamps import (
    _best_operating_point,
    energy_vs_processors,
    lamps_search,
)
from repro.core.results import InfeasibleScheduleError
from repro.core.sns import schedule_and_stretch
from repro.graphs.dag import TaskGraph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule
from repro.sched.schedule import Placement, Schedule

# ``repro.core`` re-exports the ``lamps`` *function*, shadowing the
# submodule attribute — resolve the module itself for monkeypatching.
lamps_mod = importlib.import_module("repro.core.lamps")


def _independent_graph(n_tasks: int) -> TaskGraph:
    return TaskGraph({i: 1.0 for i in range(n_tasks)}, [],
                     name=f"indep{n_tasks}")


def _line_schedule(graph: TaskGraph, n: int, makespan: float) -> Schedule:
    """A valid schedule of independent unit tasks with a chosen makespan.

    All tasks sit back-to-back on processor 0 except the last, which is
    shifted right so the schedule finishes exactly at ``makespan``.
    """
    ids = graph.node_ids
    placements = [Placement(v, 0, float(i), float(i) + 1.0)
                  for i, v in enumerate(ids[:-1])]
    placements.append(Placement(ids[-1], 0, makespan - 1.0, makespan))
    assert makespan - 1.0 >= len(ids) - 1, "placements would overlap"
    return Schedule(graph, n, placements)


def _patch_makespans(monkeypatch, makespan_by_n):
    def fake_list_schedule(graph, n, deadlines, policy="edf", obs=None):
        return _line_schedule(graph, n, makespan_by_n[n])
    monkeypatch.setattr(lamps_mod, "list_schedule", fake_list_schedule)


class TestAnomalousFeasibility:
    def test_lamps_skips_infeasible_middle_count(self, monkeypatch):
        # Feasibility pattern over n = 1..4 at D = 8.5: no/yes/NO/yes —
        # n = 3 is an anomaly.  The sweep must skip it and still return
        # a deadline-meeting configuration.
        g = _independent_graph(4)
        _patch_makespans(monkeypatch, {1: 30.0, 2: 8.0, 3: 9.0, 4: 8.0})
        log = AuditLog(strict=True)
        r = lamps_search(g, 8.5, audit=log)
        assert r.schedule.makespan <= 8.5
        assert log.anomaly_retries >= 1
        assert log.clean

    def test_lamps_ps_sweep_survives_anomalous_count(self, monkeypatch):
        # Same anomaly under +PS: the sweep skips n = 3 and the fully
        # spread extra candidate (n = 4, feasible here) still competes.
        g = _independent_graph(4)
        _patch_makespans(monkeypatch, {1: 30.0, 2: 8.0, 3: 9.0, 4: 8.0})
        log = AuditLog(strict=True)
        r = lamps_search(g, 8.5, shutdown=True, audit=log)
        assert r.schedule.makespan <= 8.5
        assert log.anomaly_retries >= 1
        assert log.clean

    @pytest.mark.parametrize("makespans,deadline", [
        ({1: 10.0, 2: 16.0, 3: 9.0, 4: 9.0}, 9.5),
        ({1: 30.0, 2: 9.0, 3: 16.0, 4: 8.0}, 9.5),
    ])
    def test_phase1_lands_on_feasible_count(self, monkeypatch, makespans,
                                            deadline):
        # Non-monotone feasibility must never leak an infeasible count
        # out of Phase 1 into the final result.
        g = _independent_graph(4)
        _patch_makespans(monkeypatch, makespans)
        for shutdown in (False, True):
            r = lamps_search(g, deadline, shutdown=shutdown, strict=True)
            assert r.schedule.makespan <= deadline


class TestFig6SweepTruncation:
    def test_sweep_continues_past_infeasible_stretch(self, monkeypatch):
        # n = 3 is infeasible; the plateau check used to compare n = 4's
        # makespan (8.1) against the pre-anomaly one (8.0) and stop the
        # sweep one point early, losing the n = 5 row.
        g = _independent_graph(5)
        _patch_makespans(
            monkeypatch, {1: 20.0, 2: 8.0, 3: 9.0, 4: 8.1, 5: 8.6})
        out = energy_vs_processors(g, 8.2)
        assert [n for n, _ in out] == [1, 2, 3, 4, 5]
        feasible = [n for n, e in out if e is not None]
        assert feasible == [2, 4]

    def test_counts_and_audit(self, monkeypatch):
        g = _independent_graph(5)
        _patch_makespans(
            monkeypatch, {1: 20.0, 2: 8.0, 3: 9.0, 4: 8.1, 5: 8.6})
        log = AuditLog(strict=True)
        out = energy_vs_processors(g, 8.2, audit=log)
        assert log.schedules_built == len(out) == 5
        assert log.anomaly_retries == 3  # n = 1, 3, 5 infeasible
        assert log.clean


class TestEmptyLadder:
    @pytest.fixture
    def schedule(self, diamond):
        return list_schedule(diamond, 2, task_deadlines(diamond, 10.0))

    def test_ps_path_raises_infeasible_not_bare_valueerror(
            self, schedule, platform):
        f_req = platform.fmax * (1.0 + 1e-6)
        with pytest.raises(InfeasibleScheduleError, match="GHz"):
            _best_operating_point(schedule, f_req, platform, 1e-3,
                                  platform.sleep)

    def test_stretch_path_raises_infeasible(self, schedule, platform):
        f_req = platform.fmax * (1.0 + 1e-6)
        with pytest.raises(InfeasibleScheduleError, match="ladder"):
            _best_operating_point(schedule, f_req, platform, 1e-3, None)

    def test_message_names_the_graph_and_window(self, schedule, platform):
        with pytest.raises(InfeasibleScheduleError, match="diamond"):
            _best_operating_point(schedule, platform.fmax * 2.0, platform,
                                  0.5, platform.sleep)


class TestStrictIsANoOpOnResults:
    @pytest.mark.parametrize("shutdown", [False, True])
    def test_sns(self, fig4_graph, shutdown):
        plain = schedule_and_stretch(fig4_graph, 24.0, shutdown=shutdown)
        strict = schedule_and_stretch(fig4_graph, 24.0, shutdown=shutdown,
                                      strict=True)
        assert strict.energy == plain.energy
        assert strict.point == plain.point
        assert strict.n_processors == plain.n_processors

    @pytest.mark.parametrize("shutdown", [False, True])
    def test_lamps(self, fig4_graph, shutdown):
        plain = lamps_search(fig4_graph, 24.0, shutdown=shutdown)
        strict = lamps_search(fig4_graph, 24.0, shutdown=shutdown,
                              strict=True)
        assert strict.energy == plain.energy
        assert strict.point == plain.point
        assert strict.n_processors == plain.n_processors


class TestEnergyBreakdownRadd:
    def test_sum_over_sweep_results(self, fig4_graph):
        out = energy_vs_processors(fig4_graph, 24.0)
        parts = [e for _, e in out if e is not None]
        total = sum(parts)
        assert isinstance(total, EnergyBreakdown)
        assert total.total == pytest.approx(sum(p.total for p in parts))
