"""Unit tests for the invariant checks and the audit log."""

import dataclasses

import pytest

from repro.audit import (
    AuditLog,
    AuditViolationError,
    audit_energy,
    audit_intermediate_schedule,
    audit_result,
    reference_energy,
)
from repro.core.energy import EnergyBreakdown, schedule_energy
from repro.core.sns import sns, sns_ps
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule
from repro.sched.schedule import Placement, Schedule


@pytest.fixture
def scheduled(platform):
    """A real schedule + a comfortable deadline window."""
    g = stg_random_graph(20, 3, name="rand20").scaled(3.1e6)
    deadline = 2.0 * critical_path_length(g)
    d = task_deadlines(g, deadline)
    s = list_schedule(g, 4, d)
    return g, s, platform.seconds(deadline)


class TestReferenceEnergy:
    @pytest.mark.parametrize("point_index", [0, 3, -1])
    @pytest.mark.parametrize("use_sleep", [False, True])
    def test_matches_schedule_energy(self, scheduled, platform,
                                     point_index, use_sleep):
        _, s, window = scheduled
        point = list(platform.ladder)[point_index]
        sleep = platform.sleep if use_sleep else None
        # Stretch the window so the schedule fits at every ladder point.
        window = max(window, s.makespan / point.frequency)
        got = schedule_energy(s, point, window, sleep=sleep)
        ref = reference_energy(s, point, window, sleep=sleep)
        for name in ("busy", "idle", "sleep", "overhead"):
            assert getattr(ref, name) == pytest.approx(
                getattr(got, name), rel=1e-12, abs=1e-15)
        assert ref.n_shutdowns == got.n_shutdowns

    def test_exact_fit_has_no_trailing_gap(self, diamond, platform):
        d = task_deadlines(diamond, 10.0)
        s = list_schedule(diamond, 1, d)
        point = platform.ladder.max_point
        window = s.makespan / point.frequency  # finishes exactly on time
        ref = reference_energy(s, point, window)
        assert ref.idle == 0.0
        assert ref.total == pytest.approx(
            schedule_energy(s, point, window).total, rel=1e-12)

    def test_unemployed_processors_are_free(self, diamond, platform):
        d = task_deadlines(diamond, 100.0)
        one = list_schedule(diamond, 1, d)
        padded = Schedule(diamond, 8, list(one.processor_tasks(0)))
        point = platform.ladder.max_point
        window = platform.seconds(100.0)
        assert reference_energy(padded, point, window).total == \
            pytest.approx(reference_energy(one, point, window).total,
                          rel=1e-12)


class TestAuditLog:
    def test_strict_raises_on_first_violation(self):
        log = AuditLog(strict=True)
        with pytest.raises(AuditViolationError, match=r"\[energy\] ctx"):
            log.fail("energy", "ctx", "boom")
        assert not log.clean

    def test_collect_mode_accumulates(self):
        log = AuditLog(strict=False)
        log.fail("structure", "a", "x")
        log.fail("deadline", "b", "y")
        assert [v.kind for v in log.violations] == ["structure", "deadline"]
        assert not log.clean

    def test_counters_merge_roundtrip(self):
        log = AuditLog(strict=False, schedules_built=2, cache_hits=1,
                       anomaly_retries=3, operating_points_evaluated=4,
                       invariant_checks_passed=5)
        other = AuditLog()
        other.merge(log.counters())
        other.merge(log.counters())
        assert other.counters() == {
            "schedules_built": 4, "cache_hits": 2, "anomaly_retries": 6,
            "operating_points_evaluated": 8, "invariant_checks_passed": 10}

    def test_summary_line_mentions_every_counter(self):
        log = AuditLog(schedules_built=7, cache_hits=1, anomaly_retries=2,
                       operating_points_evaluated=31,
                       invariant_checks_passed=12)
        line = log.summary_line()
        for token in ("7 schedules", "1 cache", "2 anomaly",
                      "31 operating", "12 invariant", "0 violations"):
            assert token in line


class TestAuditEnergy:
    def test_real_breakdown_is_clean(self, scheduled, platform):
        _, s, window = scheduled
        point = platform.ladder.max_point
        energy = schedule_energy(s, point, window, sleep=platform.sleep)
        log = AuditLog(strict=True)
        audit_energy(s, energy, point, window, platform.sleep, log, "t")
        assert log.clean and log.invariant_checks_passed == 4

    def test_negative_component_is_flagged(self, scheduled, platform):
        _, s, window = scheduled
        point = platform.ladder.max_point
        energy = schedule_energy(s, point, window)
        bogus = dataclasses.replace(energy, idle=-energy.idle)
        log = AuditLog(strict=False)
        audit_energy(s, bogus, point, window, None, log, "t")
        assert [v.kind for v in log.violations].count("energy") >= 1
        assert "negative" in log.violations[0].message

    def test_tampered_total_is_flagged(self, scheduled, platform):
        _, s, window = scheduled
        point = platform.ladder.max_point
        energy = schedule_energy(s, point, window)
        bogus = dataclasses.replace(energy, busy=energy.busy * 1.5)
        log = AuditLog(strict=False)
        audit_energy(s, bogus, point, window, None, log, "t")
        assert any("independent integral" in v.message
                   for v in log.violations)

    def test_strict_log_raises(self, scheduled, platform):
        _, s, window = scheduled
        point = platform.ladder.max_point
        bogus = EnergyBreakdown(busy=-1.0, idle=0.0)
        with pytest.raises(AuditViolationError):
            audit_energy(s, bogus, point, window, None,
                         AuditLog(strict=True), "t")


class TestAuditIntermediateSchedule:
    def test_overlap_is_flagged(self, diamond):
        overlapping = Schedule(diamond, 1, [
            Placement("a", 0, 0.0, 1.0),
            Placement("b", 0, 0.5, 2.5),   # overlaps "a"
            Placement("c", 0, 2.5, 5.5),
            Placement("d", 0, 5.5, 6.5),
        ])
        log = AuditLog(strict=False)
        audit_intermediate_schedule(overlapping, log, "diamond[n=1]")
        assert [v.kind for v in log.violations] == ["structure"]
        assert log.violations[0].context == "diamond[n=1]"

    def test_valid_schedule_counts_a_pass(self, diamond):
        d = task_deadlines(diamond, 10.0)
        s = list_schedule(diamond, 2, d)
        log = AuditLog(strict=True)
        audit_intermediate_schedule(s, log, "diamond[n=2]")
        assert log.clean and log.invariant_checks_passed == 1


class TestAuditResult:
    def test_clean_on_real_results(self, diamond, platform):
        d = task_deadlines(diamond, 14.0)
        for shutdown, run in ((False, sns), (True, sns_ps)):
            r = run(diamond, 14.0)
            log = AuditLog(strict=True)
            audit_result(r, d, platform, log,
                         sleep=platform.sleep if shutdown else None)
            assert log.clean and log.invariant_checks_passed >= 4

    def test_schedule_less_results_are_skipped(self, diamond, platform):
        d = task_deadlines(diamond, 14.0)
        r = dataclasses.replace(sns(diamond, 14.0), schedule=None)
        log = AuditLog(strict=True)
        audit_result(r, d, platform, log)
        assert log.clean and log.invariant_checks_passed == 0

    def test_late_schedule_is_flagged(self, diamond, platform):
        r = sns(diamond, 14.0)
        d = task_deadlines(diamond, 14.0) / 4.0  # impossibly tight
        log = AuditLog(strict=False)
        audit_result(r, d, platform, log)
        assert any(v.kind == "deadline" for v in log.violations)


class TestEnergyBreakdownSum:
    def test_sum_builtin(self):
        parts = [EnergyBreakdown(busy=1.0, idle=0.5),
                 EnergyBreakdown(busy=2.0, idle=0.25, sleep=0.125,
                                 overhead=0.0625, n_shutdowns=3)]
        total = sum(parts)
        assert total == EnergyBreakdown(busy=3.0, idle=0.75, sleep=0.125,
                                        overhead=0.0625, n_shutdowns=3)
        assert sum([]) == 0  # the empty sum stays the int 0

    def test_adding_non_breakdown_is_a_type_error(self):
        with pytest.raises(TypeError):
            EnergyBreakdown(busy=1.0, idle=0.0) + 5
