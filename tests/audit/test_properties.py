"""Property/differential tests behind the invariant-audit layer.

The paper's ordering guarantees — LAMPS never loses to S&S, a +PS
variant never loses to its no-PS base — double as differential oracles
for the implementation, so they are asserted here over randomly drawn
STG-style instances.  The strict-mode no-op property (auditing never
perturbs a result) is asserted on the same draws.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import AuditLog, reference_energy
from repro.core.energy import schedule_energy
from repro.core.lamps import lamps, lamps_ps
from repro.core.platform import default_platform
from repro.core.sns import sns, sns_ps
from repro.core.suite import paper_suite
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule


@st.composite
def instances(draw):
    """A scenario-scaled random STG instance with a feasible deadline."""
    seed = draw(st.integers(min_value=0, max_value=5_000))
    n = draw(st.sampled_from([8, 15, 25]))
    factor = draw(st.sampled_from([1.2, 1.5, 2.0, 4.0, 8.0]))
    g = stg_random_graph(n, seed).scaled(3.1e6)
    return g, factor * critical_path_length(g)


class TestDominanceOrderings:
    @given(instances())
    @settings(max_examples=25, deadline=None)
    def test_lamps_never_worse_than_sns(self, inst):
        g, deadline = inst
        assert lamps(g, deadline).total_energy <= \
            sns(g, deadline).total_energy + 1e-12

    @given(instances())
    @settings(max_examples=25, deadline=None)
    def test_ps_never_worse_than_no_ps(self, inst):
        g, deadline = inst
        assert sns_ps(g, deadline).total_energy <= \
            sns(g, deadline).total_energy + 1e-12
        assert lamps_ps(g, deadline).total_energy <= \
            lamps(g, deadline).total_energy + 1e-12

    @given(instances())
    @settings(max_examples=15, deadline=None)
    def test_lamps_ps_never_worse_than_sns_ps(self, inst):
        g, deadline = inst
        assert lamps_ps(g, deadline).total_energy <= \
            sns_ps(g, deadline).total_energy + 1e-12


class TestStrictModeNoOp:
    @given(instances())
    @settings(max_examples=15, deadline=None)
    def test_audited_suite_is_identical_and_clean(self, inst):
        g, deadline = inst
        log = AuditLog(strict=False)
        audited = paper_suite(g, deadline, audit=log)
        plain = paper_suite(g, deadline)
        assert log.clean, [str(v) for v in log.violations]
        assert log.invariant_checks_passed > 0
        assert list(audited) == list(plain)
        for h in plain:
            assert audited[h].energy == plain[h].energy
            assert audited[h].point == plain[h].point
            assert audited[h].n_processors == plain[h].n_processors


class TestEnergyConservation:
    @given(instances(), st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=10),
           st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_reference_integral_matches(self, inst, n_procs, point_seed,
                                        use_sleep):
        g, deadline = inst
        platform = default_platform()
        s = list_schedule(g, n_procs, task_deadlines(g, deadline))
        point = list(platform.ladder)[point_seed % len(platform.ladder)]
        sleep = platform.sleep if use_sleep else None
        window = max(platform.seconds(deadline),
                     s.makespan / point.frequency)
        got = schedule_energy(s, point, window, sleep=sleep)
        ref = reference_energy(s, point, window, sleep=sleep)
        assert ref.total == pytest.approx(got.total, rel=1e-9)
        assert ref.n_shutdowns == got.n_shutdowns
