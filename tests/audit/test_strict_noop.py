"""Campaign-level proof that strict mode is a byte-identical no-op.

Mirrors the PR 1 determinism suite: the same small fig10-style campaign
is run with and without ``ExecOptions(strict=True)`` (serial, parallel,
and against a warm cache) and the JSON reports must be *byte*-identical.
The on-disk cache trees written by strict and non-strict campaigns must
also match file for file — strict must never change what is persisted.
"""

import json

import pytest

from repro.exec import ExecOptions
from repro.experiments import fig10_11_relative_energy
from repro.experiments.registry import COARSE


def _campaign(exec_options=None):
    return fig10_11_relative_energy.run(
        scenario=COARSE, graphs_per_group=2, sizes=(50,),
        deadline_factors=(1.5, 2.0), include_applications=False,
        exec_options=exec_options)


@pytest.fixture(scope="module")
def plain_report():
    return _campaign(ExecOptions(jobs=1, use_cache=False))


def test_strict_serial_byte_identical(plain_report):
    options = ExecOptions(jobs=1, use_cache=False, strict=True)
    strict = _campaign(options)
    assert strict.to_json() == plain_report.to_json()
    audit = options.open_audit()
    assert audit.clean
    assert audit.schedules_built > 0
    assert audit.invariant_checks_passed > 0


def test_strict_parallel_and_warm_cache_byte_identical(plain_report,
                                                       tmp_path):
    cold_options = ExecOptions(jobs=4, cache_dir=tmp_path / "c",
                               strict=True)
    cold = _campaign(cold_options)
    assert cold.to_json() == plain_report.to_json()
    assert cold_options.open_audit().clean

    warm_options = ExecOptions(jobs=4, cache_dir=tmp_path / "c",
                               strict=True)
    warm = _campaign(warm_options)
    assert warm.to_json() == plain_report.to_json()
    audit = warm_options.open_audit()
    assert audit.clean
    assert audit.cache_hits > 0
    assert audit.schedules_built == 0  # fully served from the cache


def test_strict_writes_identical_cache_entries(tmp_path):
    plain_dir, strict_dir = tmp_path / "plain", tmp_path / "strict"
    _campaign(ExecOptions(jobs=1, cache_dir=plain_dir))
    _campaign(ExecOptions(jobs=1, cache_dir=strict_dir, strict=True))

    def tree(root):
        return {p.relative_to(root).as_posix(): p.read_text()
                for p in sorted(root.rglob("*.json"))}

    plain, strict = tree(plain_dir), tree(strict_dir)
    assert plain and plain.keys() == strict.keys()
    assert plain == strict  # same digests AND same bytes
    for text in plain.values():
        json.loads(text)  # every shared entry is well-formed JSON


def test_non_strict_options_have_no_audit():
    options = ExecOptions(jobs=1, use_cache=False)
    _campaign(options)
    assert options.open_audit() is None
