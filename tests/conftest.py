"""Shared fixtures and Hypothesis profiles for the test suite."""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.platform import default_platform
from repro.graphs.dag import TaskGraph

# A fast profile for CI: capped example counts and no per-example
# deadline, so property tests don't flake on slow shared runners.
# Select with HYPOTHESIS_PROFILE=ci (the GitHub Actions workflow does).
settings.register_profile(
    "ci", max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def platform():
    """The paper's default platform — the same singleton the heuristics
    fall back to, so identity checks on operating points hold."""
    return default_platform()


@pytest.fixture(scope="session")
def ladder(platform):
    return platform.ladder


@pytest.fixture(scope="session")
def model(platform):
    return platform.model


@pytest.fixture
def diamond():
    """A 4-task diamond: a -> {b, c} -> d, weights 1/2/3/1."""
    return TaskGraph(
        {"a": 1.0, "b": 2.0, "c": 3.0, "d": 1.0},
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        name="diamond")


@pytest.fixture
def fig4_graph():
    """The paper's 5-task illustration graph (unit weights)."""
    return TaskGraph(
        {"T1": 2.0, "T2": 6.0, "T3": 4.0, "T4": 4.0, "T5": 2.0},
        [("T1", "T2"), ("T1", "T3"), ("T2", "T5"), ("T3", "T5")],
        name="fig4")
