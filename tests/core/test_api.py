"""Tests for the public facade API."""

import pytest

from repro.core.api import deadline_from_factor, evaluate_all, schedule
from repro.core.platform import Platform, default_platform
from repro.core.results import Heuristic
from repro.graphs.analysis import critical_path_length
from repro.power.dvs import DVSLadder
from repro.power.shutdown import SleepModel


@pytest.fixture
def coarse(fig4_graph):
    return fig4_graph.scaled(3.1e6)


class TestDeadlineFromFactor:
    def test_multiplies_cpl(self, coarse):
        assert deadline_from_factor(coarse, 2.0) == pytest.approx(
            2 * critical_path_length(coarse))

    def test_below_one_rejected(self, coarse):
        with pytest.raises(ValueError):
            deadline_from_factor(coarse, 0.5)


class TestScheduleFacade:
    def test_default_heuristic_is_lamps_ps(self, coarse):
        r = schedule(coarse, deadline_factor=2.0)
        assert r.heuristic is Heuristic.LAMPS_PS

    @pytest.mark.parametrize("h", list(Heuristic))
    def test_every_heuristic_dispatches(self, coarse, h):
        r = schedule(coarse, deadline_factor=2.0, heuristic=h)
        assert r.heuristic is h

    def test_string_heuristic_accepted(self, coarse):
        r = schedule(coarse, deadline_factor=2.0, heuristic="S&S")
        assert r.heuristic is Heuristic.SNS

    def test_unknown_heuristic_rejected(self, coarse):
        with pytest.raises(ValueError):
            schedule(coarse, deadline_factor=2.0, heuristic="MAGIC")

    def test_explicit_deadline(self, coarse):
        deadline = 2 * critical_path_length(coarse)
        r = schedule(coarse, deadline, heuristic="LAMPS")
        assert r.deadline_cycles == deadline

    def test_both_deadline_forms_rejected(self, coarse):
        with pytest.raises(ValueError, match="exactly one"):
            schedule(coarse, 1e9, deadline_factor=2.0)

    def test_neither_deadline_form_rejected(self, coarse):
        with pytest.raises(ValueError, match="exactly one"):
            schedule(coarse)

    def test_custom_platform_respected(self, coarse):
        # A platform whose ladder stops at 0.8 V cannot pick 1.0 V.
        plat = Platform(ladder=DVSLadder(vdd_max=0.8),
                        sleep=SleepModel())
        r = schedule(coarse, deadline_factor=2.0, heuristic="S&S",
                     platform=plat)
        assert r.point.vdd <= 0.8

    def test_policy_passthrough(self, coarse):
        r = schedule(coarse, deadline_factor=2.0, heuristic="S&S",
                     policy="hlfet")
        assert r.heuristic is Heuristic.SNS


class TestEvaluateAll:
    def test_all_heuristics_present(self, coarse):
        res = evaluate_all(coarse, deadline_factor=2.0)
        assert set(res) == set(Heuristic)

    def test_subset(self, coarse):
        res = evaluate_all(coarse, deadline_factor=2.0,
                           heuristics=(Heuristic.SNS, Heuristic.LAMPS))
        assert set(res) == {Heuristic.SNS, Heuristic.LAMPS}

    def test_results_keyed_correctly(self, coarse):
        res = evaluate_all(coarse, deadline_factor=2.0)
        for h, r in res.items():
            assert r.heuristic is h


class TestDefaultPlatform:
    def test_cached(self):
        assert default_platform() is default_platform()

    def test_units_roundtrip(self, platform):
        assert platform.reference_cycles(
            platform.seconds(1e9)) == pytest.approx(1e9)

    def test_fmax_matches_ladder(self, platform):
        assert platform.fmax == platform.ladder.fmax
