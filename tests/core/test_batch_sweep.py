"""Differential tests: the cross-instance batched sweep vs serial paths.

:func:`repro.core.batch.batch_energy_sweep` claims that every request's
breakdown list is *bitwise* equal to the per-instance
:func:`repro.core.energy.schedule_energy_sweep` — and hence, by PR 4's
differential suite, to the scalar :func:`repro.core.energy
.schedule_energy` loop.  That chain is what lets the campaign runner
evaluate whole chunks at once while reports, caches and golden files
keep their exact historical bytes, so it is asserted with ``==`` on
every component over drawn batches: mixed graph sizes and processor
counts (ragged padded tails), mixed sleep models within one batch,
single-member batches, duplicate and empty point tuples, and the
exception order of infeasible windows.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.batch import ScheduleBatch, SweepRequest, batch_energy_sweep
from repro.core.energy import schedule_energy, schedule_energy_sweep
from repro.core.platform import default_platform
from repro.core.stretch import feasible_points, required_frequency
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.power.shutdown import SleepModel
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule

PLATFORM = default_platform()


def _instance(seed: int, n: int, n_procs: int, factor: float):
    """One (schedule, feasible ladder, window) campaign instance."""
    g = stg_random_graph(n, seed).scaled(3.1e6)
    deadline = factor * critical_path_length(g)
    d = task_deadlines(g, deadline)
    s = list_schedule(g, n_procs, d)
    f_req = required_frequency(s, d, PLATFORM.fmax)
    points = feasible_points(PLATFORM.ladder, f_req)
    return s, tuple(points), PLATFORM.seconds(deadline)


@st.composite
def batches(draw):
    """A ScheduleBatch plus one sweep request per member, ragged shapes."""
    k = draw(st.integers(min_value=1, max_value=5))
    members = []
    for i in range(k):
        seed = draw(st.integers(min_value=0, max_value=2_000))
        n = draw(st.sampled_from([5, 12, 25]))
        n_procs = draw(st.sampled_from([1, 2, 4, 9]))
        factor = draw(st.sampled_from([1.1, 1.5, 2.0, 4.0]))
        members.append(_instance(seed, n, n_procs, factor))
    assume(any(points for _, points, _ in members))
    batch = ScheduleBatch.from_schedules([s for s, _, _ in members])
    requests = [SweepRequest(schedule_index=i, points=points,
                             deadline_seconds=window)
                for i, (_, points, window) in enumerate(members)]
    return batch, requests


def assert_bitwise_equal(got, want):
    assert len(got) == len(want)
    for b_got, b_want in zip(got, want):
        assert b_got.busy == b_want.busy
        assert b_got.idle == b_want.idle
        assert b_got.sleep == b_want.sleep
        assert b_got.overhead == b_want.overhead
        assert b_got.n_shutdowns == b_want.n_shutdowns


def serial_reference(batch, requests):
    """What the per-instance sweep produces, request by request."""
    return [schedule_energy_sweep(batch.schedules[r.schedule_index],
                                  r.points, r.deadline_seconds,
                                  sleep=r.sleep)
            for r in requests]


class TestBatchMatchesSerial:
    @given(batches())
    @settings(max_examples=30, deadline=None)
    def test_without_sleep(self, drawn):
        batch, requests = drawn
        got = batch_energy_sweep(batch, requests)
        want = serial_reference(batch, requests)
        for g_list, w_list in zip(got, want):
            assert_bitwise_equal(g_list, w_list)

    @given(batches())
    @settings(max_examples=30, deadline=None)
    def test_with_sleep(self, drawn):
        batch, requests = drawn
        requests = [SweepRequest(r.schedule_index, r.points,
                                 r.deadline_seconds, sleep=PLATFORM.sleep)
                    for r in requests]
        got = batch_energy_sweep(batch, requests)
        want = serial_reference(batch, requests)
        for g_list, w_list in zip(got, want):
            assert_bitwise_equal(g_list, w_list)

    @given(batches(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_mixed_sleep_models_within_one_batch(self, drawn, data):
        """Lanes with different models (and None) must not interfere."""
        batch, requests = drawn
        models = [None, PLATFORM.sleep,
                  SleepModel(sleep_power=data.draw(st.floats(
                      min_value=0.0, max_value=1e-3)),
                      overhead_energy=data.draw(st.floats(
                          min_value=0.0, max_value=1e-2)))]
        requests = [SweepRequest(r.schedule_index, r.points,
                                 r.deadline_seconds,
                                 sleep=models[i % len(models)])
                    for i, r in enumerate(requests)]
        got = batch_energy_sweep(batch, requests)
        want = serial_reference(batch, requests)
        for g_list, w_list in zip(got, want):
            assert_bitwise_equal(g_list, w_list)

    @given(batches())
    @settings(max_examples=20, deadline=None)
    def test_matches_scalar_reference(self, drawn):
        """Close the chain: batched == scalar loop, point by point."""
        batch, requests = drawn
        requests = [SweepRequest(r.schedule_index, r.points,
                                 r.deadline_seconds, sleep=PLATFORM.sleep)
                    for r in requests]
        got = batch_energy_sweep(batch, requests)
        for r, g_list in zip(requests, got):
            want = [schedule_energy(batch.schedules[r.schedule_index], p,
                                    r.deadline_seconds, sleep=r.sleep)
                    for p in r.points]
            assert_bitwise_equal(g_list, want)


class TestBatchShapes:
    def _members(self):
        return [_instance(7, 20, 2, 2.0), _instance(11, 5, 4, 1.5),
                _instance(13, 25, 9, 4.0)]

    def test_single_member_batch(self):
        s, points, window = _instance(7, 20, 2, 2.0)
        batch = ScheduleBatch.from_schedules([s])
        got = batch_energy_sweep(
            batch, [SweepRequest(0, points, window, sleep=PLATFORM.sleep)])
        assert_bitwise_equal(
            got[0],
            schedule_energy_sweep(s, points, window, sleep=PLATFORM.sleep))

    def test_empty_request_list(self):
        s, _, _ = _instance(7, 20, 2, 2.0)
        assert batch_energy_sweep(
            ScheduleBatch.from_schedules([s]), []) == []

    def test_empty_point_tuples_yield_empty_lists(self):
        members = self._members()
        batch = ScheduleBatch.from_schedules([s for s, _, _ in members])
        requests = [SweepRequest(0, (), members[0][2]),
                    SweepRequest(1, members[1][1], members[1][2]),
                    SweepRequest(2, (), members[2][2])]
        got = batch_energy_sweep(batch, requests)
        assert got[0] == [] and got[2] == []
        assert_bitwise_equal(got[1], schedule_energy_sweep(
            members[1][0], members[1][1], members[1][2]))

    def test_many_requests_per_member(self):
        """Members may be swept repeatedly, with different windows."""
        s, points, window = _instance(7, 20, 2, 2.0)
        batch = ScheduleBatch.from_schedules([s])
        requests = [SweepRequest(0, points, window),
                    SweepRequest(0, points, 2.0 * window,
                                 sleep=PLATFORM.sleep),
                    SweepRequest(0, points[:1], window)]
        got = batch_energy_sweep(batch, requests)
        want = serial_reference(batch, requests)
        for g_list, w_list in zip(got, want):
            assert_bitwise_equal(g_list, w_list)

    def test_one_task_member_among_larger_ones(self):
        """Extreme ragged tail: a 1-task member next to 25-task ones."""
        members = self._members()
        tiny = _instance(0, 1, 8, 2.0)  # seed 0 avoids the sameprob draw
        members.insert(1, tiny)
        batch = ScheduleBatch.from_schedules([s for s, _, _ in members])
        requests = [SweepRequest(i, points, window, sleep=PLATFORM.sleep)
                    for i, (_, points, window) in enumerate(members)]
        got = batch_energy_sweep(batch, requests)
        want = serial_reference(batch, requests)
        for g_list, w_list in zip(got, want):
            assert_bitwise_equal(g_list, w_list)

    def test_duplicate_points_evaluated_independently(self):
        s, points, window = _instance(7, 20, 2, 2.0)
        p = points[0]
        batch = ScheduleBatch.from_schedules([s])
        got = batch_energy_sweep(
            batch, [SweepRequest(0, (p, p, p), window,
                                 sleep=PLATFORM.sleep)])
        assert got[0][0] == got[0][1] == got[0][2]

    def test_arrays_are_frozen(self):
        members = self._members()
        batch = ScheduleBatch.from_schedules([s for s, _, _ in members])
        for name in ("starts", "finishes", "procs", "task_mask",
                     "proc_busy", "proc_last", "gap_flat", "makespans"):
            arr = getattr(batch, name)
            with pytest.raises(ValueError):
                arr[...] = 0

    def test_direct_construction_is_forbidden(self):
        with pytest.raises(TypeError, match="from_schedules"):
            ScheduleBatch()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ScheduleBatch.from_schedules([])

    def test_out_of_range_index(self):
        s, points, window = _instance(7, 20, 2, 2.0)
        batch = ScheduleBatch.from_schedules([s])
        with pytest.raises(IndexError, match="outside batch"):
            batch_energy_sweep(batch, [SweepRequest(1, points, window)])

    def test_padding_rows_match_members(self):
        members = self._members()
        batch = ScheduleBatch.from_schedules([s for s, _, _ in members])
        for i, (s, _, _) in enumerate(members):
            n = s.graph.n
            assert batch.n_tasks[i] == n
            assert np.array_equal(batch.starts[i, :n], s.start_times)
            assert np.array_equal(batch.finishes[i, :n], s.finish_times)
            assert np.array_equal(batch.procs[i, :n], s.task_processors)
            assert batch.task_mask[i, :n].all()
            assert not batch.task_mask[i, n:].any()
            e = s.employed_processors
            ids = np.asarray(s.employed_processor_ids)
            assert np.array_equal(batch.employed_ids[i, :e], ids)
            assert (batch.employed_ids[i, e:] == -1).all()
            assert np.array_equal(batch.proc_busy[i, :e],
                                  s.proc_busy_cycles[ids])


class TestBatchExceptionOrder:
    def test_infeasible_window_raises_like_serial(self):
        """First offending (request, point) wins, with the same message."""
        s1, points1, window1 = _instance(7, 20, 2, 2.0)
        s2, points2, _ = _instance(11, 25, 2, 1.1)
        slow = PLATFORM.ladder[0]
        bad_window = 0.5 * s2.makespan / slow.frequency
        batch = ScheduleBatch.from_schedules([s1, s2])
        requests = [SweepRequest(0, points1, window1),
                    SweepRequest(1, tuple(PLATFORM.ladder), bad_window)]
        with pytest.raises(ValueError) as serial_exc:
            serial_reference(batch, requests)
        with pytest.raises(ValueError) as batch_exc:
            batch_energy_sweep(batch, requests)
        assert str(batch_exc.value) == str(serial_exc.value)

    def test_earlier_request_wins(self):
        """Request order, not severity, decides which error surfaces."""
        s1, _, _ = _instance(7, 20, 2, 1.1)
        s2, _, _ = _instance(11, 25, 2, 1.1)
        slow = PLATFORM.ladder[0]
        batch = ScheduleBatch.from_schedules([s1, s2])
        requests = [
            SweepRequest(0, tuple(PLATFORM.ladder),
                         0.5 * s1.makespan / slow.frequency),
            SweepRequest(1, tuple(PLATFORM.ladder),
                         0.1 * s2.makespan / slow.frequency),
        ]
        with pytest.raises(ValueError) as serial_exc:
            serial_reference(batch, requests)
        with pytest.raises(ValueError) as batch_exc:
            batch_energy_sweep(batch, requests)
        assert str(batch_exc.value) == str(serial_exc.value)

    @given(batches(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20, deadline=None)
    def test_shrunk_windows_raise_identically(self, drawn, shrink):
        """Shrinking every window reproduces the serial error exactly."""
        batch, requests = drawn
        requests = [SweepRequest(r.schedule_index, r.points,
                                 shrink * r.deadline_seconds)
                    for r in requests]
        serial_err = batch_err = None
        try:
            want = serial_reference(batch, requests)
        except ValueError as exc:
            serial_err = str(exc)
        try:
            got = batch_energy_sweep(batch, requests)
        except ValueError as exc:
            batch_err = str(exc)
        assert serial_err == batch_err
        if serial_err is None:
            for g_list, w_list in zip(got, want):
                assert_bitwise_equal(g_list, w_list)
