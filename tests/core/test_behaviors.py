"""Scenario tests: the heuristics' decisions on structurally clear
workloads, where the energetically right answer is known by reasoning.
"""

import pytest

from repro.core import (
    Heuristic,
    default_platform,
    lamps,
    lamps_ps,
    paper_suite,
    schedule,
    sns,
    sns_ps,
)
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import (
    chain,
    fork_join,
    independent_tasks,
    parallel_chains,
)


class TestChainWorkloads:
    """A chain has parallelism 1: extra processors are pure waste."""

    def test_lamps_uses_one_processor(self):
        g = chain(20, weights=[5.0] * 20).scaled(3.1e6)
        r = lamps(g, 2 * critical_path_length(g))
        assert r.n_processors == 1

    def test_sns_also_uses_one(self):
        # Even S&S cannot spread a chain: employed == 1.
        g = chain(20, weights=[5.0] * 20).scaled(3.1e6)
        r = sns(g, 2 * critical_path_length(g))
        assert r.n_processors == 1

    def test_lamps_equals_sns_on_chains(self):
        # With identical processor counts and stretch, the heuristics
        # coincide — LAMPS's advantage exists only when S&S spreads.
        g = chain(15, weights=[7.0] * 15).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        assert lamps(g, deadline).total_energy == pytest.approx(
            sns(g, deadline).total_energy)


class TestIndependentTasks:
    """n equal independent tasks: the processor count is a pure knob."""

    def test_tight_deadline_forces_all_processors(self):
        g = independent_tasks(6, weights=[10.0] * 6).scaled(3.1e6)
        r = lamps(g, 1.0 * critical_path_length(g))
        assert r.n_processors == 6

    def test_loose_deadline_packs_processors(self):
        # Without PS the trade is subtle (a mid count at the critical
        # speed can beat fewer, slower processors), but the count must
        # drop well below the tight-deadline six.
        g = independent_tasks(6, weights=[10.0] * 6).scaled(3.1e6)
        r = lamps(g, 6 * critical_path_length(g))
        assert r.n_processors <= 3
        # With shutdown available the packing is aggressive.
        r_ps = lamps_ps(g, 6 * critical_path_length(g))
        assert r_ps.total_energy <= r.total_energy + 1e-12

    def test_processor_count_matches_work_bound(self):
        # At deadline k x CPL, at least ceil(6/k) processors are needed.
        g = independent_tasks(6, weights=[10.0] * 6).scaled(3.1e6)
        for k, n_min in ((2.0, 3), (3.0, 2)):
            r = lamps(g, k * critical_path_length(g))
            assert r.n_processors >= n_min


class TestForkJoinWorkloads:
    def test_sns_spreads_to_width(self):
        g = fork_join(5, 2, weight=10.0).scaled(3.1e6)
        r = sns(g, 2 * critical_path_length(g))
        assert r.n_processors == 5

    def test_lamps_beats_sns_on_bursty_shape(self):
        # Fork-join burns idle power on the joins under S&S.
        g = fork_join(5, 2, weight=10.0).scaled(3.1e6)
        deadline = 4 * critical_path_length(g)
        assert lamps(g, deadline).total_energy < \
            sns(g, deadline).total_energy


class TestFrequencyChoices:
    def test_ps_never_scales_below_critical(self):
        # With shutdown available, running below the critical speed is
        # dominated: the chosen point is at or above it.
        plat = default_platform()
        crit = plat.ladder.critical_point().frequency
        g = parallel_chains(3, 12, 5, mean_weight=20.0).scaled(3.1e6)
        for k in (2.0, 8.0):
            r = lamps_ps(g, k * critical_path_length(g))
            assert r.point.frequency >= crit * (1 - 1e-9)

    def test_plain_sns_does_scale_below_critical(self):
        # Without PS, stretching below the critical speed still beats
        # idling at it (the §3.3 remark) — at loose deadlines S&S's
        # point drops under the critical frequency.
        plat = default_platform()
        crit = plat.ladder.critical_point().frequency
        g = chain(15, weights=[7.0] * 15).scaled(3.1e6)
        r = sns(g, 8 * critical_path_length(g))
        assert r.point.frequency < crit

    def test_deadline_exactly_cpl_needs_full_speed(self):
        g = fork_join(3, 3, weight=10.0).scaled(3.1e6)
        plat = default_platform()
        r = sns(g, critical_path_length(g))
        assert r.point is plat.ladder.max_point


class TestSuiteConsistency:
    def test_limits_agree_on_loose_deadlines(self):
        # At 8x CPL the critical point is feasible, so the two bounds
        # coincide — the paper states this for the 4x/8x columns.
        g = parallel_chains(4, 10, 2, mean_weight=15.0).scaled(3.1e6)
        res = paper_suite(g, 8 * critical_path_length(g))
        assert res[Heuristic.LIMIT_SF].total_energy == pytest.approx(
            res[Heuristic.LIMIT_MF].total_energy)

    def test_facade_matches_direct_calls(self):
        g = fork_join(4, 2, weight=8.0).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        assert schedule(g, deadline, heuristic="S&S+PS").total_energy \
            == pytest.approx(sns_ps(g, deadline).total_energy)

    def test_energy_breakdown_components_nonnegative(self):
        g = fork_join(4, 2, weight=8.0).scaled(3.1e6)
        res = paper_suite(g, 2 * critical_path_length(g))
        for r in res.values():
            e = r.energy
            assert e.busy >= 0 and e.idle >= 0
            assert e.sleep >= 0 and e.overhead >= 0
            assert e.n_shutdowns >= 0

    def test_shutdown_count_consistent_with_overhead(self):
        plat = default_platform()
        g = fork_join(4, 2, weight=8.0).scaled(3.1e6)
        res = paper_suite(g, 4 * critical_path_length(g))
        for h in (Heuristic.SNS_PS, Heuristic.LAMPS_PS):
            e = res[h].energy
            assert e.overhead == pytest.approx(
                e.n_shutdowns * plat.sleep.overhead_energy)
