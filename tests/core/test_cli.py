"""Tests for the top-level CLI (python -m repro)."""

import pytest

from repro.cli import main
from repro.graphs.generators import stg_random_graph
from repro.graphs.stg import save_stg


@pytest.fixture
def stg_file(tmp_path):
    g = stg_random_graph(25, 3, name="demo")
    path = tmp_path / "demo.stg"
    save_stg(g, path)
    return str(path)


class TestInfo:
    def test_prints_stats(self, stg_file, capsys):
        assert main(["info", stg_file]) == 0
        out = capsys.readouterr().out
        assert "tasks" in out and "parallelism" in out
        assert "25" in out

    def test_scale_affects_cpl(self, stg_file, capsys):
        main(["info", stg_file, "--scale", "1.0"])
        unscaled = capsys.readouterr().out
        main(["info", stg_file])
        scaled = capsys.readouterr().out
        assert unscaled != scaled


class TestSchedule:
    def test_default_heuristic(self, stg_file, capsys):
        assert main(["schedule", stg_file]) == 0
        out = capsys.readouterr().out
        assert "LAMPS+PS" in out and "J on" in out

    def test_explicit_heuristic(self, stg_file, capsys):
        assert main(["schedule", stg_file, "--heuristic", "S&S"]) == 0
        assert "S&S:" in capsys.readouterr().out

    def test_gantt_flag(self, stg_file, capsys):
        assert main(["schedule", stg_file, "--gantt"]) == 0
        assert "P0:" in capsys.readouterr().out

    def test_unknown_heuristic_rejected(self, stg_file):
        with pytest.raises(SystemExit):
            main(["schedule", stg_file, "--heuristic", "MAGIC"])


class TestSweep:
    def test_all_factors_present(self, stg_file, capsys):
        assert main(["sweep", stg_file,
                     "--deadline-factors", "1.5", "4"]) == 0
        out = capsys.readouterr().out
        assert "1.5" in out and "LIMIT-MF" in out


class TestGenerate:
    def test_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "graphs"
        assert main(["generate", "--nodes", "20", "--count", "3",
                     "--out-dir", str(out_dir)]) == 0
        assert len(list(out_dir.glob("*.stg"))) == 3

    def test_generated_files_load_back(self, tmp_path, capsys):
        out_dir = tmp_path / "g"
        main(["generate", "--nodes", "15", "--count", "1",
              "--out-dir", str(out_dir)])
        stg = next(out_dir.glob("*.stg"))
        assert main(["info", str(stg)]) == 0


class TestPower:
    def test_prints_ladder(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "critical point" in out
        assert "0.70" in out  # the critical Vdd


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["info", str(tmp_path / "nope.stg")])


class TestBundled:
    def test_lists_dataset(self, capsys):
        assert main(["bundled"]) == 0
        out = capsys.readouterr().out
        assert "mpeg1" in out and "fpppp" in out

    def test_bundled_name_as_graph_argument(self, capsys):
        assert main(["info", "robot"]) == 0
        assert "88" in capsys.readouterr().out


class TestTrace:
    def test_renders_trace(self, capsys):
        assert main(["trace", "robot", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "P0:" in out and "# run" in out
        assert "run" in out  # per-state energy table

    def test_limit_heuristics_excluded(self):
        with pytest.raises(SystemExit):
            main(["trace", "robot", "--heuristic", "LIMIT-SF"])


class TestPareto:
    def test_front_and_knee(self, capsys):
        assert main(["pareto", "rand50_000",
                     "--deadline-factors", "1.5", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "knee point" in out
        assert "1.5" in out
