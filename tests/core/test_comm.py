"""Tests for the communication-aware extension."""

import pytest

from repro.comm.heuristics import comm_lamps
from repro.comm.model import CommGraph, uniform_ccr
from repro.comm.scheduler import comm_aware_schedule
from repro.core import lamps_ps
from repro.graphs.analysis import critical_path_length
from repro.graphs.dag import TaskGraph
from repro.graphs.generators import layered_dag, stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule
from repro.sched.validate import validate_schedule


class TestCommGraph:
    def test_costs_lookup(self, diamond):
        cg = CommGraph(diamond, {("a", "b"): 5.0})
        assert cg.comm_cycles("a", "b") == 5.0
        assert cg.comm_cycles("a", "c") == 0.0

    def test_non_edge_rejected(self, diamond):
        with pytest.raises(KeyError):
            CommGraph(diamond, {("a", "d"): 5.0})

    def test_negative_cost_rejected(self, diamond):
        with pytest.raises(ValueError):
            CommGraph(diamond, {("a", "b"): -1.0})

    def test_ccr(self, diamond):
        cg = CommGraph(diamond, {("a", "b"): 7.0})
        assert cg.ccr == pytest.approx(1.0)  # work is 7

    def test_uniform_ccr_hits_target(self):
        g = stg_random_graph(40, 3)
        for target in (0.5, 1.0, 2.0):
            cg = uniform_ccr(g, target, 1)
            assert cg.ccr == pytest.approx(target, rel=1e-9)

    def test_zero_ccr_means_no_costs(self, diamond):
        cg = uniform_ccr(diamond, 0.0)
        assert cg.total_comm == 0.0

    def test_negative_ccr_rejected(self, diamond):
        with pytest.raises(ValueError):
            uniform_ccr(diamond, -1.0)


class TestCommScheduler:
    def test_zero_comm_matches_plain_scheduler_makespan(self):
        g = stg_random_graph(40, 5)
        d = task_deadlines(g, 8 * critical_path_length(g))
        cg = uniform_ccr(g, 0.0)
        a = comm_aware_schedule(cg, 4, d)
        b = list_schedule(g, 4, d)
        # Same model, possibly different tie-breaks; the makespans
        # agree because both are work-conserving EDF.
        assert a.makespan == pytest.approx(b.makespan, rel=0.05)

    def test_schedules_valid(self):
        g = stg_random_graph(40, 5)
        d = task_deadlines(g, 8 * critical_path_length(g))
        for ccr in (0.0, 1.0, 3.0):
            cg = uniform_ccr(g, ccr, 2)
            for n in (1, 3, 6):
                validate_schedule(comm_aware_schedule(cg, n, d))

    def test_cross_processor_delay_enforced(self):
        # a -> b with cost 10; on one processor no delay, on two the
        # consumer must wait for the transfer.
        g = TaskGraph({"a": 5.0, "b": 5.0, "filler": 8.0},
                      [("a", "b")])
        cg = CommGraph(g, {("a", "b"): 10.0})
        d = task_deadlines(g, 100.0)
        s1 = comm_aware_schedule(cg, 1, d)
        assert s1.placement("b").start - s1.placement("a").finish \
            < 10.0  # same processor: no transfer wait
        # Force a spread: b's only predecessor is a; with the filler
        # occupying processor 0 right after a, b may move to another
        # processor and pay the transfer.
        s2 = comm_aware_schedule(cg, 2, d)
        pa, pb = s2.placement("a"), s2.placement("b")
        if pa.processor != pb.processor:
            assert pb.start >= pa.finish + 10.0 - 1e-9

    def test_locality_preferred_when_free(self):
        # Two processors, expensive edge: the consumer should stay on
        # the producer's processor rather than pay the transfer.
        g = TaskGraph({"a": 5.0, "b": 5.0}, [("a", "b")])
        cg = CommGraph(g, {("a", "b"): 100.0})
        d = task_deadlines(g, 1000.0)
        s = comm_aware_schedule(cg, 2, d)
        assert s.placement("a").processor == s.placement("b").processor

    def test_makespan_nondecreasing_in_ccr(self):
        g = layered_dag(50, 5, 7, edge_prob=0.4)
        d = task_deadlines(g, 8 * critical_path_length(g))
        spans = []
        for ccr in (0.0, 1.0, 4.0):
            cg = uniform_ccr(g, ccr, 3)
            spans.append(comm_aware_schedule(cg, 6, d).makespan)
        assert spans == sorted(spans)


class TestCommLamps:
    def test_zero_ccr_close_to_plain_lamps(self):
        g = stg_random_graph(50, 7).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        plain = lamps_ps(g, deadline)
        comm = comm_lamps(uniform_ccr(g, 0.0), deadline)
        assert comm.total_energy == pytest.approx(plain.total_energy,
                                                  rel=0.05)

    def test_energy_rises_with_ccr(self):
        g = layered_dag(50, 5, 7, edge_prob=0.4).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        energies = [comm_lamps(uniform_ccr(g, c, 3), deadline)
                    .total_energy for c in (0.0, 2.0, 4.0)]
        assert energies[0] <= energies[-1] + 1e-12

    def test_valid_and_feasible(self):
        g = stg_random_graph(40, 9).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        r = comm_lamps(uniform_ccr(g, 1.0, 1), deadline)
        validate_schedule(r.schedule)
        assert r.schedule.makespan / r.point.frequency <= \
            r.deadline_seconds * (1 + 1e-9)

    def test_infeasible_raises(self):
        from repro.core.results import InfeasibleScheduleError
        from repro.sched.deadlines import InfeasibleDeadlineError

        g = stg_random_graph(30, 1).scaled(3.1e6)
        with pytest.raises((InfeasibleScheduleError,
                            InfeasibleDeadlineError)):
            comm_lamps(uniform_ccr(g, 1.0),
                       0.5 * critical_path_length(g))
