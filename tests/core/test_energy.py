"""Tests for schedule energy accounting."""

import pytest

from repro.core.energy import EnergyBreakdown, schedule_energy
from repro.graphs.dag import TaskGraph
from repro.power.shutdown import SleepModel
from repro.sched.schedule import Placement, Schedule


@pytest.fixture
def single_task_schedule():
    g = TaskGraph({"t": 1e9}, [], name="one")
    return Schedule(g, 2, [Placement("t", 0, 0.0, 1e9)])


class TestBreakdown:
    def test_total_sums_components(self):
        b = EnergyBreakdown(busy=1.0, idle=2.0, sleep=0.5, overhead=0.25,
                            n_shutdowns=3)
        assert b.total == 3.75

    def test_addition(self):
        a = EnergyBreakdown(busy=1.0, idle=2.0)
        b = EnergyBreakdown(busy=0.5, idle=0.0, sleep=1.0, overhead=0.1,
                            n_shutdowns=2)
        c = a + b
        assert c.busy == 1.5 and c.sleep == 1.0 and c.n_shutdowns == 2


class TestBusyAccounting:
    def test_busy_energy_is_cycles_times_epc(self, single_task_schedule,
                                             ladder):
        p = ladder.max_point
        deadline = 1e9 / p.frequency  # exactly the makespan
        e = schedule_energy(single_task_schedule, p, deadline)
        assert e.busy == pytest.approx(1e9 * p.energy_per_cycle)
        assert e.idle == pytest.approx(0.0, abs=1e-12)

    def test_unused_processor_costs_nothing(self, single_task_schedule,
                                            ladder):
        p = ladder.max_point
        # Window twice the execution time: proc 0 idles half the window,
        # proc 1 (never employed) contributes nothing.
        deadline = 2e9 / p.frequency
        e = schedule_energy(single_task_schedule, p, deadline)
        expect_idle = (1e9 / p.frequency) * p.idle_power
        assert e.idle == pytest.approx(expect_idle)


class TestIdleWindow:
    def test_idle_grows_with_deadline(self, single_task_schedule, ladder):
        p = ladder.max_point
        t_exec = 1e9 / p.frequency
        e1 = schedule_energy(single_task_schedule, p, 2 * t_exec)
        e2 = schedule_energy(single_task_schedule, p, 4 * t_exec)
        assert e2.idle == pytest.approx(3 * e1.idle)
        assert e2.busy == pytest.approx(e1.busy)

    def test_schedule_not_fitting_raises(self, single_task_schedule, ladder):
        p = ladder[0]  # slowest point
        tiny = 1e9 / ladder.fmax  # the full-speed duration
        with pytest.raises(ValueError, match="exceeds"):
            schedule_energy(single_task_schedule, p, tiny)


class TestShutdownAccounting:
    def test_long_gap_sleeps(self, single_task_schedule, ladder):
        p = ladder.max_point
        sleep = SleepModel()
        t_exec = 1e9 / p.frequency
        deadline = t_exec + 10.0  # 10 s trailing gap: way past breakeven
        e = schedule_energy(single_task_schedule, p, deadline, sleep=sleep)
        assert e.n_shutdowns == 1
        assert e.overhead == pytest.approx(sleep.overhead_energy)
        assert e.sleep == pytest.approx(10.0 * sleep.sleep_power)
        assert e.idle == pytest.approx(0.0, abs=1e-12)

    def test_short_gap_stays_on(self, single_task_schedule, ladder):
        p = ladder.max_point
        sleep = SleepModel()
        t_exec = 1e9 / p.frequency
        gap = 1e-6  # far below breakeven
        e = schedule_energy(single_task_schedule, p, t_exec + gap,
                            sleep=sleep)
        assert e.n_shutdowns == 0
        assert e.idle == pytest.approx(gap * p.idle_power, rel=1e-3)

    def test_ps_never_worse_than_idle(self, single_task_schedule, ladder):
        sleep = SleepModel()
        for p in ladder:
            deadline = 1e9 / p.frequency * 3
            plain = schedule_energy(single_task_schedule, p, deadline)
            ps = schedule_energy(single_task_schedule, p, deadline,
                                 sleep=sleep)
            assert ps.total <= plain.total + 1e-12

    def test_interior_gap_decision(self, ladder):
        # Two tasks with a forced dependence gap between them.
        g = TaskGraph({"a": 1e9, "b": 1e9, "filler": 5e9},
                      [("a", "filler"), ("filler", "b")], name="gap")
        s = Schedule(g, 2, [
            Placement("a", 0, 0.0, 1e9),
            Placement("filler", 1, 1e9, 6e9),
            Placement("b", 0, 6e9, 7e9),
        ])
        p = ladder.max_point
        sleep = SleepModel()
        deadline = 7e9 / p.frequency
        e = schedule_energy(s, p, deadline, sleep=sleep)
        # Proc 0's interior 5e9-cycle gap (~1.6 s) sleeps; proc 1's
        # leading and trailing 1e9-cycle gaps (~0.32 s) also exceed the
        # ~0.6 ms breakeven.
        assert e.n_shutdowns == 3


class TestMultiProcessor:
    def test_two_processors_sum(self, diamond, ladder):
        g = diamond.scaled(1e9)
        s = Schedule(g, 2, [
            Placement("a", 0, 0.0, 1e9),
            Placement("b", 1, 1e9, 3e9),
            Placement("c", 0, 1e9, 4e9),
            Placement("d", 0, 4e9, 5e9),
        ])
        p = ladder.max_point
        deadline = 5e9 / p.frequency
        e = schedule_energy(s, p, deadline)
        assert e.busy == pytest.approx(7e9 * p.energy_per_cycle)
        # Proc 1 idles 3e9 cycles ([0,1e9] and [3e9,5e9]).
        assert e.idle == pytest.approx(3e9 / p.frequency * p.idle_power)
