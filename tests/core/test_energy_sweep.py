"""Differential tests: the vectorized ladder sweep vs the scalar evaluator.

:func:`repro.core.energy.schedule_energy_sweep` claims to reproduce
``[schedule_energy(s, p, D, sleep=sleep) for p in points]`` *bitwise* —
not merely within tolerance.  That claim is what lets the search loops
use the sweep while audits, caches and golden files keep their exact
historical values, so it is asserted here with ``==`` on every
component, over random instances, deadline windows and sleep models.
"""

from contextlib import contextmanager

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro.core.energy as energy_mod
from repro.core.energy import schedule_energy, schedule_energy_sweep
from repro.core.platform import default_platform
from repro.core.stretch import feasible_points, required_frequency
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.power.shutdown import SleepModel
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule


@st.composite
def swept_schedules(draw):
    """A schedule plus the deadline window and its feasible ladder."""
    platform = default_platform()
    seed = draw(st.integers(min_value=0, max_value=5_000))
    n = draw(st.sampled_from([5, 12, 25, 40]))
    n_procs = draw(st.sampled_from([1, 2, 4, 9]))
    factor = draw(st.sampled_from([1.1, 1.5, 2.0, 4.0, 10.0]))
    g = stg_random_graph(n, seed).scaled(3.1e6)
    deadline = factor * critical_path_length(g)
    d = task_deadlines(g, deadline)
    s = list_schedule(g, n_procs, d)
    f_req = required_frequency(s, d, platform.fmax)
    points = feasible_points(platform.ladder, f_req)
    # A packed schedule under a tight deadline can need more than fmax;
    # those draws have nothing to sweep.
    assume(points)
    return s, points, platform.seconds(deadline)


@contextmanager
def forced_cutover(value):
    """Pin the scalar-fast-path cutover so a test exercises one side.

    ``-1`` forces the broadcast path (the claim under differential
    test); a huge value forces the scalar delegation.
    """
    old = energy_mod._SCALAR_SWEEP_CUTOVER
    energy_mod._SCALAR_SWEEP_CUTOVER = value
    try:
        yield
    finally:
        energy_mod._SCALAR_SWEEP_CUTOVER = old


def assert_bitwise_equal(got, want):
    assert len(got) == len(want)
    for b_got, b_want in zip(got, want):
        assert b_got.busy == b_want.busy
        assert b_got.idle == b_want.idle
        assert b_got.sleep == b_want.sleep
        assert b_got.overhead == b_want.overhead
        assert b_got.n_shutdowns == b_want.n_shutdowns


class TestSweepMatchesScalar:
    @given(swept_schedules())
    @settings(max_examples=40, deadline=None)
    def test_without_sleep(self, inst):
        s, points, window = inst
        with forced_cutover(-1):
            got = schedule_energy_sweep(s, points, window)
        assert_bitwise_equal(
            got, [schedule_energy(s, p, window) for p in points])

    @given(swept_schedules())
    @settings(max_examples=40, deadline=None)
    def test_with_sleep(self, inst):
        s, points, window = inst
        sleep = default_platform().sleep
        with forced_cutover(-1):
            got = schedule_energy_sweep(s, points, window, sleep=sleep)
        assert_bitwise_equal(
            got, [schedule_energy(s, p, window, sleep=sleep)
                  for p in points])

    @given(swept_schedules(),
           st.floats(min_value=0.0, max_value=1e-3),
           st.floats(min_value=0.0, max_value=1e-2))
    @settings(max_examples=25, deadline=None)
    def test_with_unusual_sleep_models(self, inst, sleep_power, overhead):
        """Breakeven boundaries move with the model; equality must hold."""
        s, points, window = inst
        sleep = SleepModel(sleep_power=sleep_power,
                           overhead_energy=overhead)
        with forced_cutover(-1):
            got = schedule_energy_sweep(s, points, window, sleep=sleep)
        assert_bitwise_equal(
            got, [schedule_energy(s, p, window, sleep=sleep)
                  for p in points])


class TestSweepEdgeCases:
    @pytest.fixture()
    def packed(self):
        """A 2-processor schedule with internal and trailing gaps."""
        platform = default_platform()
        g = stg_random_graph(20, 3).scaled(3.1e6)
        deadline = 2.0 * critical_path_length(g)
        d = task_deadlines(g, deadline)
        s = list_schedule(g, 2, d)
        return s, platform, platform.seconds(deadline)

    def test_empty_points_list(self, packed):
        s, _, window = packed
        assert schedule_energy_sweep(s, [], window) == []

    def test_single_point_matches_scalar(self, packed):
        s, platform, window = packed
        p = platform.ladder.max_point
        assert_bitwise_equal(
            schedule_energy_sweep(s, [p], window, sleep=platform.sleep),
            [schedule_energy(s, p, window, sleep=platform.sleep)])

    def test_infeasible_point_raises_like_scalar(self, packed):
        s, platform, _ = packed
        # A window shorter than the makespan at the slowest frequency.
        slow = platform.ladder[0]
        window = 0.5 * s.makespan / slow.frequency
        feasible = [p for p in platform.ladder
                    if s.makespan <= window * p.frequency * (1.0 + 1e-9)]
        ordered = list(platform.ladder)
        with pytest.raises(ValueError) as scalar_exc:
            for p in ordered:
                schedule_energy(s, p, window)
        with pytest.raises(ValueError) as sweep_exc:
            schedule_energy_sweep(s, ordered, window)
        assert str(sweep_exc.value) == str(scalar_exc.value)
        assert len(feasible) < len(ordered)

    def test_duplicate_points_are_evaluated_independently(self, packed):
        s, platform, window = packed
        p = platform.ladder.max_point
        out = schedule_energy_sweep(s, [p, p, p], window,
                                    sleep=platform.sleep)
        assert out[0] == out[1] == out[2]

    def test_unemployed_processors_cost_nothing(self):
        """A 1-task graph on many processors only pays for processor 0."""
        platform = default_platform()
        g = stg_random_graph(1, 0).scaled(3.1e6)
        deadline = 2.0 * critical_path_length(g)
        d = task_deadlines(g, deadline)
        s = list_schedule(g, 8, d)
        window = platform.seconds(deadline)
        points = [p for p in platform.ladder
                  if s.makespan <= window * p.frequency * (1.0 + 1e-9)]
        assert_bitwise_equal(
            schedule_energy_sweep(s, points, window, sleep=platform.sleep),
            [schedule_energy(s, p, window, sleep=platform.sleep)
             for p in points])


class TestScalarFastPath:
    """The small-sweep scalar delegation in ``schedule_energy_sweep``."""

    @pytest.fixture()
    def small(self):
        """An instance whose work size sits below the real cutover."""
        platform = default_platform()
        g = stg_random_graph(20, 3).scaled(3.1e6)
        deadline = 2.0 * critical_path_length(g)
        d = task_deadlines(g, deadline)
        s = list_schedule(g, 2, d)
        f_req = required_frequency(s, d, platform.fmax)
        points = feasible_points(platform.ladder, f_req)
        gap_flat, _ = s.internal_gap_cycles
        work = len(points) * (len(s.employed_processor_ids)
                              + gap_flat.size)
        assert 0 < work <= energy_mod._SCALAR_SWEEP_CUTOVER
        return s, points, platform, platform.seconds(deadline)

    def test_small_sweep_delegates_to_scalar(self, small, monkeypatch):
        s, points, platform, window = small
        calls = []
        real = energy_mod.schedule_energy

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(energy_mod, "schedule_energy", spy)
        schedule_energy_sweep(s, points, window, sleep=platform.sleep)
        assert len(calls) == len(points)
        calls.clear()
        with forced_cutover(-1):
            schedule_energy_sweep(s, points, window, sleep=platform.sleep)
        assert calls == []

    def test_both_sides_bitwise_identical(self, small):
        s, points, platform, window = small
        for sleep in (None, platform.sleep):
            with forced_cutover(10 ** 9):
                scalar_side = schedule_energy_sweep(
                    s, points, window, sleep=sleep)
            with forced_cutover(-1):
                broadcast_side = schedule_energy_sweep(
                    s, points, window, sleep=sleep)
            assert_bitwise_equal(scalar_side, broadcast_side)
            assert_bitwise_equal(
                scalar_side,
                [schedule_energy(s, p, window, sleep=sleep)
                 for p in points])

    def test_error_paths_agree_across_cutover(self, small):
        s, _, platform, _ = small
        slow = platform.ladder[0]
        window = 0.5 * s.makespan / slow.frequency
        ordered = list(platform.ladder)
        messages = []
        for cutover in (-1, 10 ** 9):
            with forced_cutover(cutover):
                with pytest.raises(ValueError) as exc:
                    schedule_energy_sweep(s, ordered, window)
            messages.append(str(exc.value))
        assert messages[0] == messages[1]
