"""Tests for the exhaustive optimal baseline, and heuristic validation
against it on tiny instances."""

import pytest

from repro.core.exhaustive import enumerate_schedules, \
    optimal_single_frequency
from repro.core import lamps, lamps_ps, limit_mf
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import chain, independent_tasks, \
    stg_random_graph
from repro.sched.validate import validate_schedule


class TestEnumeration:
    def test_chain_has_single_schedule(self):
        g = chain(4)
        scheds = enumerate_schedules(g, 2)
        # A chain admits exactly one non-delay schedule shape (delays
        # cannot help and collapse to the same placements).
        makespans = {s.makespan for s in scheds}
        assert makespans == {4.0}

    def test_two_independent_tasks_on_two_procs(self):
        g = independent_tasks(2, weights=[1, 2])
        scheds = enumerate_schedules(g, 2)
        # Parallel (both at 0) and the two serial orders.
        makespans = sorted(s.makespan for s in scheds)
        assert 2.0 in makespans and 3.0 in makespans

    def test_all_enumerated_schedules_valid(self, fig4_graph):
        for s in enumerate_schedules(fig4_graph, 2):
            validate_schedule(s)

    def test_too_large_rejected(self):
        g = independent_tasks(13)
        with pytest.raises(ValueError, match="caps"):
            enumerate_schedules(g, 2)

    def test_limit_guard(self, fig4_graph):
        with pytest.raises(ValueError, match="limit"):
            enumerate_schedules(fig4_graph, 3, limit=5)


class TestOptimalBaseline:
    def test_fig4_lamps_ps_is_optimal(self, fig4_graph):
        g = fig4_graph.scaled(3.1e6)
        for factor in (1.5, 2.0):
            deadline = factor * critical_path_length(g)
            opt = optimal_single_frequency(g, deadline)
            heur = lamps_ps(g, deadline)
            assert heur.total_energy >= opt.total_energy - 1e-12
            assert heur.total_energy == pytest.approx(opt.total_energy)

    def test_heuristics_never_beat_optimal(self):
        for seed in range(4):
            g = stg_random_graph(6, seed).scaled(3.1e6)
            deadline = 2 * critical_path_length(g)
            opt = optimal_single_frequency(g, deadline,
                                           max_processors=4)
            for fn in (lamps, lamps_ps):
                assert fn(g, deadline).total_energy >= \
                    opt.total_energy - 1e-12

    def test_lamps_ps_close_to_optimal_on_tiny_pool(self):
        gaps = []
        for seed in range(6):
            g = stg_random_graph(6, seed).scaled(3.1e6)
            deadline = 2 * critical_path_length(g)
            opt = optimal_single_frequency(g, deadline,
                                           max_processors=4)
            heur = lamps_ps(g, deadline)
            gaps.append(heur.total_energy / opt.total_energy - 1.0)
        assert max(gaps) < 0.05  # within 5% of true optimal everywhere

    def test_optimal_above_limit_mf(self):
        g = stg_random_graph(6, 1).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        opt = optimal_single_frequency(g, deadline)
        assert opt.total_energy >= \
            limit_mf(g, deadline).total_energy * (1 - 1e-9)

    def test_infeasible_deadline_raises(self, fig4_graph):
        from repro.core.results import InfeasibleScheduleError
        from repro.sched.deadlines import InfeasibleDeadlineError

        g = fig4_graph.scaled(3.1e6)
        with pytest.raises((InfeasibleScheduleError,
                            InfeasibleDeadlineError)):
            optimal_single_frequency(
                g, 0.5 * critical_path_length(g))

    def test_no_ps_variant(self, fig4_graph):
        g = fig4_graph.scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        opt_ps = optimal_single_frequency(g, deadline, shutdown=True)
        opt_plain = optimal_single_frequency(g, deadline, shutdown=False)
        assert opt_ps.total_energy <= opt_plain.total_energy + 1e-12

    def test_max_processors_cap(self, fig4_graph):
        g = fig4_graph.scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        opt = optimal_single_frequency(g, deadline, max_processors=1)
        assert opt.n_processors == 1
