"""Tests for the heterogeneous multiprocessor extension."""

import pytest

from repro.core import lamps_ps
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import chain, stg_random_graph
from repro.hetero import (
    BIG_LITTLE,
    CoreType,
    HeteroSystem,
    hetero_energy,
    hetero_lamps,
    hetero_schedule,
    validate_hetero_schedule,
)
from repro.sched.deadlines import task_deadlines


class TestCoreType:
    def test_efficiency(self):
        little = CoreType("little", cycle_multiplier=2.0,
                          power_scale=0.3)
        assert little.energy_efficiency == pytest.approx(0.6)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            CoreType("x", cycle_multiplier=0.0)
        with pytest.raises(ValueError):
            CoreType("x", power_scale=-1.0)


class TestHeteroSystem:
    def test_layout(self):
        assert BIG_LITTLE.n_processors == 8
        assert BIG_LITTLE.core_type(0).name == "big"
        assert BIG_LITTLE.core_type(7).name == "little"

    def test_processors_of(self):
        assert BIG_LITTLE.processors_of("little") == [4, 5, 6, 7]

    def test_counts(self):
        assert BIG_LITTLE.counts_by_name() == {"big": 4, "little": 4}

    def test_subsystem(self):
        sub = BIG_LITTLE.subsystem({"big": 1, "little": 2})
        assert sub.counts_by_name() == {"big": 1, "little": 2}

    def test_subsystem_overdraw_rejected(self):
        with pytest.raises(ValueError, match="have"):
            BIG_LITTLE.subsystem({"big": 9})

    def test_subsystem_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            BIG_LITTLE.subsystem({"medium": 1})

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            HeteroSystem([])
        with pytest.raises(ValueError):
            HeteroSystem([(CoreType("big"), 0)])


class TestHeteroScheduler:
    def test_slow_core_stretches_duration(self):
        g = chain(1, weights=[100.0])
        little_only = HeteroSystem([(CoreType("little", 2.0, 0.3), 1)])
        s = hetero_schedule(g, little_only, task_deadlines(g, 1e6))
        assert s.placement(0).finish == 200.0

    def test_prefers_fast_core_when_free(self):
        g = chain(1, weights=[100.0])
        s = hetero_schedule(g, BIG_LITTLE, task_deadlines(g, 1e6))
        assert BIG_LITTLE.core_type(s.placement(0).processor).name \
            == "big"

    def test_validates(self):
        g = stg_random_graph(30, 2).scaled(3.1e6)
        d = task_deadlines(g, 8 * critical_path_length(g))
        s = hetero_schedule(g, BIG_LITTLE, d)
        validate_hetero_schedule(s, BIG_LITTLE)

    def test_homogeneous_system_matches_plain_scheduler(self):
        from repro.sched.list_scheduler import list_schedule

        g = stg_random_graph(30, 2)
        d = task_deadlines(g, 8 * critical_path_length(g))
        homo = HeteroSystem([(CoreType("big"), 4)])
        a = hetero_schedule(g, homo, d)
        b = list_schedule(g, 4, d)
        assert a.makespan == pytest.approx(b.makespan)

    def test_validator_catches_wrong_duration(self):
        g = chain(1, weights=[100.0])
        little_only = HeteroSystem([(CoreType("little", 2.0, 0.3), 1)])
        s = hetero_schedule(g, little_only, task_deadlines(g, 1e6))
        big_only = HeteroSystem([(CoreType("big"), 1)])
        with pytest.raises(AssertionError, match="expected"):
            validate_hetero_schedule(s, big_only)


class TestHeteroEnergy:
    def test_power_scale_applies(self, platform):
        g = chain(1, weights=[1e9])
        for scale in (0.3, 1.0):
            sys1 = HeteroSystem([(CoreType("c", 1.0, scale), 1)])
            s = hetero_schedule(g, sys1, task_deadlines(g, 1e10))
            p = platform.ladder.max_point
            e = hetero_energy(s, sys1, p, 1e9 / p.frequency,
                              use_sleep=False)
            assert e.busy == pytest.approx(
                1e9 * p.energy_per_cycle * scale)

    def test_reference_type_matches_homogeneous_accounting(self,
                                                           platform):
        from repro.core.energy import schedule_energy

        g = stg_random_graph(30, 5).scaled(3.1e6)
        d = task_deadlines(g, 2 * critical_path_length(g))
        homo = HeteroSystem([(CoreType("ref"), 4)])
        s = hetero_schedule(g, homo, d)
        p = platform.ladder.critical_point()
        f_req = s.required_reference_frequency(d) * platform.fmax
        p = platform.ladder.slowest_at_least(f_req)
        seconds = platform.seconds(2 * critical_path_length(g))
        he = hetero_energy(s, homo, p, seconds, use_sleep=True)
        ref = schedule_energy(s, p, seconds, sleep=platform.sleep)
        assert he.total == pytest.approx(ref.total, rel=1e-12)


class TestHeteroLamps:
    @pytest.fixture(scope="class")
    def instance(self):
        g = stg_random_graph(40, 6).scaled(3.1e6)
        return g

    def test_loose_deadline_prefers_little_cores(self, instance):
        g = instance
        r = hetero_lamps(g, 8 * critical_path_length(g), BIG_LITTLE)
        assert r.counts["big"] == 0 and r.counts["little"] >= 1

    def test_hetero_beats_big_only_when_time_allows(self, instance):
        g = instance
        deadline = 4 * critical_path_length(g)
        hetero = hetero_lamps(g, deadline, BIG_LITTLE)
        big_only = lamps_ps(g, deadline)
        assert hetero.total_energy < big_only.total_energy

    def test_tight_deadline_needs_big_cores(self, instance):
        g = instance
        r = hetero_lamps(g, 1.05 * critical_path_length(g), BIG_LITTLE)
        assert r.counts["big"] >= 1

    def test_schedules_validate(self, instance):
        g = instance
        for k in (1.5, 4.0):
            r = hetero_lamps(g, k * critical_path_length(g), BIG_LITTLE)
            validate_hetero_schedule(r.schedule, r.system)
            makespan_s = r.schedule.makespan / r.point.frequency
            assert makespan_s <= k * critical_path_length(g) \
                / 3.086e9 * (1 + 1e-6)

    def test_infeasible_raises(self, instance):
        from repro.core.results import InfeasibleScheduleError
        from repro.sched.deadlines import InfeasibleDeadlineError

        g = instance
        with pytest.raises((InfeasibleScheduleError,
                            InfeasibleDeadlineError)):
            hetero_lamps(g, 0.5 * critical_path_length(g), BIG_LITTLE)

    def test_no_ps_variant_not_better(self, instance):
        g = instance
        deadline = 2 * critical_path_length(g)
        ps = hetero_lamps(g, deadline, BIG_LITTLE, shutdown=True)
        plain = hetero_lamps(g, deadline, BIG_LITTLE, shutdown=False)
        assert ps.total_energy <= plain.total_energy + 1e-12
